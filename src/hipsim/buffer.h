// Device memory: RAII allocations plus the dspan view kernels operate on.
//
// A DeviceBuffer owns host-side storage standing in for device memory and a
// *virtual device address* assigned by the Device allocator; the address is
// what the L2 model keys on, so distinct buffers never alias cache lines.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace xbfs::sim {

class Device;

/// Non-owning view of a device allocation, analogous to a raw device pointer
/// in HIP.  Copyable into kernels by value.
template <typename T>
class dspan {
 public:
  dspan() = default;
  dspan(T* data, std::uint64_t device_addr, std::size_t size)
      : data_(data), device_addr_(device_addr), size_(size) {}

  /// Implicit conversion dspan<T> -> dspan<const T>.
  template <typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  dspan(const dspan<std::remove_const_t<U>>& other)  // NOLINT(runtime/explicit)
      : data_(other.data()),
        device_addr_(other.device_addr()),
        size_(other.size()) {}

  T* data() const { return data_; }
  std::uint64_t device_addr() const { return device_addr_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Device address of element i (for the memory model).
  std::uint64_t addr_of(std::size_t i) const {
    return device_addr_ + i * sizeof(T);
  }
  /// Raw element reference; memory-model accounting is the caller's job
  /// (kernel code should go through ExecCtx::load/store instead).
  T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  dspan subspan(std::size_t offset, std::size_t count) const {
    assert(offset + count <= size_);
    return dspan(data_ + offset, device_addr_ + offset * sizeof(T), count);
  }

 private:
  T* data_ = nullptr;
  std::uint64_t device_addr_ = 0;
  std::size_t size_ = 0;
};

/// Owning device allocation.  Created via Device::alloc<T>(n).
template <typename T>
class DeviceBuffer {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "device buffers hold POD data");

  DeviceBuffer() = default;
  DeviceBuffer(std::uint64_t device_addr, std::size_t size)
      : data_(size ? std::make_unique<T[]>(size) : nullptr),
        device_addr_(device_addr),
        size_(size) {}

  DeviceBuffer(DeviceBuffer&&) noexcept = default;
  DeviceBuffer& operator=(DeviceBuffer&&) noexcept = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t device_addr() const { return device_addr_; }

  dspan<T> span() { return dspan<T>(data_.get(), device_addr_, size_); }
  dspan<const T> cspan() const {
    return dspan<const T>(data_.get(), device_addr_, size_);
  }

  /// Host-visible access for setup/teardown (does not count as traffic;
  /// modelled copies go through Device::memcpy_*).
  T* host_data() { return data_.get(); }
  const T* host_data() const { return data_.get(); }

 private:
  std::unique_ptr<T[]> data_;
  std::uint64_t device_addr_ = 0;
  std::size_t size_ = 0;
};

}  // namespace xbfs::sim
