// Device memory: RAII allocations plus the dspan view kernels operate on.
//
// A DeviceBuffer owns host-side storage standing in for device memory and a
// *virtual device address* assigned by the Device allocator; the address is
// what the L2 model keys on, so distinct buffers never alias cache lines.
//
// When SimSan is enabled (hipsim/sanitizer.h) every allocation also carries
// a BufferShadow; spans propagate a raw pointer to it so ExecCtx can
// bounds/lifetime/init-check each simulated access, and the h_* host
// accessors below catch host reads of stale or never-written device data.
// With the sanitizer off, shadow_ is null and nothing here costs anything.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

#include "hipsim/shadow.h"

namespace xbfs::sim {

class Device;

/// Non-owning view of a device allocation, analogous to a raw device pointer
/// in HIP.  Copyable into kernels by value.
template <typename T>
class dspan {
 public:
  dspan() = default;
  dspan(T* data, std::uint64_t device_addr, std::size_t size,
        const BufferShadow* shadow = nullptr)
      : data_(data), device_addr_(device_addr), size_(size), shadow_(shadow) {}

  /// Implicit conversion dspan<T> -> dspan<const T>.
  template <typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  dspan(const dspan<std::remove_const_t<U>>& other)  // NOLINT(runtime/explicit)
      : data_(other.data()),
        device_addr_(other.device_addr()),
        size_(other.size()),
        shadow_(other.shadow()) {}

  T* data() const { return data_; }
  std::uint64_t device_addr() const { return device_addr_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const BufferShadow* shadow() const { return shadow_; }

  /// Device address of element i (for the memory model).
  std::uint64_t addr_of(std::size_t i) const {
    return device_addr_ + i * sizeof(T);
  }
  /// Raw element reference; memory-model accounting is the caller's job
  /// (kernel code should go through ExecCtx::load/store instead).
  T& operator[](std::size_t i) const {
    assert(data_ != nullptr && i < size_);
    return data_[i];
  }

  dspan subspan(std::size_t offset, std::size_t count) const {
    // Overflow-safe form of offset + count <= size_.
    assert(offset <= size_ && count <= size_ - offset);
    return dspan(data_ + offset, device_addr_ + offset * sizeof(T), count,
                 shadow_);
  }

 private:
  T* data_ = nullptr;
  std::uint64_t device_addr_ = 0;
  std::size_t size_ = 0;
  const BufferShadow* shadow_ = nullptr;
};

/// Owning device allocation.  Created via Device::alloc<T>(n).
template <typename T>
class DeviceBuffer {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "device buffers hold POD data");

  DeviceBuffer() = default;
  DeviceBuffer(std::uint64_t device_addr, std::size_t size,
               std::string name = {})
      : data_(size ? std::make_unique<T[]>(size) : nullptr),
        shadow_(sanitizer_make_shadow(device_addr, size * sizeof(T),
                                      std::move(name))),
        device_addr_(device_addr),
        size_(size) {}

  ~DeviceBuffer() { release(); }

  DeviceBuffer(DeviceBuffer&& other) noexcept
      : data_(std::move(other.data_)),
        shadow_(std::move(other.shadow_)),
        device_addr_(std::exchange(other.device_addr_, 0)),
        size_(std::exchange(other.size_, 0)) {}
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::move(other.data_);
      shadow_ = std::move(other.shadow_);
      device_addr_ = std::exchange(other.device_addr_, 0);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t device_addr() const { return device_addr_; }
  const BufferShadow* shadow() const { return shadow_.get(); }

  dspan<T> span() {
    return dspan<T>(data_.get(), device_addr_, size_, shadow_.get());
  }
  dspan<const T> cspan() const {
    return dspan<const T>(data_.get(), device_addr_, size_, shadow_.get());
  }

  // --- checked host accessors ----------------------------------------------
  // Setup/teardown access with sanitizer coverage: reads are validated
  // against the shadow (stale device data, never-written words); writes and
  // fills keep the init map coherent.  None of this counts as modelled
  // traffic — modelled copies still go through Device::memcpy_*.

  /// Host read of element i; flags stale-device and uninitialized reads.
  T h_read(std::size_t i) const {
    assert(data_ != nullptr && i < size_);
    if (shadow_) {
      const std::uint64_t off = i * sizeof(T);
      if (sanitizer_checks_stale() && shadow_->device_dirty()) {
        sanitizer_report_host(
            DefectKind::StaleHostRead, shadow_.get(), off,
            "host read before the device->host copy of kernel writes");
      }
      if (sanitizer_checks_init() && !shadow_->is_init(off, sizeof(T))) {
        sanitizer_report_host(DefectKind::UninitRead, shadow_.get(), off,
                              "host read of a never-written element");
      }
    }
    return data_[i];
  }
  /// Host write of element i (marks the word initialized).
  void h_write(std::size_t i, T v) {
    assert(data_ != nullptr && i < size_);
    data_[i] = v;
    if (shadow_) shadow_->mark_init(i * sizeof(T), sizeof(T));
  }
  /// Fill the whole buffer host-side (marks everything initialized).
  void h_fill(T v) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = v;
    if (shadow_) shadow_->mark_all_init();
  }
  /// Copy `count` elements from host memory into [offset, offset+count).
  void h_copy_from(const T* src, std::size_t count, std::size_t offset = 0) {
    assert(offset <= size_ && count <= size_ - offset);
    if (count == 0) return;
    std::memcpy(data_.get() + offset, src, count * sizeof(T));
    if (shadow_) shadow_->mark_init(offset * sizeof(T), count * sizeof(T));
  }

  /// Record that a device->host copy of this buffer completed: host reads
  /// are in sync again.  Device::memcpy_d2h's typed overloads call this;
  /// call it manually after untyped/partial copies.
  void mark_host_synced() const {
    if (shadow_) shadow_->clear_device_dirty();
  }
  /// Record that a host->device copy of this buffer completed: the device
  /// sees fully initialized, host-authored content.
  void mark_device_synced() const {
    if (shadow_) {
      shadow_->mark_all_init();
      shadow_->clear_device_dirty();
    }
  }

  /// Raw host pointers.  The mutable overload is the escape hatch for bulk
  /// setup code; because the sanitizer cannot see what the caller writes,
  /// it conservatively marks the whole buffer initialized.
  T* host_data() {
    if (shadow_) shadow_->mark_all_init();
    return data_.get();
  }
  const T* host_data() const { return data_.get(); }

 private:
  void release() {
    if (shadow_) shadow_->mark_freed();
    shadow_.reset();
    data_.reset();
  }

  std::unique_ptr<T[]> data_;
  std::shared_ptr<BufferShadow> shadow_;
  std::uint64_t device_addr_ = 0;
  std::size_t size_ = 0;
};

}  // namespace xbfs::sim
