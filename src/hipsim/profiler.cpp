#include "hipsim/profiler.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>

namespace xbfs::sim {

std::vector<LaunchRecord> Profiler::matching(const std::string& substr) const {
  std::vector<LaunchRecord> out;
  for (const LaunchRecord& r : records_) {
    if (substr.empty() || r.kernel.find(substr) != std::string::npos) {
      out.push_back(r);
    }
  }
  return out;
}

double Profiler::total_runtime_ms(const std::string& substr) const {
  double sum = 0;
  for (const LaunchRecord& r : records_) {
    if (substr.empty() || r.kernel.find(substr) != std::string::npos) {
      sum += r.runtime_ms();
    }
  }
  return sum;
}

double Profiler::total_fetch_kb(const std::string& substr) const {
  double sum = 0;
  for (const LaunchRecord& r : records_) {
    if (substr.empty() || r.kernel.find(substr) != std::string::npos) {
      sum += r.fetch_kb();
    }
  }
  return sum;
}

void Profiler::print_table(std::ostream& os) const {
  os << std::left << std::setw(34) << "Kernel" << std::setw(7) << "Level"
     << std::right << std::setw(13) << "Runtime(ms)" << std::setw(9) << "L2(%)"
     << std::setw(11) << "MBusy(%)" << std::setw(16) << "FS(KB)" << "  Tag\n";
  for (const LaunchRecord& r : records_) {
    os << std::left << std::setw(34) << r.kernel << std::setw(7) << r.level
       << std::right << std::fixed << std::setprecision(3) << std::setw(13)
       << r.runtime_ms() << std::setw(9) << r.l2_pct() << std::setw(11)
       << r.mbusy_pct() << std::setw(16) << r.fetch_kb() << "  " << r.tag
       << "\n";
  }
}

std::vector<Profiler::KernelTotal> Profiler::aggregate_by_kernel() const {
  std::map<std::string, KernelTotal> acc;
  for (const LaunchRecord& r : records_) {
    KernelTotal& t = acc[r.kernel];
    t.kernel = r.kernel;
    t.runtime_ms += r.runtime_ms();
    t.fetch_kb += r.fetch_kb();
    t.launches += 1;
  }
  std::vector<KernelTotal> out;
  out.reserve(acc.size());
  for (auto& [_, t] : acc) out.push_back(std::move(t));
  std::sort(out.begin(), out.end(), [](const KernelTotal& a,
                                       const KernelTotal& b) {
    return a.runtime_ms > b.runtime_ms;
  });
  return out;
}

namespace {

/// Free-form fields (the caller-set tag) must not break the CSV shape:
/// separators and newlines are folded to spaces so every row always has
/// exactly as many fields as the header.
std::string csv_sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == ',' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

void Profiler::write_csv(std::ostream& os) const {
  os << "kernel,level,tag,runtime_ms,l2_hit_pct,mem_unit_busy_pct,fetch_kb,"
        "mem_reads,mem_writes,atomics,lane_slots,active_lanes\n";
  for (const LaunchRecord& r : records_) {
    os << csv_sanitize(r.kernel) << ',' << r.level << ','
       << csv_sanitize(r.tag) << ',' << r.runtime_ms()
       << ',' << r.l2_pct() << ',' << r.mbusy_pct() << ',' << r.fetch_kb()
       << ',' << r.counters.mem_reads << ',' << r.counters.mem_writes << ','
       << r.counters.atomics << ',' << r.counters.lane_slots << ','
       << r.counters.active_lanes << '\n';
  }
}

}  // namespace xbfs::sim
