// A small persistent worker pool used by the kernel launcher.  Work items
// are dense index ranges (block ids); workers grab chunks via an atomic
// cursor.  With size()==1 execution is strictly sequential in index order,
// which is the deterministic profile mode the table benches use.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "hipsim/lock_rank.h"

namespace xbfs::sim {

class ThreadPool {
 public:
  /// @param num_workers 0 means "hardware concurrency".
  explicit ThreadPool(unsigned num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(worker_id, index) for every index in [0, count).  Blocks until
  /// all indices complete.  worker_id is in [0, size()).  The calling thread
  /// participates as worker 0.
  void parallel_for(std::uint64_t count,
                    const std::function<void(unsigned, std::uint64_t)>& fn);

  unsigned size() const { return static_cast<unsigned>(threads_.size()) + 1; }

 private:
  void worker_loop(unsigned worker_id);
  void drain(unsigned worker_id);

  struct Job {
    std::uint64_t count = 0;
    std::uint64_t chunk = 1;
    const std::function<void(unsigned, std::uint64_t)>* fn = nullptr;
    std::atomic<std::uint64_t> cursor{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<int> in_flight{0};  ///< registered drain()s (taken under mu_)
  };

  // Ranked (sim.pool=90, the innermost lock in the stack: serving-cycle and
  // graph-store locks are always outside a kernel launch) so any future
  // nesting inversion aborts with both stacks instead of deadlocking.
  RankedMutex mu_{90, "sim.pool"};
  std::condition_variable_any cv_start_;
  std::condition_variable_any cv_done_;
  Job job_;
  std::uint64_t epoch_ = 0;  // guarded by mu_; bumped per parallel_for
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace xbfs::sim
