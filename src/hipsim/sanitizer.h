// SimSan: the opt-in analysis layer of the simulated GPU.
//
// XBFS's correctness hinges on access disciplines no compiler checks: the
// scan-free enqueue is safe only because status updates go through atomics,
// the bottom-up look-ahead (HPDC'19 v7->v8) *deliberately* tolerates a
// same-pass race, and host code must not read result buffers before the
// modelled device->host copy.  SimSan makes those disciplines machine
// checked:
//
//   * every ExecCtx global-memory access is bounds-checked against its span
//     and validated against the buffer's shadow (use-after-free, reads of
//     never-initialized words);
//   * DeviceBuffer's host accessors (h_read/h_write/...) catch host reads
//     of stale device data — kernels wrote, nobody memcpy'd back;
//   * Device::launch records, per simulated thread, every global access as
//     (address, read/write, atomic?, block, wavefront, lane) and a
//     post-launch analyzer flags conflicting non-atomic same-address
//     accesses from *different blocks* as intra-kernel data races.
//     Accesses inside a sim::racy_ok scope (see exec_ctx.h) are allowlisted
//     with their documented reason, so intentional races are annotated in
//     code rather than silenced globally.
//
// Enabled the same way fault injection is (hipsim/fault.h):
//
//   XBFS_SANITIZE="races,bounds,init,stale,free"     # or "all" / "1" / "on"
//
// or programmatically via Sanitizer::global().configure(...).  Everything
// is off by default; the hot-path cost when disabled is one relaxed atomic
// load per launch and a null-pointer test per access.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hipsim/shadow.h"

namespace xbfs::sim {

struct SanitizeConfig {
  bool bounds = false;  ///< out-of-bounds span indexing
  bool init = false;    ///< reads of never-written words
  bool stale = false;   ///< host reads of un-copied device data
  bool free = false;    ///< use-after-free through stale spans
  bool races = false;   ///< per-launch access log + cross-block race analysis

  bool any() const { return bounds || init || stale || free || races; }
  static SanitizeConfig all_on() {
    SanitizeConfig c;
    c.bounds = c.init = c.stale = c.free = c.races = true;
    return c;
  }
  /// Parse the XBFS_SANITIZE spec: a comma list of the field names above,
  /// or "all"/"on"/"1" for everything.  Unknown tokens warn to stderr and
  /// are ignored; an empty spec leaves everything off.
  static SanitizeConfig from_env_string(const std::string& spec);
};

/// An aggregated defect: findings are keyed by (kind, kernel, buffer) so a
/// racy sweep over a million-vertex status array is one row with a count,
/// not a million rows.
struct Finding {
  DefectKind kind = DefectKind::OutOfBounds;
  std::string kernel;  ///< empty for host-side findings
  std::string buffer;  ///< allocation name ("<unnamed>" when not given)
  std::uint64_t count = 0;      ///< distinct occurrences (addresses/events)
  std::uint64_t example_off = 0;  ///< byte offset in the buffer, first hit
  std::string detail;  ///< defect description, or the racy_ok reason
};

/// One logged global-memory access (race mode).  `why` points at the
/// static racy_ok reason string when the access was annotated.
struct AccessRecord {
  const BufferShadow* shadow = nullptr;
  std::uint64_t addr = 0;
  std::uint32_t block = 0;
  std::uint32_t wavefront = 0;
  std::uint16_t lane = 0;
  std::uint8_t flags = 0;
  const char* why = nullptr;
};
inline constexpr std::uint8_t kAccWrite = 1;
inline constexpr std::uint8_t kAccAtomic = 2;
inline constexpr std::uint8_t kAccRacyOk = 4;

enum class AccKind : std::uint8_t { Read, Write, AtomicRead, AtomicRmw };

class Sanitizer;

/// Per-worker sanitizer state for one launch, wired into ExecCtx by
/// Device::launch.  The config flags are snapshotted here so the per-access
/// hot path never touches the global Sanitizer.
struct SanRecorder {
  Sanitizer* san = nullptr;
  std::string_view kernel;  ///< outlives the launch (owned by the caller)
  bool chk_bounds = false;
  bool chk_init = false;
  bool chk_free = false;
  bool log_races = false;
  std::vector<AccessRecord> log;
  /// racy_ok scopes entered on this worker (static reason strings), merged
  /// into the per-annotation hit counters by analyze_launch.
  std::vector<const char*> ann_entered;
};

/// Per-access check + log hook, called by ExecCtx only when a recorder is
/// attached.  Returns false when the access must be skipped (out of bounds
/// or use-after-free) — the simulator never performs an unsafe access even
/// when the corresponding report category is off.
bool san_check(SanRecorder& rec, const BufferShadow* shadow,
               std::uint64_t addr, std::size_t index, std::size_t span_size,
               std::size_t elem_size, AccKind kind, std::uint32_t block,
               std::uint32_t wavefront, std::uint16_t lane,
               const char* racy_why);

class Sanitizer {
 public:
  /// Process-wide instance.  First use reads XBFS_SANITIZE from the
  /// environment (if set) so any binary can be checked unmodified.
  static Sanitizer& global();

  Sanitizer() = default;
  Sanitizer(const Sanitizer&) = delete;
  Sanitizer& operator=(const Sanitizer&) = delete;

  void configure(const SanitizeConfig& cfg);
  void disable();
  /// Drop accumulated findings and the shadow registry (config stays).
  /// Only legal while no spans of dead buffers are outstanding.
  void reset();

  /// Hot-path gate: one relaxed atomic load when the sanitizer is off.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  SanitizeConfig config() const;
  bool check_stale() const {
    return chk_stale_.load(std::memory_order_relaxed);
  }
  bool check_init() const { return chk_init_.load(std::memory_order_relaxed); }

  /// Shadow factory: null when disabled.  The registry keeps shadows alive
  /// past their buffer so dangling spans stay diagnosable.
  std::shared_ptr<BufferShadow> make_shadow(std::uint64_t base_addr,
                                            std::size_t bytes,
                                            std::string name);

  /// Prepare a per-worker recorder for a launch of `kernel`.
  void init_recorder(SanRecorder& rec, std::string_view kernel);

  /// Record one finding occurrence (aggregated by kind/kernel/buffer).
  void report(DefectKind kind, std::string_view kernel,
              const BufferShadow* shadow, std::uint64_t byte_off,
              const char* detail);

  /// Post-launch race analysis over every worker's access log.  Two
  /// accesses to the same address conflict when they come from different
  /// blocks, at least one is a write, and at least one is non-atomic;
  /// the conflict is allowlisted iff every non-atomic participant was made
  /// under a sim::racy_ok annotation.
  void analyze_launch(std::string_view kernel,
                      std::vector<SanRecorder>& recs);

  std::vector<Finding> findings() const;
  std::uint64_t finding_count(DefectKind k) const {
    return counts_[static_cast<unsigned>(k)].load(std::memory_order_relaxed);
  }
  /// Everything that demands action: every kind except allowlisted races.
  std::uint64_t unannotated_count() const;
  std::uint64_t allowlisted_count() const {
    return finding_count(DefectKind::DataRaceAllowlisted);
  }
  /// Human-readable triage table (one line per aggregated finding).
  void summary(std::ostream& os) const;

  /// Per-racy_ok-annotation hygiene counters, keyed by the reason string.
  /// An annotation whose scope runs but which never covers a logged access
  /// is *stale*: the code it excused has moved and the allowlist entry
  /// silently rots (scripts/check_sanitize.sh fails on these).
  struct AnnotationStats {
    std::string why;
    std::uint64_t scopes_entered = 0;      ///< racy_ok constructions seen
    std::uint64_t annotated_accesses = 0;  ///< logged accesses it covered
    std::uint64_t allowlisted_findings = 0;  ///< race findings it excused
  };
  std::vector<AnnotationStats> annotation_stats() const;
  /// Reasons with scopes_entered > 0 but annotated_accesses == 0.
  std::vector<std::string> stale_annotations() const;

 private:
  struct AnnCounters {
    std::uint64_t scopes = 0;
    std::uint64_t accesses = 0;
    std::uint64_t findings = 0;
  };

  mutable std::mutex mu_;
  SanitizeConfig cfg_;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> chk_stale_{false};
  std::atomic<bool> chk_init_{false};
  std::vector<std::shared_ptr<BufferShadow>> registry_;
  std::vector<Finding> findings_;
  std::map<std::string, std::size_t> finding_index_;
  std::map<std::string, AnnCounters> ann_stats_;
  std::atomic<std::uint64_t> counts_[kNumDefectKinds] = {};
};

}  // namespace xbfs::sim
