#include "hipsim/device_profile.h"

namespace xbfs::sim {

DeviceProfile DeviceProfile::mi250x_gcd() {
  DeviceProfile p;
  p.name = "AMD MI250X (1 GCD)";
  p.wavefront_size = 64;
  p.num_cus = 110;
  p.l2_bytes = 8ull * 1024 * 1024;
  p.l2_line_bytes = 128;
  p.l2_ways = 16;
  p.device_mem_bytes = 64ull * 1024 * 1024 * 1024;
  p.hbm_bytes_per_us = 1.6e6;
  p.l2_bytes_per_us = 6.0e6;
  p.lane_slots_per_us = 1.2e7;
  p.atomics_per_us = 2.0e3;
  p.kernel_launch_us = 4.0;
  p.first_launch_us = 20000.0;  // ~20 ms HIP warm-up, visible in Tables III-V
  // AMD device synchronization is markedly more expensive than NVIDIA's;
  // this drives the paper's stream-consolidation optimization (Sec. IV-B).
  p.device_sync_us = 18.0;
  p.stream_join_us = 14.0;
  return p;
}

DeviceProfile DeviceProfile::p6000() {
  DeviceProfile p;
  p.name = "NVIDIA Quadro P6000";
  p.wavefront_size = 32;
  p.num_cus = 30;  // 30 SMs
  p.l2_bytes = 3ull * 1024 * 1024;
  p.l2_line_bytes = 128;
  p.l2_ways = 16;
  p.device_mem_bytes = 24ull * 1024 * 1024 * 1024;
  p.hbm_bytes_per_us = 4.3e5;   // 432 GB/s GDDR5X
  p.l2_bytes_per_us = 1.5e6;
  p.l2_hit_latency_cycles = 120;
  p.hbm_latency_cycles = 450;
  p.clock_ghz = 0.95;
  p.mem_parallelism = 30.0 * 32 * 8;  // 30 SMs x warp x resident waves
  p.lane_slots_per_us = 3.6e6;  // 3840 CUDA cores * ~0.95 GHz
  p.atomics_per_us = 1.5e3;
  p.kernel_launch_us = 2.5;
  p.first_launch_us = 1500.0;
  p.device_sync_us = 4.0;       // cheap sync: three streams paid off here
  p.stream_join_us = 3.0;
  return p;
}

DeviceProfile DeviceProfile::test_profile() {
  DeviceProfile p;
  p.name = "test-device";
  p.wavefront_size = 64;
  p.num_cus = 4;
  p.l2_bytes = 64 * 1024;
  p.l2_line_bytes = 64;
  p.l2_ways = 4;
  p.device_mem_bytes = 1ull * 1024 * 1024 * 1024;
  p.hbm_bytes_per_us = 1.0e5;
  p.l2_bytes_per_us = 4.0e5;
  p.l2_hit_latency_cycles = 100;
  p.hbm_latency_cycles = 400;
  p.clock_ghz = 1.0;
  p.mem_parallelism = 4.0 * 64 * 4;
  p.lane_slots_per_us = 1.0e6;
  p.atomics_per_us = 1.0e3;
  p.kernel_launch_us = 1.0;
  p.device_sync_us = 5.0;
  p.stream_join_us = 4.0;
  return p;
}

}  // namespace xbfs::sim
