#include "hipsim/mem_model.h"

#include <bit>
#include <cassert>

namespace xbfs::sim {

namespace {
/// Largest power of two <= v (v must be >= 1).
std::uint64_t floor_pow2(std::uint64_t v) {
  assert(v >= 1);
  return std::uint64_t{1} << (63 - std::countl_zero(v));
}
}  // namespace

CacheShard::CacheShard(std::uint64_t capacity_bytes, unsigned line_bytes,
                       unsigned ways)
    : ways_(ways) {
  const std::uint64_t lines = capacity_bytes / line_bytes;
  const std::uint64_t sets = lines / ways;
  num_sets_ = static_cast<unsigned>(floor_pow2(sets > 0 ? sets : 1));
  ways_storage_.assign(static_cast<std::size_t>(num_sets_) * ways_, Way{});
}

CacheShard::AccessResult CacheShard::access(std::uint64_t line,
                                            bool is_write) {
  // Mix the line index so that strided access patterns spread over sets.
  const std::uint64_t mixed = line * 0x9E3779B97F4A7C15ull;
  const unsigned set = static_cast<unsigned>((mixed >> 17) & (num_sets_ - 1));
  Way* row = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  ++stamp_;

  unsigned victim = 0;
  std::uint64_t oldest = ~0ull;
  for (unsigned w = 0; w < ways_; ++w) {
    if (row[w].tag == line) {
      row[w].stamp = stamp_;
      row[w].dirty = row[w].dirty || is_write;
      return {.hit = true, .writeback = false};
    }
    if (row[w].stamp < oldest) {
      oldest = row[w].stamp;
      victim = w;
    }
  }
  const bool writeback = row[victim].tag != kInvalidTag && row[victim].dirty;
  row[victim].tag = line;
  row[victim].stamp = stamp_;
  row[victim].dirty = is_write;
  return {.hit = false, .writeback = writeback};
}

void CacheShard::invalidate_all() {
  for (Way& w : ways_storage_) w = Way{};
  stamp_ = 0;
}

L2Model::L2Model(const DeviceProfile& profile, unsigned n_shards)
    : line_bytes_(profile.l2_line_bytes) {
  n_shards = static_cast<unsigned>(floor_pow2(n_shards > 0 ? n_shards : 1));
  const std::uint64_t shard_bytes = profile.l2_bytes / n_shards;
  shards_.reserve(n_shards);
  for (unsigned i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<CacheShard>(
        shard_bytes, profile.l2_line_bytes, profile.l2_ways));
  }
  locks_ = std::make_unique<Spinlock[]>(n_shards);
}

void L2Model::access(std::uint64_t addr, unsigned bytes, bool is_write,
                     KernelCounters& c) {
  const std::uint64_t first_line = addr / line_bytes_;
  const std::uint64_t last_line = (addr + (bytes ? bytes - 1 : 0)) / line_bytes_;
  const unsigned mask = n_shards() - 1;
  const unsigned nlines = static_cast<unsigned>(last_line - first_line + 1);
  const unsigned payload_per_line = bytes / nlines;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    const unsigned shard = static_cast<unsigned>(line & mask);
    locks_[shard].lock();
    const CacheShard::AccessResult r = shards_[shard]->access(line, is_write);
    locks_[shard].unlock();
    if (r.hit) {
      c.l2_hits += 1;
      // Service bandwidth is charged per payload, not per line: consecutive
      // lanes of a wavefront hitting one line coalesce into one transaction
      // on real hardware, and the per-lane accounting here sums to exactly
      // the coalesced payload.
      c.l2_hit_bytes += payload_per_line;
    } else {
      c.l2_misses += 1;
      c.fetch_bytes += line_bytes_;
    }
    if (r.writeback) c.writeback_bytes += line_bytes_;
  }
}

void L2Model::invalidate_all() {
  for (auto& s : shards_) s->invalidate_all();
}

}  // namespace xbfs::sim
