// Kernel launch: schedules the grid's blocks onto the worker pool, merges
// per-worker counters, derives the per-virtual-CU load-imbalance factor and
// advances the owning stream's clock by the modelled kernel time.
#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "hipsim/device.h"

namespace xbfs::sim {

namespace {

/// Scalar "micro-time" of a block, used only to measure imbalance across
/// virtual CUs; absolute scale cancels in the max/mean ratio.
double block_micro_time(const DeviceProfile& p, const KernelCounters& before,
                        const KernelCounters& after) {
  const double fetch =
      static_cast<double>(after.fetch_bytes - before.fetch_bytes) /
      p.hbm_bytes_per_us;
  const double l2 =
      static_cast<double>(after.l2_hit_bytes - before.l2_hit_bytes) /
      p.l2_bytes_per_us;
  const double slots =
      static_cast<double>(after.lane_slots - before.lane_slots) /
      (p.lane_slots_per_us / p.num_cus);
  const double atomics =
      static_cast<double>(after.atomics - before.atomics) / p.atomics_per_us;
  return fetch + l2 + slots + atomics;
}

}  // namespace

LaunchResult Device::launch(Stream& s, std::string_view name,
                            const LaunchConfig& cfg, const KernelBody& body) {
  if (cfg.grid_blocks < 1 || cfg.block_threads < 1 ||
      cfg.block_threads > profile_.max_block_threads) {
    throw std::invalid_argument(
        "invalid launch configuration for kernel '" + std::string(name) +
        "' (hipErrorInvalidConfiguration)");
  }

  const unsigned n_workers = pool_->size();
  std::vector<KernelCounters> worker_counters(n_workers);
  std::vector<MemProbe> probes;
  probes.reserve(n_workers);
  for (unsigned w = 0; w < n_workers; ++w) {
    probes.emplace_back(l2_.get(), &worker_counters[w]);
  }

  const unsigned n_vcus = profile_.num_cus;
  std::vector<std::atomic<double>> vcu_busy(n_vcus);
  for (auto& v : vcu_busy) v.store(0.0, std::memory_order_relaxed);

  pool_->parallel_for(
      cfg.grid_blocks, [&](unsigned worker, std::uint64_t block_id) {
        ExecCtx ctx(&probes[worker], &profile_);
        ShMem& shmem = *worker_shmem_[worker];
        shmem.reset();
        const KernelCounters before = worker_counters[worker];
        BlockCtx blk(&ctx, &shmem, static_cast<unsigned>(block_id),
                     cfg.grid_blocks, cfg.block_threads);
        body(blk);
        const double dt =
            block_micro_time(profile_, before, worker_counters[worker]);
        vcu_busy[block_id % n_vcus].fetch_add(dt, std::memory_order_relaxed);
      });

  LaunchResult result;
  for (const KernelCounters& wc : worker_counters) result.counters += wc;

  // Imbalance: critical-path CU over the mean across CUs that could have
  // been used (all of them once the grid saturates the device).
  double max_busy = 0.0, sum_busy = 0.0;
  for (const auto& v : vcu_busy) {
    const double b = v.load(std::memory_order_relaxed);
    max_busy = std::max(max_busy, b);
    sum_busy += b;
  }
  const unsigned used_vcus = std::min<unsigned>(n_vcus, cfg.grid_blocks);
  const double mean_busy = used_vcus > 0 ? sum_busy / used_vcus : 0.0;
  const double raw_imbalance =
      mean_busy > 0.0 ? max_busy / mean_busy : 1.0;

  result.timing = kernel_time(profile_, result.counters, raw_imbalance,
                              cfg.lane_work_multiplier);
  if (!first_launch_done_) {
    // HIP module load / runtime warm-up lands on the first kernel.
    result.timing.total_us += profile_.first_launch_us;
    first_launch_done_ = true;
  }
  result.time_us = result.timing.total_us;

  s.t_end_ = stream_begin(s) + result.time_us;

  if (profiler_.enabled()) {
    LaunchRecord rec;
    rec.kernel = std::string(name);
    rec.tag = profiler_.tag();
    rec.level = profiler_.level();
    rec.counters = result.counters;
    rec.timing = result.timing;
    profiler_.record(std::move(rec));
  }
  return result;
}

}  // namespace xbfs::sim
