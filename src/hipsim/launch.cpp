// Kernel launch: schedules the grid's blocks onto the worker pool, merges
// per-worker counters, derives the per-virtual-CU load-imbalance factor and
// advances the owning stream's clock by the modelled kernel time.
#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "hipsim/device.h"
#include "hipsim/fault.h"
#include "hipsim/sanitizer.h"
#include "hipsim/schedcheck.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xbfs::sim {

namespace {

/// Scalar "micro-time" of a block, used only to measure imbalance across
/// virtual CUs; absolute scale cancels in the max/mean ratio.
double block_micro_time(const DeviceProfile& p, const KernelCounters& before,
                        const KernelCounters& after) {
  const double fetch =
      static_cast<double>(after.fetch_bytes - before.fetch_bytes) /
      p.hbm_bytes_per_us;
  const double l2 =
      static_cast<double>(after.l2_hit_bytes - before.l2_hit_bytes) /
      p.l2_bytes_per_us;
  const double slots =
      static_cast<double>(after.lane_slots - before.lane_slots) /
      (p.lane_slots_per_us / p.num_cus);
  const double atomics =
      static_cast<double>(after.atomics - before.atomics) / p.atomics_per_us;
  return fetch + l2 + slots + atomics;
}

}  // namespace

LaunchResult Device::launch(Stream& s, std::string_view name,
                            const LaunchConfig& cfg, const KernelBody& body) {
  if (cfg.grid_blocks < 1 || cfg.block_threads < 1 ||
      cfg.block_threads > profile_.max_block_threads) {
    throw std::invalid_argument(
        "invalid launch configuration for kernel '" + std::string(name) +
        "' (hipErrorInvalidConfiguration)");
  }

  FaultInjector& faults = FaultInjector::global();
  double spike_us = 0.0;
  if (faults.enabled()) {
    if (faults.should_inject(FaultKind::KernelFault)) {
      obs::MetricsRegistry& fmx = obs::MetricsRegistry::global();
      if (fmx.enabled()) fmx.counter("sim.faults.kernel").add();
      obs::TraceSession& ftr = obs::TraceSession::global();
      if (ftr.enabled()) {
        ftr.instant("fault.kernel", "fault", "stream:" + s.name(),
                    trace_pid_, stream_begin(s));
      }
      obs::FlightRecorder::global().record(
          "sim", "kernel_fault", name, 0,
          static_cast<std::uint64_t>(trace_pid_));
      throw FaultInjected(
          FaultKind::KernelFault,
          "injected kernel fault in '" + std::string(name) +
              "' (hipErrorUnknown)");
    }
    if (faults.should_inject(FaultKind::LatencySpike)) {
      spike_us = faults.latency_spike_us();
      obs::MetricsRegistry& fmx = obs::MetricsRegistry::global();
      if (fmx.enabled()) fmx.counter("sim.faults.spike").add();
    }
  }

  const unsigned n_workers = pool_->size();
  std::vector<KernelCounters> worker_counters(n_workers);
  std::vector<MemProbe> probes;
  probes.reserve(n_workers);
  for (unsigned w = 0; w < n_workers; ++w) {
    probes.emplace_back(l2_.get(), &worker_counters[w]);
  }

  // SimSan: when enabled, each worker gets a recorder so every simulated
  // access is checked and (in race mode) logged for post-launch analysis.
  Sanitizer& san = Sanitizer::global();
  const bool sanitize = san.enabled();
  std::vector<SanRecorder> san_recs;
  if (sanitize) {
    san_recs.resize(n_workers);
    for (SanRecorder& r : san_recs) san.init_recorder(r, name);
  }

  const unsigned n_vcus = profile_.num_cus;
  std::vector<std::atomic<double>> vcu_busy(n_vcus);
  for (auto& v : vcu_busy) v.store(0.0, std::memory_order_relaxed);

  Schedule* sched = sanitize ? SchedCheck::current() : nullptr;
  if (sched != nullptr) {
    // SchedCheck-controlled execution: the launching thread is inside an
    // exploration, so the grid's blocks run as controlled tasks (one
    // runnable at a time, preemptible at every sanitized access) instead
    // of free-running pool workers.  Each task gets its own counters,
    // probe, recorder and LDS arena — the pool's per-worker state is
    // untouched, so controlled and pooled launches can interleave freely
    // across schedules.
    const unsigned n_lanes = static_cast<unsigned>(std::min<std::uint64_t>(
        cfg.grid_blocks, SchedCheck::kMaxTasks));
    std::vector<KernelCounters> lane_counters(n_lanes);
    std::vector<MemProbe> lane_probes;
    lane_probes.reserve(n_lanes);
    for (unsigned l = 0; l < n_lanes; ++l) {
      lane_probes.emplace_back(l2_.get(), &lane_counters[l]);
    }
    std::vector<SanRecorder> lane_recs(n_lanes);
    for (SanRecorder& r : lane_recs) san.init_recorder(r, name);
    std::vector<std::unique_ptr<ShMem>> lane_shmem;
    lane_shmem.reserve(n_lanes);
    for (unsigned l = 0; l < n_lanes; ++l) {
      lane_shmem.push_back(std::make_unique<ShMem>(options_.lds_bytes));
    }
    sched->run_tasks(n_lanes, [&](std::size_t lane) {
      for (std::uint64_t block_id = lane; block_id < cfg.grid_blocks;
           block_id += n_lanes) {
        ExecCtx ctx(&lane_probes[lane], &profile_, &lane_recs[lane],
                    static_cast<unsigned>(block_id));
        ShMem& shmem = *lane_shmem[lane];
        shmem.reset();
        const KernelCounters before = lane_counters[lane];
        BlockCtx blk(&ctx, &shmem, static_cast<unsigned>(block_id),
                     cfg.grid_blocks, cfg.block_threads);
        body(blk);
        const double dt =
            block_micro_time(profile_, before, lane_counters[lane]);
        vcu_busy[block_id % n_vcus].fetch_add(dt, std::memory_order_relaxed);
      }
    });
    san.analyze_launch(name, lane_recs);
    for (const KernelCounters& lc : lane_counters) worker_counters[0] += lc;
  } else {
    pool_->parallel_for(
        cfg.grid_blocks, [&](unsigned worker, std::uint64_t block_id) {
          ExecCtx ctx(&probes[worker], &profile_,
                      sanitize ? &san_recs[worker] : nullptr,
                      static_cast<unsigned>(block_id));
          ShMem& shmem = *worker_shmem_[worker];
          shmem.reset();
          const KernelCounters before = worker_counters[worker];
          BlockCtx blk(&ctx, &shmem, static_cast<unsigned>(block_id),
                       cfg.grid_blocks, cfg.block_threads);
          body(blk);
          const double dt =
              block_micro_time(profile_, before, worker_counters[worker]);
          vcu_busy[block_id % n_vcus].fetch_add(dt,
                                                std::memory_order_relaxed);
        });

    if (sanitize) san.analyze_launch(name, san_recs);
  }

  LaunchResult result;
  for (const KernelCounters& wc : worker_counters) result.counters += wc;

  // Imbalance: critical-path CU over the mean across CUs that could have
  // been used (all of them once the grid saturates the device).
  double max_busy = 0.0, sum_busy = 0.0;
  for (const auto& v : vcu_busy) {
    const double b = v.load(std::memory_order_relaxed);
    max_busy = std::max(max_busy, b);
    sum_busy += b;
  }
  const unsigned used_vcus = std::min<unsigned>(n_vcus, cfg.grid_blocks);
  const double mean_busy = used_vcus > 0 ? sum_busy / used_vcus : 0.0;
  const double raw_imbalance =
      mean_busy > 0.0 ? max_busy / mean_busy : 1.0;

  result.timing = kernel_time(profile_, result.counters, raw_imbalance,
                              cfg.lane_work_multiplier);
  if (!first_launch_done_) {
    // HIP module load / runtime warm-up lands on the first kernel.
    result.timing.total_us += profile_.first_launch_us;
    first_launch_done_ = true;
  }
  // An injected latency spike lands on the modelled clock like a real SERR
  // retrain or preemption blip would: the kernel simply takes longer.
  result.timing.total_us += spike_us;
  result.time_us = result.timing.total_us;

  const double sim_start_us = stream_begin(s);
  s.t_end_ = sim_start_us + result.time_us;

  // Bill the launch to whoever is being served right now (per-query
  // attribution); a faulted launch threw above and attributes nothing.
  if (attr_sink_ != nullptr) {
    attr_sink_->counters += result.counters;
    attr_sink_->launches += 1;
    attr_sink_->modelled_us += result.time_us;
  }

  if (profiler_.enabled()) {
    LaunchRecord rec;
    rec.kernel = std::string(name);
    rec.tag = profiler_.tag();
    rec.level = profiler_.level();
    rec.counters = result.counters;
    rec.timing = result.timing;
    profiler_.record(std::move(rec));
  }

  // Every launch is a trace span on its stream's lane, stamped with the
  // modelled interval and the rocprofiler-style counters — callers get
  // kernel attribution without remembering to set any context.
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    obs::Span sp;
    sp.name = std::string(name);
    sp.category = "kernel";
    sp.track = "stream:" + s.name();
    sp.pid = trace_pid_;
    sp.sim_start_us = sim_start_us;
    sp.sim_dur_us = result.time_us;
    sp.attr("grid_blocks", static_cast<std::uint64_t>(cfg.grid_blocks));
    sp.attr("block_threads", static_cast<std::uint64_t>(cfg.block_threads));
    sp.attr("fetch_kb", result.counters.fetch_kb());
    sp.attr("l2_hit_pct", result.counters.l2_hit_pct());
    sp.attr("mem_unit_busy_pct", result.timing.mem_unit_busy_pct());
    sp.attr("lane_efficiency", result.counters.lane_efficiency());
    if (profiler_.level() >= 0) {
      sp.attr("level", static_cast<std::int64_t>(profiler_.level()));
    }
    if (!profiler_.tag().empty()) sp.attr("tag", profiler_.tag());
    tr.complete(std::move(sp));
  }

  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.counter("sim.launches").add();
    mx.counter("sim.fetch_bytes").add(result.counters.fetch_bytes);
    mx.counter("sim.atomics").add(result.counters.atomics);
    mx.counter("sim.lane_slots").add(result.counters.lane_slots);
    mx.counter("sim.active_lanes").add(result.counters.active_lanes);
    mx.histogram("sim.kernel_us").observe(result.time_us);
  }
  return result;
}

}  // namespace xbfs::sim
