// rocprofiler-style per-kernel records.  Every launch (when profiling is
// enabled) appends one row carrying the three counters the paper reports —
// FetchSize, L2CacheHit, MemUnitBusy — plus the raw event counts, a free-form
// tag (we use it for the BFS level and strategy) and the modelled duration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hipsim/counters.h"
#include "hipsim/timing.h"

namespace xbfs::sim {

struct LaunchRecord {
  std::string kernel;   ///< kernel name as passed to Device::launch
  std::string tag;      ///< caller-set context, e.g. "level=3 strategy=bu"
  int level = -1;       ///< caller-set BFS level (or -1)
  KernelCounters counters;
  TimingBreakdown timing;

  double runtime_ms() const { return timing.total_us / 1000.0; }
  double l2_pct() const { return counters.l2_hit_pct(); }
  double mbusy_pct() const { return timing.mem_unit_busy_pct(); }
  double fetch_kb() const { return counters.fetch_kb(); }
};

class Profiler {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Context applied to subsequently recorded launches.
  void set_context(int level, std::string tag) {
    level_ = level;
    tag_ = std::move(tag);
  }
  int level() const { return level_; }
  const std::string& tag() const { return tag_; }

  void record(LaunchRecord r) {
    if (enabled_) records_.push_back(std::move(r));
  }
  /// Drop all records AND the launch context, so a fresh run cannot inherit
  /// the previous run's level/tag.
  void clear() {
    records_.clear();
    level_ = -1;
    tag_.clear();
  }

  const std::vector<LaunchRecord>& records() const { return records_; }

  /// Rows whose kernel name contains `substr` (empty matches all).
  std::vector<LaunchRecord> matching(const std::string& substr) const;

  /// Sum of modelled runtime (ms) over rows matching `substr`.
  double total_runtime_ms(const std::string& substr = "") const;
  /// Sum of HBM fetch traffic (KB) over rows matching `substr`.
  double total_fetch_kb(const std::string& substr = "") const;

  /// Print a table resembling the paper's rocprofiler tables (III-V).
  void print_table(std::ostream& os) const;

  /// Runtime summed per kernel name (the Fig. 5 "toolkit" view), sorted by
  /// descending total runtime.
  struct KernelTotal {
    std::string kernel;
    double runtime_ms = 0;
    double fetch_kb = 0;
    std::uint64_t launches = 0;
  };
  std::vector<KernelTotal> aggregate_by_kernel() const;

  /// rocprof-style CSV dump of every record.
  void write_csv(std::ostream& os) const;

 private:
  bool enabled_ = true;
  int level_ = -1;
  std::string tag_;
  std::vector<LaunchRecord> records_;
};

}  // namespace xbfs::sim
