#include "hipsim/fault.h"

#include <cstdio>
#include <cstdlib>

namespace xbfs::sim {

namespace {

/// splitmix64: tiny, well-mixed, stateless — ideal for counter-based
/// deterministic decisions (same seed + same sequence number -> same draw
/// no matter which thread asks).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t h) {
  // Top 53 bits -> [0,1) double.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::KernelFault: return "kernel-fault";
    case FaultKind::MemcpyCorruption: return "memcpy-corruption";
    case FaultKind::WorkerStall: return "worker-stall";
    case FaultKind::WorkerDeath: return "worker-death";
    case FaultKind::LatencySpike: return "latency-spike";
    case FaultKind::DiskTornWrite: return "disk-torn-write";
    case FaultKind::DiskShortWrite: return "disk-short-write";
    case FaultKind::FsyncFail: return "fsync-fail";
  }
  return "unknown";
}

double FaultConfig::rate(FaultKind k) const {
  switch (k) {
    case FaultKind::KernelFault: return kernel_fault_rate;
    case FaultKind::MemcpyCorruption: return memcpy_corruption_rate;
    case FaultKind::WorkerStall: return worker_stall_rate;
    case FaultKind::WorkerDeath: return worker_death_rate;
    case FaultKind::LatencySpike: return latency_spike_rate;
    case FaultKind::DiskTornWrite: return disk_torn_rate;
    case FaultKind::DiskShortWrite: return disk_short_rate;
    case FaultKind::FsyncFail: return fsync_fail_rate;
  }
  return 0.0;
}

FaultConfig FaultConfig::from_env_string(const std::string& spec) {
  FaultConfig cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "XBFS_FAULTS: ignoring malformed item '%s'\n",
                   item.c_str());
      continue;
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    char* parse_end = nullptr;
    const double num = std::strtod(val.c_str(), &parse_end);
    if (parse_end == val.c_str()) {
      std::fprintf(stderr, "XBFS_FAULTS: ignoring non-numeric value '%s'\n",
                   item.c_str());
      continue;
    }
    if (key == "kernel") cfg.kernel_fault_rate = num;
    else if (key == "memcpy") cfg.memcpy_corruption_rate = num;
    else if (key == "stall") cfg.worker_stall_rate = num;
    else if (key == "death") cfg.worker_death_rate = num;
    else if (key == "spike") cfg.latency_spike_rate = num;
    else if (key == "disk_torn") cfg.disk_torn_rate = num;
    else if (key == "disk_short") cfg.disk_short_rate = num;
    else if (key == "fsync_fail") cfg.fsync_fail_rate = num;
    else if (key == "stall_ms") cfg.stall_ms = num;
    else if (key == "spike_us") cfg.latency_spike_us = num;
    else if (key == "seed") cfg.seed = static_cast<std::uint64_t>(num);
    else {
      std::fprintf(stderr, "XBFS_FAULTS: ignoring unknown key '%s'\n",
                   key.c_str());
    }
  }
  return cfg;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector* instance = [] {
    auto* fi = new FaultInjector();
    if (const char* env = std::getenv("XBFS_FAULTS")) {
      const FaultConfig cfg = FaultConfig::from_env_string(env);
      if (cfg.any()) fi->configure(cfg);
    }
    return fi;
  }();
  return *instance;
}

void FaultInjector::configure(const FaultConfig& cfg) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cfg_ = cfg;
  }
  enabled_.store(cfg.any(), std::memory_order_release);
}

void FaultInjector::disable() {
  enabled_.store(false, std::memory_order_release);
}

bool FaultInjector::should_inject(FaultKind k) {
  const unsigned ki = static_cast<unsigned>(k);
  double rate;
  std::uint64_t seed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rate = cfg_.rate(k);
    seed = cfg_.seed;
  }
  // Sequence numbers advance even at rate 0 so enabling one kind does not
  // shift another kind's decision stream.
  const std::uint64_t seq = seq_[ki].fetch_add(1, std::memory_order_relaxed);
  if (rate <= 0.0) return false;
  const std::uint64_t h =
      splitmix64(seed ^ (0x51ED270B1ull * (ki + 1)) ^ (seq * 0x2545F4914F6CDD1Dull));
  const bool hit = uniform01(h) < rate;
  if (hit) hits_[ki].fetch_add(1, std::memory_order_relaxed);
  return hit;
}

std::uint64_t FaultInjector::decisions(FaultKind k) const {
  return seq_[static_cast<unsigned>(k)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultKind k) const {
  return hits_[static_cast<unsigned>(k)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t t = 0;
  for (unsigned i = 0; i < kNumFaultKinds; ++i) {
    t += hits_[i].load(std::memory_order_relaxed);
  }
  return t;
}

void FaultInjector::reset_counters() {
  for (unsigned i = 0; i < kNumFaultKinds; ++i) {
    seq_[i].store(0, std::memory_order_relaxed);
    hits_[i].store(0, std::memory_order_relaxed);
  }
  corrupt_seq_.store(0, std::memory_order_relaxed);
}

double FaultInjector::stall_ms() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cfg_.stall_ms;
}

double FaultInjector::latency_spike_us() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cfg_.latency_spike_us;
}

FaultConfig FaultInjector::config() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cfg_;
}

void FaultInjector::corrupt_levels(std::vector<std::int32_t>& levels) {
  if (levels.empty()) return;
  std::uint64_t seed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    seed = cfg_.seed;
  }
  const std::uint64_t seq =
      corrupt_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = splitmix64(seed ^ 0xBADC0DEull ^ (seq << 17));
  const std::size_t idx = static_cast<std::size_t>(h % levels.size());
  std::int32_t& slot = levels[idx];
  if (slot < 0) {
    // Unreached sentinel -> bogus "reached at level 0": violates the
    // unique-source rule (or reached/unreached edge rule) in any validator.
    slot = 0;
  } else {
    // Flip a low bit: the exact-distance labeling is unique, so any changed
    // reached level breaks one of the per-edge distance constraints.
    slot ^= 0x1;
  }
}

}  // namespace xbfs::sim
