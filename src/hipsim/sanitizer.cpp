// SimSan implementation: config parsing, the findings store, the per-access
// check hook and the post-launch cross-block race analyzer.
#include "hipsim/sanitizer.h"

#include <cstdlib>
#include <iostream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "hipsim/schedcheck.h"
#include "obs/metrics.h"

namespace xbfs::sim {

const char* defect_kind_name(DefectKind k) {
  switch (k) {
    case DefectKind::OutOfBounds: return "out-of-bounds";
    case DefectKind::UseAfterFree: return "use-after-free";
    case DefectKind::UninitRead: return "uninit-read";
    case DefectKind::StaleHostRead: return "stale-host-read";
    case DefectKind::DataRace: return "data-race";
    case DefectKind::DataRaceAllowlisted: return "data-race-allowlisted";
  }
  return "?";
}

SanitizeConfig SanitizeConfig::from_env_string(const std::string& spec) {
  SanitizeConfig cfg;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    // Trim surrounding spaces.
    const auto b = tok.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    tok = tok.substr(b, tok.find_last_not_of(" \t") - b + 1);
    if (tok == "all" || tok == "on" || tok == "1") {
      cfg = all_on();
    } else if (tok == "bounds") {
      cfg.bounds = true;
    } else if (tok == "init") {
      cfg.init = true;
    } else if (tok == "stale") {
      cfg.stale = true;
    } else if (tok == "free") {
      cfg.free = true;
    } else if (tok == "races") {
      cfg.races = true;
    } else {
      std::cerr << "XBFS_SANITIZE: unknown token '" << tok << "' ignored\n";
    }
  }
  return cfg;
}

Sanitizer& Sanitizer::global() {
  static Sanitizer* g = [] {
    auto* s = new Sanitizer();
    if (const char* env = std::getenv("XBFS_SANITIZE")) {
      const SanitizeConfig cfg = SanitizeConfig::from_env_string(env);
      if (cfg.any()) s->configure(cfg);
    }
    return s;
  }();
  return *g;
}

void Sanitizer::configure(const SanitizeConfig& cfg) {
  std::lock_guard<std::mutex> lk(mu_);
  cfg_ = cfg;
  chk_stale_.store(cfg.stale, std::memory_order_relaxed);
  chk_init_.store(cfg.init, std::memory_order_relaxed);
  enabled_.store(cfg.any(), std::memory_order_relaxed);
}

void Sanitizer::disable() {
  std::lock_guard<std::mutex> lk(mu_);
  cfg_ = SanitizeConfig{};
  chk_stale_.store(false, std::memory_order_relaxed);
  chk_init_.store(false, std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_relaxed);
}

void Sanitizer::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  registry_.clear();
  findings_.clear();
  finding_index_.clear();
  ann_stats_.clear();
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

SanitizeConfig Sanitizer::config() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cfg_;
}

std::shared_ptr<BufferShadow> Sanitizer::make_shadow(std::uint64_t base_addr,
                                                     std::size_t bytes,
                                                     std::string name) {
  if (!enabled()) return nullptr;
  auto shadow =
      std::make_shared<BufferShadow>(base_addr, bytes, std::move(name));
  std::lock_guard<std::mutex> lk(mu_);
  registry_.push_back(shadow);
  return shadow;
}

void Sanitizer::init_recorder(SanRecorder& rec, std::string_view kernel) {
  std::lock_guard<std::mutex> lk(mu_);
  rec.san = this;
  rec.kernel = kernel;
  rec.chk_bounds = cfg_.bounds;
  rec.chk_init = cfg_.init;
  rec.chk_free = cfg_.free;
  rec.log_races = cfg_.races;
  rec.log.clear();
  rec.ann_entered.clear();
}

void Sanitizer::report(DefectKind kind, std::string_view kernel,
                       const BufferShadow* shadow, std::uint64_t byte_off,
                       const char* detail) {
  const char* bname =
      shadow && !shadow->name().empty() ? shadow->name().c_str() : "<unnamed>";
  std::string key = std::string(defect_kind_name(kind)) + '|' +
                    std::string(kernel) + '|' + bname;
  counts_[static_cast<unsigned>(kind)].fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, fresh] = finding_index_.try_emplace(std::move(key), 0);
    if (fresh) {
      it->second = findings_.size();
      Finding f;
      f.kind = kind;
      f.kernel = std::string(kernel);
      f.buffer = bname;
      f.count = 1;
      f.example_off = byte_off;
      f.detail = detail ? detail : "";
      findings_.push_back(std::move(f));
    } else {
      ++findings_[it->second].count;
    }
  }
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.counter(kind == DefectKind::DataRaceAllowlisted
                   ? "sim.san.allowlisted"
                   : "sim.san.findings")
        .add();
  }
}

bool san_check(SanRecorder& rec, const BufferShadow* shadow,
               std::uint64_t addr, std::size_t index, std::size_t span_size,
               std::size_t elem_size, AccKind kind, std::uint32_t block,
               std::uint32_t wavefront, std::uint16_t lane,
               const char* racy_why) {
  const bool is_write = kind == AccKind::Write || kind == AccKind::AtomicRmw;
  // SchedCheck preemption point: when this access runs on a controlled task
  // the model checker may deterministically switch to another block here —
  // *before* the access executes — turning the instrumented access set into
  // the interleaving-exploration alphabet.  No-op otherwise.
  if (rec.log_races) schedcheck_access_yield(addr, is_write);
  if (index >= span_size) {
    // Unsafe either way: never perform the raw access.  Only *report* when
    // bounds checking is on, so single-mode runs stay focused.
    if (rec.chk_bounds) {
      rec.san->report(DefectKind::OutOfBounds, rec.kernel, shadow,
                      index * elem_size,
                      is_write ? "store past the end of the span"
                               : "load past the end of the span");
    }
    return false;
  }
  if (shadow != nullptr) {
    const std::uint64_t off = addr - shadow->base_addr();
    if (shadow->freed()) {
      if (rec.chk_free) {
        rec.san->report(DefectKind::UseAfterFree, rec.kernel, shadow, off,
                        is_write ? "store to a freed allocation"
                                 : "load from a freed allocation");
      }
      return false;
    }
    switch (kind) {
      case AccKind::Write:
        shadow->mark_init(off, elem_size);
        shadow->set_device_dirty();
        break;
      case AccKind::AtomicRmw:
        if (rec.chk_init && !shadow->is_init(off, elem_size)) {
          rec.san->report(DefectKind::UninitRead, rec.kernel, shadow, off,
                          "atomic RMW reads a never-written word");
        }
        shadow->mark_init(off, elem_size);
        shadow->set_device_dirty();
        break;
      case AccKind::Read:
      case AccKind::AtomicRead:
        if (rec.chk_init && !shadow->is_init(off, elem_size)) {
          rec.san->report(DefectKind::UninitRead, rec.kernel, shadow, off,
                          "load of a never-written word");
        }
        break;
    }
    if (rec.log_races) {
      const bool is_atomic =
          kind == AccKind::AtomicRead || kind == AccKind::AtomicRmw;
      AccessRecord ar;
      ar.shadow = shadow;
      ar.addr = addr;
      ar.block = block;
      ar.wavefront = wavefront;
      ar.lane = lane;
      ar.flags = static_cast<std::uint8_t>((is_write ? kAccWrite : 0) |
                                           (is_atomic ? kAccAtomic : 0) |
                                           (racy_why ? kAccRacyOk : 0));
      ar.why = racy_why;
      rec.log.push_back(ar);
    }
  }
  return true;
}

namespace {

// Access categories of the race analyzer.  "Na" = non-atomic; "Ok" = made
// under a sim::racy_ok annotation.
enum Cat : int { kNaRead = 0, kNaReadOk, kNaWrite, kNaWriteOk, kARead, kAWrite };
inline constexpr int kNumCats = 6;

int cat_of(std::uint8_t flags) {
  if (flags & kAccAtomic) return (flags & kAccWrite) ? kAWrite : kARead;
  if (flags & kAccWrite) return (flags & kAccRacyOk) ? kNaWriteOk : kNaWrite;
  return (flags & kAccRacyOk) ? kNaReadOk : kNaRead;
}

struct CatState {
  bool seen = false;
  bool multi = false;  ///< seen from more than one block
  std::uint32_t first_block = 0;
  const AccessRecord* ex = nullptr;
};

struct AddrState {
  CatState cat[kNumCats];
};

/// A conflicting category pair: at least one write, at least one non-atomic
/// participant.  `harmful` when some non-atomic participant is unannotated;
/// `ex` picks which side to show in the report (the culprit for harmful
/// pairs, the annotated access — whose `why` we quote — for allowlisted).
struct PairRule {
  int a, b;
  bool harmful;
  int ex;
};
constexpr PairRule kPairRules[] = {
    {kNaWrite, kNaWrite, true, kNaWrite},
    {kNaWrite, kNaWriteOk, true, kNaWrite},
    {kNaWrite, kNaRead, true, kNaWrite},
    {kNaWrite, kNaReadOk, true, kNaWrite},
    {kNaWrite, kARead, true, kNaWrite},
    {kNaWrite, kAWrite, true, kNaWrite},
    {kNaWriteOk, kNaRead, true, kNaRead},
    {kAWrite, kNaRead, true, kNaRead},
    {kNaWriteOk, kNaWriteOk, false, kNaWriteOk},
    {kNaWriteOk, kNaReadOk, false, kNaWriteOk},
    {kNaWriteOk, kARead, false, kNaWriteOk},
    {kNaWriteOk, kAWrite, false, kNaWriteOk},
    {kAWrite, kNaReadOk, false, kNaReadOk},
};

}  // namespace

void Sanitizer::analyze_launch(std::string_view kernel,
                               std::vector<SanRecorder>& recs) {
  std::unordered_map<std::uint64_t, AddrState> addrs;
  std::size_t total = 0;
  for (const SanRecorder& r : recs) total += r.log.size();
  if (total == 0) return;
  addrs.reserve(total / 2);

  // Per-annotation hygiene counters (scope entries from the workers'
  // ann_entered lists, covered accesses from the log) accumulate locally,
  // keyed by the static reason pointer, then merge under the lock by string
  // content — the same reason used from several call sites is one row.
  std::unordered_map<const char*, AnnCounters> ann_local;
  for (const SanRecorder& r : recs) {
    for (const char* why : r.ann_entered) ++ann_local[why].scopes;
    for (const AccessRecord& ar : r.log) {
      if (ar.why != nullptr) ++ann_local[ar.why].accesses;
      CatState& cs = addrs[ar.addr].cat[cat_of(ar.flags)];
      if (!cs.seen) {
        cs.seen = true;
        cs.first_block = ar.block;
        cs.ex = &ar;
      } else if (cs.first_block != ar.block) {
        cs.multi = true;
      }
    }
  }

  for (const auto& [addr, st] : addrs) {
    (void)addr;
    const AccessRecord* bad = nullptr;
    const AccessRecord* ok = nullptr;
    for (const PairRule& pr : kPairRules) {
      const CatState& a = st.cat[pr.a];
      const CatState& b = st.cat[pr.b];
      if (!a.seen || !b.seen) continue;
      const bool distinct = pr.a == pr.b
                                ? a.multi
                                : (a.multi || b.multi ||
                                   a.first_block != b.first_block);
      if (!distinct) continue;
      const AccessRecord* ex = pr.ex == pr.a ? a.ex : b.ex;
      if (pr.harmful) {
        if (bad == nullptr) bad = ex;
      } else {
        if (ok == nullptr) ok = ex;
      }
    }
    if (bad != nullptr) {
      report(DefectKind::DataRace, kernel, bad->shadow,
             bad->addr - bad->shadow->base_addr(),
             "non-atomic access conflicts with another block's access to "
             "the same word");
    } else if (ok != nullptr) {
      report(DefectKind::DataRaceAllowlisted, kernel, ok->shadow,
             ok->addr - ok->shadow->base_addr(), ok->why);
      if (ok->why != nullptr) ++ann_local[ok->why].findings;
    }
  }
  if (!ann_local.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [why, c] : ann_local) {
      AnnCounters& g = ann_stats_[why];
      g.scopes += c.scopes;
      g.accesses += c.accesses;
      g.findings += c.findings;
    }
  }
  for (SanRecorder& r : recs) {
    r.log.clear();
    r.ann_entered.clear();
  }
}

std::vector<Finding> Sanitizer::findings() const {
  std::lock_guard<std::mutex> lk(mu_);
  return findings_;
}

std::vector<Sanitizer::AnnotationStats> Sanitizer::annotation_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<AnnotationStats> out;
  out.reserve(ann_stats_.size());
  for (const auto& [why, c] : ann_stats_) {
    out.push_back(AnnotationStats{why, c.scopes, c.accesses, c.findings});
  }
  return out;
}

std::vector<std::string> Sanitizer::stale_annotations() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (const auto& [why, c] : ann_stats_) {
    if (c.scopes > 0 && c.accesses == 0) out.push_back(why);
  }
  return out;
}

std::uint64_t Sanitizer::unannotated_count() const {
  std::uint64_t n = 0;
  for (unsigned k = 0; k < kNumDefectKinds; ++k) {
    if (static_cast<DefectKind>(k) == DefectKind::DataRaceAllowlisted) continue;
    n += counts_[k].load(std::memory_order_relaxed);
  }
  return n;
}

void Sanitizer::summary(std::ostream& os) const {
  std::vector<Finding> fs = findings();
  os << "SimSan: " << fs.size() << " aggregated finding(s), "
     << unannotated_count() << " unannotated occurrence(s), "
     << allowlisted_count() << " allowlisted occurrence(s)\n";
  for (const Finding& f : fs) {
    os << "  [" << defect_kind_name(f.kind) << "] "
       << (f.kernel.empty() ? "<host>" : f.kernel) << " buffer=" << f.buffer
       << " count=" << f.count << " first@+" << f.example_off;
    if (!f.detail.empty()) os << " : " << f.detail;
    os << '\n';
  }
}

// --- buffer.h hooks ---------------------------------------------------------
std::shared_ptr<BufferShadow> sanitizer_make_shadow(std::uint64_t base_addr,
                                                    std::size_t bytes,
                                                    std::string name) {
  return Sanitizer::global().make_shadow(base_addr, bytes, std::move(name));
}

void sanitizer_report_host(DefectKind kind, const BufferShadow* shadow,
                           std::uint64_t byte_off, const char* detail) {
  Sanitizer::global().report(kind, {}, shadow, byte_off, detail);
}

bool sanitizer_checks_init() { return Sanitizer::global().check_init(); }
bool sanitizer_checks_stale() { return Sanitizer::global().check_stale(); }

}  // namespace xbfs::sim
