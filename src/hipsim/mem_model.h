// Device-memory traffic model: a sharded, set-associative, write-back LRU
// cache standing in for the GCD's shared L2, plus the MemProbe through which
// kernel code issues every global-memory access.
//
// Design notes
//  * Addresses are virtual "device addresses" handed out by the Device
//    allocator; the cache is keyed on line index (addr / line_bytes).
//  * The cache is sharded by line index so concurrent workers mostly touch
//    distinct shards; each shard is an independent LRU set-assoc cache with
//    capacity l2_bytes / n_shards and its own spinlock.  With one worker
//    (deterministic profile mode) results are exact and bit-reproducible;
//    with many workers the LRU interleaving introduces only small jitter in
//    hit counts, never in algorithm results.
//  * Consecutive lanes of a wavefront execute back-to-back on one worker, so
//    same-line accesses from neighbouring lanes hit immediately: the cache
//    model doubles as the coalescing model.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "hipsim/counters.h"
#include "hipsim/device_profile.h"

namespace xbfs::sim {

/// One shard of the L2 model: a standalone set-associative LRU cache.
/// Public so unit tests can exercise replacement behaviour directly.
class CacheShard {
 public:
  /// @param capacity_bytes shard capacity (rounded down to a power-of-two
  ///        set count); @param line_bytes line size; @param ways associativity.
  CacheShard(std::uint64_t capacity_bytes, unsigned line_bytes, unsigned ways);

  struct AccessResult {
    bool hit = false;
    bool writeback = false;  ///< a dirty line was evicted
  };

  /// Probe/fill one line.  @param line line index (already addr/line_bytes).
  AccessResult access(std::uint64_t line, bool is_write);

  /// Drop all resident lines (used between independent experiments).
  void invalidate_all();

  unsigned num_sets() const { return num_sets_; }
  unsigned ways() const { return ways_; }

 private:
  static constexpr std::uint64_t kInvalidTag = ~0ull;

  struct Way {
    std::uint64_t tag = kInvalidTag;
    std::uint64_t stamp = 0;
    bool dirty = false;
  };

  unsigned num_sets_;
  unsigned ways_;
  std::uint64_t stamp_ = 0;
  std::vector<Way> ways_storage_;  // num_sets_ * ways_, row-major by set
};

/// The full L2 model: shards + spinlocks.
class L2Model {
 public:
  explicit L2Model(const DeviceProfile& profile, unsigned n_shards);

  /// Probe the model for an access of `bytes` payload bytes at device
  /// address `addr`; accounts line fills into `c`.  Crossing accesses touch
  /// every covered line.
  void access(std::uint64_t addr, unsigned bytes, bool is_write,
              KernelCounters& c);

  void invalidate_all();

  unsigned line_bytes() const { return line_bytes_; }
  unsigned n_shards() const { return static_cast<unsigned>(shards_.size()); }

 private:
  struct Spinlock {
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
    void lock() {
      while (flag.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() { flag.clear(std::memory_order_release); }
  };

  unsigned line_bytes_;
  std::vector<std::unique_ptr<CacheShard>> shards_;
  std::unique_ptr<Spinlock[]> locks_;
};

/// Handle through which kernel code performs modelled memory operations.
/// One probe per worker; owns the worker-local counter block.
class MemProbe {
 public:
  MemProbe(L2Model* l2, KernelCounters* counters)
      : l2_(l2), counters_(counters) {}

  void read(std::uint64_t addr, unsigned bytes) {
    counters_->mem_reads += 1;
    counters_->bytes_read += bytes;
    l2_->access(addr, bytes, /*is_write=*/false, *counters_);
  }
  void write(std::uint64_t addr, unsigned bytes) {
    counters_->mem_writes += 1;
    counters_->bytes_written += bytes;
    l2_->access(addr, bytes, /*is_write=*/true, *counters_);
  }
  /// Atomic read-modify-write: counted as an atomic plus a write-probe.
  void atomic_rmw(std::uint64_t addr, unsigned bytes) {
    counters_->atomics += 1;
    counters_->bytes_read += bytes;
    counters_->bytes_written += bytes;
    l2_->access(addr, bytes, /*is_write=*/true, *counters_);
  }
  void count_slots(std::uint64_t slots, std::uint64_t active) {
    counters_->lane_slots += slots;
    counters_->active_lanes += active;
    counters_->wavefront_steps += 1;
  }

  KernelCounters& counters() { return *counters_; }

 private:
  L2Model* l2_;
  KernelCounters* counters_;
};

}  // namespace xbfs::sim
