// sim::LockRank — cheap lock-order (deadlock) detection for the serving
// stack's mutexes (docs/modelcheck.md "lock ranks").
//
// Every participating mutex carries a numeric rank and a name; a thread may
// only acquire mutexes in strictly increasing rank order.  Any run that
// acquires out of order — the precondition of every lock-inversion deadlock
// — is reported immediately with *both* sides of the story: the acquiring
// thread's held-lock stack and the lock stack recorded when the contended
// mutex was last taken.  Unlike a deadlock, which needs two threads to
// collide in time, a rank violation is caught on the first run that merely
// *executes* the bad nesting — which is exactly what SchedCheck's explored
// interleavings provide.
//
// The check runs before the underlying lock() so a true inversion reports
// instead of hanging.  Default response is abort (both stacks on stderr);
// tests switch to throwing LockOrderViolation via LockRank::set_abort(false).
//
// Rank table (docs/modelcheck.md): serve.cycle=10, serve.update=12,
// serve.gcd=40, dyn.store.writer=50, dyn.store.publish=52, serve.agg=60,
// serve.inflight=64, serve.drain=68, sim.pool=90.  Gaps are deliberate —
// new locks slot in without renumbering.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace xbfs::sim {

/// Thrown (instead of aborting) on inversion when set_abort(false).
class LockOrderViolation : public std::logic_error {
 public:
  explicit LockOrderViolation(const std::string& what)
      : std::logic_error(what) {}
};

class RankedMutex;

class LockRank {
 public:
  /// false => throw LockOrderViolation instead of aborting (tests).
  static void set_abort(bool abort_on_violation);

  /// Pre-lock check: verifies `rank` is strictly above every rank this
  /// thread already holds.  Reports on violation; otherwise returns.
  static void check_acquire(const RankedMutex& mu);
  /// Post-lock bookkeeping: push onto this thread's held stack and record
  /// the holder snapshot inside the mutex.
  static void note_locked(RankedMutex& mu);
  static void note_unlocked(RankedMutex& mu);

  /// "name(rank) -> name(rank)" for this thread, "<none>" when empty.
  static std::string current_stack();
};

/// Drop-in std::mutex replacement with a rank and a name.  Satisfies
/// BasicLockable/Lockable, so std::lock_guard, std::unique_lock and
/// std::condition_variable_any work unchanged.
class RankedMutex {
 public:
  RankedMutex(unsigned rank, const char* name) : rank_(rank), name_(name) {}
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() {
    LockRank::check_acquire(*this);
    mu_.lock();
    LockRank::note_locked(*this);
  }
  /// try_lock never blocks, so it cannot deadlock and skips the order
  /// check; on success the mutex still joins the held stack so later
  /// blocking acquisitions see it.
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    LockRank::note_locked(*this);
    return true;
  }
  void unlock() {
    LockRank::note_unlocked(*this);
    mu_.unlock();
  }

  unsigned rank() const { return rank_; }
  const char* name() const { return name_; }

  /// Snapshot of the holder's held-lock stack at acquisition time, for the
  /// "other side" of a violation report.  Guarded by its own tiny spinlock —
  /// the violation path reads it without holding mu_.
  struct HolderSnap {
    static constexpr int kMax = 16;
    const char* names[kMax] = {};
    unsigned ranks[kMax] = {};
    int depth = 0;
  };

 private:
  friend class LockRank;
  std::mutex mu_;
  const unsigned rank_;
  const char* const name_;
  std::atomic_flag snap_lock_ = ATOMIC_FLAG_INIT;
  HolderSnap snap_;
};

}  // namespace xbfs::sim
