// Analytic kernel-time model.
//
// A kernel's modelled duration is its bottleneck resource time (HBM
// bandwidth, L2 service bandwidth, SIMT issue slots, or atomic throughput)
// scaled by a load-imbalance factor derived from per-virtual-CU busy times,
// plus the fixed launch overhead.  All quantities come straight from the
// merged KernelCounters, so the model is transparent and unit-testable.
#pragma once

#include "hipsim/counters.h"
#include "hipsim/device_profile.h"

namespace xbfs::sim {

struct TimingBreakdown {
  double t_hbm_us = 0;     ///< HBM traffic time (fetch + writeback)
  double t_l2_us = 0;      ///< L2-served traffic time
  double t_latency_us = 0; ///< dependent-access latency over the MLP budget
  double t_slots_us = 0;   ///< SIMT issue time
  double t_atomic_us = 0;  ///< atomic serialization time
  double bottleneck_us = 0;
  double imbalance = 1.0;  ///< applied multiplier (clamped)
  double total_us = 0;     ///< launch overhead + bottleneck * imbalance

  /// rocprofiler "MemUnitBusy" (%): fraction of kernel time the memory
  /// system is the active resource.
  double mem_unit_busy_pct() const {
    return total_us <= 0 ? 0.0 : 100.0 * t_hbm_us / total_us;
  }
};

/// @param lane_work_multiplier whole-kernel modelled-time multiplier
///        (register-spill / compiler-effect modelling; 1.0 = clean build).
/// @param raw_imbalance max over virtual CUs of busy time divided by the
///        mean over active CUs; clamped to [1, 8] before application.
TimingBreakdown kernel_time(const DeviceProfile& profile,
                            const KernelCounters& c, double raw_imbalance,
                            double lane_work_multiplier = 1.0);

}  // namespace xbfs::sim
