// Wavefront-mask helpers mirroring the HIP/AMD intrinsics the port relies
// on.  The paper's port replaced CUDA's 32-bit masked `__any_sync`/`__popc`
// with AMD's maskless 64-wide `__any`/`__popcll`; these helpers are the
// 64-bit-mask vocabulary the simulated kernels use.
#pragma once

#include <bit>
#include <cstdint>

namespace xbfs::sim {

/// __popcll: set bits in a 64-bit wavefront ballot mask.
inline unsigned popcll(std::uint64_t mask) {
  return static_cast<unsigned>(std::popcount(mask));
}

/// __ffsll semantics: 1-based index of the least significant set bit,
/// 0 when the mask is empty.
inline unsigned ffsll(std::uint64_t mask) {
  return mask == 0 ? 0u : static_cast<unsigned>(std::countr_zero(mask)) + 1u;
}

/// Mask with the low `n` lanes set (n <= 64).
inline std::uint64_t lane_mask_lt(unsigned n) {
  return n >= 64 ? ~0ull : ((std::uint64_t{1} << n) - 1);
}

/// Number of set bits strictly below `lane` — the classic ballot-based
/// intra-wavefront rank used for warp-aggregated atomics.
inline unsigned mask_rank(std::uint64_t mask, unsigned lane) {
  return popcll(mask & lane_mask_lt(lane));
}

}  // namespace xbfs::sim
