// Device profiles: the architectural parameters of the simulated GPU.
//
// The reproduction targets one Graphics Compute Die (GCD) of an AMD MI250X,
// the unit the paper reports per-GCD GTEPS for.  A second profile models the
// NVIDIA Quadro P6000 that original XBFS (HPDC'19) was tuned on, used by the
// Fig. 5 porting ablation.  All timing-model constants live here so that
// every experiment states its hardware assumptions in one place.
#pragma once

#include <cstdint>
#include <string>

namespace xbfs::sim {

/// Architectural and cost-model parameters of a simulated device.
///
/// Bandwidths are in bytes per microsecond (i.e. MB/s * 1e-0 -- 1 GB/s ==
/// 1000 bytes/us * 1000; we store bytes/us to keep the timing code in us).
struct DeviceProfile {
  std::string name;

  // --- SIMT geometry -----------------------------------------------------
  unsigned wavefront_size = 64;   ///< lanes per wavefront (AMD: 64, NV: 32)
  unsigned num_cus = 110;         ///< compute units (MI250X GCD: 110 CUs)
  unsigned max_block_threads = 1024;

  // --- Memory hierarchy ---------------------------------------------------
  std::uint64_t l2_bytes = 8ull * 1024 * 1024;  ///< shared L2 per GCD
  unsigned l2_line_bytes = 128;                 ///< cache-line granularity
  unsigned l2_ways = 16;                        ///< set associativity
  std::uint64_t device_mem_bytes = 64ull * 1024 * 1024 * 1024;

  // --- Timing model (microsecond domain) ----------------------------------
  double hbm_bytes_per_us = 1.6e6;     ///< 1.6 TB/s HBM2E per GCD
  double l2_bytes_per_us = 6.0e6;      ///< aggregate L2 service bandwidth
  // Latency component: dependent-access chains (the bottom-up early-
  // termination scans are load->check->load chains) are bound by access
  // latency over the device's memory-level parallelism, not by bandwidth.
  double l2_hit_latency_cycles = 150;
  double hbm_latency_cycles = 500;
  double clock_ghz = 1.7;
  /// Outstanding memory lanes the device sustains (CUs x lanes x waves).
  double mem_parallelism = 110.0 * 64 * 4;
  double lane_slots_per_us = 1.2e7;    ///< 110 CU * 64 lanes * ~1.7 GHz
  double atomics_per_us = 2.0e3;       ///< global atomic throughput
  double kernel_launch_us = 4.0;       ///< per-launch host+dispatch overhead
  /// One-time cost added to the first kernel launch (HIP module load /
  /// runtime warm-up).  This is what makes level 0 of the paper's Tables
  /// III-V cost ~20 ms for every strategy despite a one-vertex frontier.
  double first_launch_us = 0.0;
  double device_sync_us = 18.0;        ///< hipDeviceSynchronize()-style cost
  double stream_join_us = 14.0;        ///< cross-stream event-wait cost
  double h2d_bytes_per_us = 3.6e4;     ///< host->device copy (36 GB/s IF)
  double d2h_bytes_per_us = 3.6e4;
  double memcpy_overhead_us = 10.0;    ///< fixed per-copy latency

  /// Multiplier on bottom-up expansion lane work modelling register
  /// spilling; 1.0 = clean -O3/clang build.  The paper observed up to 10x
  /// without -O3 and 17% from hipcc's extra register pressure.
  double register_spill_factor = 1.0;

  /// One GCD of an AMD Instinct MI250X, the Frontier per-GCD target.
  static DeviceProfile mi250x_gcd();
  /// NVIDIA Quadro P6000: the GPU original XBFS was developed on.
  static DeviceProfile p6000();
  /// A tiny profile for unit tests (small L2, small CU count) so cache
  /// behaviour is exercised at toy sizes.
  static DeviceProfile test_profile();
};

}  // namespace xbfs::sim
