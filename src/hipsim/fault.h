// Deterministic fault injection for the simulated GPU.  A process-wide
// FaultInjector decides — from a seeded counter-based hash, so runs are
// reproducible regardless of thread interleaving — whether each kernel
// launch, host<->device copy or pool worker experiences an injected fault.
//
// Enabled either programmatically (FaultInjector::global().configure(...))
// or from the environment:
//
//   XBFS_FAULTS="kernel=0.05,memcpy=0.02,stall=0.01,stall_ms=2,death=0.001,
//                spike=0.01,spike_us=500,disk_torn=0.02,disk_short=0.02,
//                fsync_fail=0.01,seed=42"
//
// Rates are per-event probabilities in [0,1].  Everything is off by default;
// the hot-path cost when disabled is one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace xbfs::sim {

enum class FaultKind : unsigned {
  KernelFault = 0,    ///< launch throws FaultInjected (hipErrorUnknown-like)
  MemcpyCorruption,   ///< transfer silently flagged corrupt (data poisoned)
  WorkerStall,        ///< pool worker sleeps stall_ms before its chunks
  WorkerDeath,        ///< pool worker skips this job entirely (work is stolen)
  LatencySpike,       ///< launch time inflated by latency_spike_us
  DiskTornWrite,      ///< store::File::append lands a prefix, then errors
  DiskShortWrite,     ///< store::File::append lands n-k bytes, then errors
  FsyncFail,          ///< store::File::sync returns an error, data not durable
};
inline constexpr unsigned kNumFaultKinds = 8;

const char* fault_kind_name(FaultKind k);

struct FaultConfig {
  double kernel_fault_rate = 0.0;
  double memcpy_corruption_rate = 0.0;
  double worker_stall_rate = 0.0;
  double worker_death_rate = 0.0;
  double latency_spike_rate = 0.0;
  double disk_torn_rate = 0.0;   ///< torn write: prefix persisted, op fails
  double disk_short_rate = 0.0;  ///< short write: n-k bytes persisted, op fails
  double fsync_fail_rate = 0.0;  ///< fsync reports failure, nothing guaranteed
  double stall_ms = 1.0;          ///< sleep length of an injected stall
  double latency_spike_us = 200;  ///< added modelled time of a spike
  std::uint64_t seed = 0xC0FFEEull;

  bool any() const {
    return kernel_fault_rate > 0 || memcpy_corruption_rate > 0 ||
           worker_stall_rate > 0 || worker_death_rate > 0 ||
           latency_spike_rate > 0 || disk_torn_rate > 0 ||
           disk_short_rate > 0 || fsync_fail_rate > 0;
  }
  double rate(FaultKind k) const;

  /// Parse the XBFS_FAULTS spec ("kernel=0.05,memcpy=0.02,seed=42", see
  /// header comment).  Unknown keys warn to stderr and are ignored;
  /// malformed numbers leave the field at its default.
  static FaultConfig from_env_string(const std::string& spec);
};

/// Thrown by Device::launch for an injected kernel fault.  The resilient
/// serving path catches it and retries/degrades; everything else propagates
/// it like a real hipError would surface.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(FaultKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  FaultKind kind() const { return kind_; }

 private:
  FaultKind kind_;
};

class FaultInjector {
 public:
  /// Process-wide instance.  First use reads XBFS_FAULTS from the
  /// environment (if set) so any binary can be chaos-tested unmodified.
  static FaultInjector& global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void configure(const FaultConfig& cfg);
  void disable();

  /// Hot-path gate: one relaxed atomic load when faults are off.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Decide whether the next event of this kind faults.  Deterministic in
  /// (seed, kind, per-kind decision sequence number); thread-safe.
  bool should_inject(FaultKind k);

  std::uint64_t decisions(FaultKind k) const;
  std::uint64_t injected(FaultKind k) const;
  std::uint64_t total_injected() const;
  void reset_counters();

  double stall_ms() const;
  double latency_spike_us() const;
  FaultConfig config() const;

  /// Apply a memcpy-corruption to a finished result: deterministically pick
  /// one entry and poison it (reached levels get a bit flipped; unreached
  /// sentinels become a bogus non-sentinel).  Any single-entry change breaks
  /// the exact-BFS-distance labeling, so a full validator always detects it.
  void corrupt_levels(std::vector<std::int32_t>& levels);

 private:
  mutable std::mutex mu_;
  FaultConfig cfg_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_[kNumFaultKinds] = {};
  std::atomic<std::uint64_t> hits_[kNumFaultKinds] = {};
  std::atomic<std::uint64_t> corrupt_seq_{0};
};

}  // namespace xbfs::sim
