// BlockCtx: one simulated thread block (workgroup).  Wavefronts of a block
// execute sequentially on the worker that owns the block, so kernels are
// written phase-structured: any block-wide cooperation happens through the
// shared-memory arena between explicit phases, mirroring a __syncthreads()
// boundary.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hipsim/exec_ctx.h"
#include "hipsim/wavefront.h"

namespace xbfs::sim {

/// Bump-allocated LDS (shared memory) arena, reset for every block.
class ShMem {
 public:
  explicit ShMem(std::size_t bytes) : storage_(bytes) {}

  template <typename T>
  T* alloc(std::size_t n) {
    const std::size_t align = alignof(T);
    used_ = (used_ + align - 1) / align * align;
    if (used_ + n * sizeof(T) > storage_.size()) {
      throw std::runtime_error(
          "LDS arena exhausted; raise SimOptions::lds_bytes");
    }
    T* p = reinterpret_cast<T*>(storage_.data() + used_);
    used_ += n * sizeof(T);
    return p;
  }
  void reset() { used_ = 0; }
  std::size_t used() const { return used_; }
  std::size_t capacity() const { return storage_.size(); }

 private:
  std::vector<std::byte> storage_;
  std::size_t used_ = 0;
};

class BlockCtx {
 public:
  BlockCtx(ExecCtx* ctx, ShMem* shmem, unsigned block_id, unsigned grid_blocks,
           unsigned block_threads)
      : ctx_(ctx),
        shmem_(shmem),
        block_id_(block_id),
        grid_blocks_(grid_blocks),
        block_threads_(block_threads) {}

  unsigned block_id() const { return block_id_; }
  unsigned grid_blocks() const { return grid_blocks_; }
  unsigned block_threads() const { return block_threads_; }
  unsigned grid_threads() const { return grid_blocks_ * block_threads_; }
  unsigned wavefronts_per_block() const {
    const unsigned w = ctx_->wavefront_size();
    return (block_threads_ + w - 1) / w;
  }
  ExecCtx& ctx() { return *ctx_; }
  ShMem& shmem() { return *shmem_; }

  /// Phase: run f(tid) for every thread in the block (tid is block-local).
  /// Equivalent to a full-block SIMT pass followed by __syncthreads().
  template <typename F>
  void threads(F&& f) {
    const unsigned w = ctx_->wavefront_size();
    if (ctx_->san_active()) {
      // Stamp each simulated thread's wavefront/lane so the sanitizer's
      // access log attributes accesses; skipped entirely when SimSan is off.
      unsigned lane = 0, wf = block_id_ * wavefronts_per_block();
      for (unsigned t = 0; t < block_threads_; ++t) {
        ctx_->set_sim_lane(wf, lane);
        f(t);
        if (++lane == w) {
          lane = 0;
          ++wf;
        }
      }
    } else {
      for (unsigned t = 0; t < block_threads_; ++t) f(t);
    }
    ctx_->slots(std::uint64_t{wavefronts_per_block()} * w, block_threads_);
  }

  /// Phase: run f(tid) for every thread of the grid owned by this block via
  /// the canonical grid-stride loop; gtid = block_id*block_threads + tid.
  /// Sweeps execute outermost (all threads of the block advance together,
  /// as they do on hardware) so lane-adjacent accesses stay coalesced in
  /// the memory model.
  template <typename F>
  void grid_stride(std::uint64_t n, F&& f) {
    const std::uint64_t stride = grid_threads();
    const std::uint64_t base =
        std::uint64_t{block_id_} * block_threads_;
    std::uint64_t issued = 0, active = 0;
    const bool san = ctx_->san_active();
    const unsigned wsize = ctx_->wavefront_size();
    const unsigned wf_base = block_id_ * wavefronts_per_block();
    for (std::uint64_t start = base; start < n; start += stride) {
      const std::uint64_t end =
          std::min<std::uint64_t>(n, start + block_threads_);
      for (std::uint64_t i = start; i < end; ++i) {
        if (san) {
          const unsigned t = static_cast<unsigned>(i - start);
          ctx_->set_sim_lane(wf_base + t / wsize, t % wsize);
        }
        f(i);
        ++active;
      }
    }
    // Issue accounting: each sweep of the block over a stride window costs a
    // full block of lane slots even when only some threads have work.
    const std::uint64_t sweeps =
        base < n ? (n - base + stride - 1) / stride : 0;
    const unsigned w = ctx_->wavefront_size();
    issued = sweeps * wavefronts_per_block() * w;
    if (issued < active) issued = active;
    ctx_->slots(issued, active);
  }

  /// Phase: run f(WavefrontCtx&, wavefront_local_id) for every wavefront in
  /// the block.  Wavefront ids are grid-global.
  template <typename F>
  void wavefronts(F&& f) {
    const unsigned per_block = wavefronts_per_block();
    for (unsigned wf = 0; wf < per_block; ++wf) {
      WavefrontCtx w(ctx_, block_id_ * per_block + wf,
                     ctx_->wavefront_size());
      f(w, wf);
    }
  }

  /// Marks a __syncthreads() boundary.  Correctness comes from the
  /// phase-structured style; this only documents intent and counts the
  /// barrier for the timing model.
  void sync() { ++barriers_; }
  unsigned barriers() const { return barriers_; }

 private:
  ExecCtx* ctx_;
  ShMem* shmem_;
  unsigned block_id_;
  unsigned grid_blocks_;
  unsigned block_threads_;
  unsigned barriers_ = 0;
};

}  // namespace xbfs::sim
