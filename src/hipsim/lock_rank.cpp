#include "hipsim/lock_rank.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace xbfs::sim {

namespace {

struct Held {
  const RankedMutex* mu = nullptr;
  unsigned rank = 0;
  const char* name = nullptr;
};

struct ThreadLocks {
  static constexpr int kMax = RankedMutex::HolderSnap::kMax;
  Held held[kMax];
  int depth = 0;
};

ThreadLocks& tls() {
  static thread_local ThreadLocks t;
  return t;
}

std::atomic<bool> g_abort{true};

std::string format_stack(const Held* held, int depth) {
  if (depth == 0) return "<none>";
  std::ostringstream os;
  for (int i = 0; i < depth; ++i) {
    if (i != 0) os << " -> ";
    os << held[i].name << "(" << held[i].rank << ")";
  }
  return os.str();
}

std::string format_snap(const RankedMutex::HolderSnap& s) {
  if (s.depth == 0) return "<none>";
  std::ostringstream os;
  for (int i = 0; i < s.depth; ++i) {
    if (i != 0) os << " -> ";
    os << s.names[i] << "(" << s.ranks[i] << ")";
  }
  return os.str();
}

}  // namespace

void LockRank::set_abort(bool abort_on_violation) {
  g_abort.store(abort_on_violation, std::memory_order_relaxed);
}

std::string LockRank::current_stack() {
  const ThreadLocks& t = tls();
  return format_stack(t.held, t.depth);
}

void LockRank::check_acquire(const RankedMutex& mu) {
  const ThreadLocks& t = tls();
  if (t.depth == 0) return;
  const Held& top = t.held[t.depth - 1];
  if (mu.rank() > top.rank) return;

  // Violation.  Copy the contended mutex's last holder stack (the "other"
  // side) under its snapshot spinlock — we do not hold mu_, by design.
  auto& m = const_cast<RankedMutex&>(mu);
  while (m.snap_lock_.test_and_set(std::memory_order_acquire)) {
  }
  const std::string other = format_snap(m.snap_);
  m.snap_lock_.clear(std::memory_order_release);

  std::ostringstream os;
  os << "lock-order violation: acquiring " << mu.name() << "(" << mu.rank()
     << ") while holding " << format_stack(t.held, t.depth)
     << "; last holder of " << mu.name() << " held " << other;
  if (g_abort.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "[lockrank] %s\n", os.str().c_str());
    std::abort();
  }
  throw LockOrderViolation(os.str());
}

void LockRank::note_locked(RankedMutex& mu) {
  ThreadLocks& t = tls();
  if (t.depth < ThreadLocks::kMax) {
    t.held[t.depth] = Held{&mu, mu.rank(), mu.name()};
  }
  ++t.depth;

  while (mu.snap_lock_.test_and_set(std::memory_order_acquire)) {
  }
  const int n = t.depth < ThreadLocks::kMax ? t.depth : ThreadLocks::kMax;
  mu.snap_.depth = n;
  for (int i = 0; i < n; ++i) {
    mu.snap_.names[i] = t.held[i].name;
    mu.snap_.ranks[i] = t.held[i].rank;
  }
  mu.snap_lock_.clear(std::memory_order_release);
}

void LockRank::note_unlocked(RankedMutex& mu) {
  ThreadLocks& t = tls();
  // Locks almost always release LIFO; tolerate out-of-order unlocks (e.g.
  // std::unique_lock juggling) by removing the matching entry wherever it
  // sits in the stack.
  for (int i = t.depth - 1; i >= 0; --i) {
    if (i < ThreadLocks::kMax && t.held[i].mu == &mu) {
      for (int j = i; j + 1 < t.depth && j + 1 < ThreadLocks::kMax; ++j) {
        t.held[j] = t.held[j + 1];
      }
      --t.depth;
      return;
    }
  }
  if (t.depth > 0) --t.depth;  // overflowed entry beyond kMax
}

}  // namespace xbfs::sim
