#include "hipsim/schedcheck.h"

#include <cstdlib>
#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "hipsim/sanitizer.h"

namespace xbfs::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Conflict key for a host-side chk_point: hash the site *contents* (string
// addresses are not stable across processes, which would break replay) and
// set the high bit so host sites never collide with device addresses.
std::uint64_t chk_site_key(const char* site, std::uint64_t key) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001B3ull;
  }
  return (h ^ (key * 0x9E3779B97F4A7C15ull)) | 0x8000000000000000ull;
}

// Hook installed into chk_point() while an exploration runs.  chk_points
// are treated as writes: the structures that carry them are by definition
// mutating shared state, so every multi-task site is conflict-eligible.
void chk_trampoline(const char* site, std::uint64_t key) {
  if (schedcheck_detail::tl_task != nullptr) {
    schedcheck_detail::yield(schedcheck_detail::tl_task,
                             chk_site_key(site, key), /*write=*/true);
  }
}

thread_local Schedule* tl_schedule = nullptr;

}  // namespace

namespace schedcheck_detail {

struct Task {
  Schedule* sched = nullptr;
  std::size_t id = 0;
};

thread_local Task* tl_task = nullptr;

void yield(Task* task, std::uint64_t key, bool write) {
  Schedule* s = task->sched;
  std::unique_lock<std::mutex> lk(s->mu_);
  s->yield_locked(task->id, key, write, lk);
}

}  // namespace schedcheck_detail

// ---------------------------------------------------------------------------
// SchedCheckConfig

SchedCheckConfig SchedCheckConfig::from_env_string(const std::string& spec) {
  SchedCheckConfig cfg;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    const auto eq = tok.find('=');
    const std::string key = tok.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : tok.substr(eq + 1);
    std::uint64_t num = 0;
    bool num_ok = false;
    if (!val.empty()) {
      try {
        num = std::stoull(val, nullptr, 0);  // base 0: accepts 0x hex
        num_ok = true;
      } catch (const std::exception&) {
        num_ok = false;
      }
    }
    if (key == "schedules" && num_ok) {
      cfg.schedules = static_cast<unsigned>(num);
    } else if (key == "preemptions" && num_ok) {
      cfg.preemptions = static_cast<unsigned>(num);
    } else if (key == "seed" && num_ok) {
      cfg.seed = num;
    } else if (key == "replay" && num_ok) {
      cfg.has_replay = true;
      cfg.replay_seed = num;
    } else {
      std::cerr << "[schedcheck] ignoring unknown/malformed XBFS_SCHEDCHECK "
                << "token: \"" << tok << "\"\n";
    }
  }
  if (cfg.schedules == 0) cfg.schedules = 1;
  return cfg;
}

// ---------------------------------------------------------------------------
// ExploreResult

void ExploreResult::summary(std::ostream& os) const {
  os << "SchedCheck[" << name << "]: " << schedules_run << " schedule(s), "
     << schedules_pruned << " duplicate interleaving(s), " << preemptions
     << " preemption(s) over " << yield_points << " yield point(s), "
     << conflict_keys << " conflict key(s)\n";
  if (state_diverged) {
    os << "  state DIVERGED: baseline hash 0x" << std::hex << baseline_hash
       << ", schedule seed 0x" << first_divergent_seed << " reached 0x"
       << first_divergent_hash << std::dec << "\n"
       << "  replay with XBFS_SCHEDCHECK=replay=0x" << std::hex
       << first_divergent_seed << std::dec << "\n";
  }
  for (const ScheduleFailure& f : failures) {
    os << "  FAIL (seed 0x" << std::hex << f.seed << std::dec
       << "): " << f.what << "\n"
       << "    replay with XBFS_SCHEDCHECK=replay=0x" << std::hex << f.seed
       << std::dec << "\n";
  }
  if (ok()) os << "  all interleavings agree; no findings\n";
}

// ---------------------------------------------------------------------------
// Schedule

void Schedule::ConflictSet::freeze() {
  hot.clear();
  for (const auto& [key, info] : seen) {
    if (info.multi_task && info.any_write) hot.insert(key);
  }
}

std::uint64_t Schedule::next_rand() {
  prng_ = splitmix64(prng_);
  return prng_;
}

void Schedule::fail(std::string what) {
  std::lock_guard<std::mutex> g(mu_);
  failures_.push_back(std::move(what));
}

bool Schedule::failed() const {
  std::lock_guard<std::mutex> g(mu_);
  return !failures_.empty();
}

void Schedule::yield_locked(std::size_t id, std::uint64_t key, bool write,
                            std::unique_lock<std::mutex>& lk) {
  ++yield_count_;
  if (baseline_) {
    // Conflict collection only: a key is "hot" when more than one task
    // touches it and at least one touch is a write.  Never preempts, never
    // draws from the PRNG — the baseline decision stream is fixed, so every
    // seed's conflict relation is identical and replayable in isolation.
    auto [it, inserted] = conflicts_->seen.try_emplace(key);
    Schedule::ConflictSet::Info& info = it->second;
    if (inserted) {
      info.first_task = static_cast<std::uint32_t>(id);
    } else if (info.first_task != id) {
      info.multi_task = true;
    }
    info.any_write = info.any_write || write;
    return;
  }
  if (conflicts_->hot.find(key) == conflicts_->hot.end()) return;
  ++eligible_count_;
  if (budget_ == 0) return;
  if (n_tasks_ - n_finished_ <= 1) return;
  // 1-in-4 preemption chance at each conflict-eligible point keeps the
  // budget spread across the execution instead of burning it at the start.
  const std::uint64_t r = next_rand();
  if ((r & 3u) != 0) return;
  std::size_t pick = static_cast<std::size_t>(next_rand() %
                                              (n_tasks_ - n_finished_ - 1));
  std::size_t target = id;
  for (std::size_t i = 0; i < n_tasks_; ++i) {
    if (finished_[i] || i == id) continue;
    if (pick-- == 0) {
      target = i;
      break;
    }
  }
  if (target == id) return;
  --budget_;
  ++preempt_count_;
  // The trace hash records *decisions* (where we switched, to whom), not
  // PRNG draws, so two seeds producing the same interleaving hash equal.
  trace_hash_ = state_hash_mix(trace_hash_, eligible_count_);
  trace_hash_ = state_hash_mix(trace_hash_, key);
  trace_hash_ = state_hash_mix(trace_hash_, target);
  active_ = target;
  cv_.notify_all();
  cv_.wait(lk, [&] { return active_ == id; });
}

void Schedule::choose_next_locked() {
  if (n_finished_ >= n_tasks_) {
    cv_.notify_all();
    return;
  }
  std::size_t next = 0;
  if (baseline_) {
    for (std::size_t i = 0; i < n_tasks_; ++i) {
      if (!finished_[i]) {
        next = i;
        break;
      }
    }
  } else {
    std::size_t pick =
        static_cast<std::size_t>(next_rand() % (n_tasks_ - n_finished_));
    for (std::size_t i = 0; i < n_tasks_; ++i) {
      if (finished_[i]) continue;
      if (pick-- == 0) {
        next = i;
        break;
      }
    }
  }
  active_ = next;
  trace_hash_ = state_hash_mix(trace_hash_, 0xF1FAull);
  trace_hash_ = state_hash_mix(trace_hash_, next);
  cv_.notify_all();
}

void Schedule::task_entry(std::size_t id,
                          const std::function<void(std::size_t)>& task) {
  schedcheck_detail::Task self{this, id};
  schedcheck_detail::tl_task = &self;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return active_ == id; });
  }
  try {
    task(id);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> g(mu_);
    failures_.push_back("task " + std::to_string(id) +
                        " threw: " + e.what());
  } catch (...) {
    std::lock_guard<std::mutex> g(mu_);
    failures_.push_back("task " + std::to_string(id) +
                        " threw a non-std exception");
  }
  schedcheck_detail::tl_task = nullptr;
  std::lock_guard<std::mutex> g(mu_);
  finished_[id] = true;
  ++n_finished_;
  choose_next_locked();
}

void Schedule::run_tasks(std::size_t n,
                         const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (n == 1) {
    task(0);  // nothing to interleave
    return;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    if (in_session_) {
      throw std::logic_error(
          "sim::Schedule::run_tasks: nested sessions are not supported");
    }
    in_session_ = true;
    n_tasks_ = n;
    n_finished_ = 0;
    finished_.assign(n, false);
    if (baseline_) {
      active_ = 0;
    } else {
      active_ = static_cast<std::size_t>(next_rand() % n);
      trace_hash_ = state_hash_mix(trace_hash_, 0x57A7ull);
      trace_hash_ = state_hash_mix(trace_hash_, active_);
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads.emplace_back(&Schedule::task_entry, this, i, std::cref(task));
  }
  for (std::thread& t : threads) t.join();
  std::lock_guard<std::mutex> g(mu_);
  in_session_ = false;
}

// ---------------------------------------------------------------------------
// SchedCheck

SchedCheck& SchedCheck::global() {
  static SchedCheck* inst = [] {
    auto* s = new SchedCheck();
    if (const char* env = std::getenv("XBFS_SCHEDCHECK");
        env != nullptr && *env != '\0') {
      s->configure(SchedCheckConfig::from_env_string(env));
    }
    return s;
  }();
  return *inst;
}

void SchedCheck::configure(const SchedCheckConfig& cfg) {
  {
    std::lock_guard<std::mutex> g(mu_);
    cfg_ = cfg;
  }
  // The kernel-side preemption points live in the SimSan access hook; the
  // checker is blind without race instrumentation.
  Sanitizer& san = Sanitizer::global();
  if (!san.enabled() || !san.config().races) {
    SanitizeConfig sc = san.config();
    sc.races = true;
    san.configure(sc);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void SchedCheck::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

SchedCheckConfig SchedCheck::config() const {
  std::lock_guard<std::mutex> g(mu_);
  return cfg_;
}

Schedule* SchedCheck::current() { return tl_schedule; }

ExploreResult SchedCheck::explore(
    const std::string& name,
    const std::function<std::uint64_t(Schedule&)>& body) {
  return explore_with(config(), name, body);
}

ExploreResult SchedCheck::explore_with(
    const SchedCheckConfig& cfg, const std::string& name,
    const std::function<std::uint64_t(Schedule&)>& body) {
  // One exploration at a time: the chk_point hook and the sanitizer's
  // finding counters are process-wide.
  static std::mutex explore_mu;
  std::lock_guard<std::mutex> eg(explore_mu);

  Sanitizer& san = Sanitizer::global();
  if (!san.enabled() || !san.config().races) {
    SanitizeConfig sc = san.config();
    sc.races = true;
    san.configure(sc);
  }

  ExploreResult res;
  res.name = name;
  Schedule::ConflictSet conflicts;
  const ChkHook prev_hook = chk_hook_slot().exchange(&chk_trampoline);
  std::uint64_t last_trace = 0;

  auto run_one = [&](std::uint64_t seed, bool baseline) -> std::uint64_t {
    Schedule s(seed, baseline, baseline ? 0u : cfg.preemptions, &conflicts);
    const std::uint64_t san_before = san.unannotated_count();
    tl_schedule = &s;
    std::uint64_t hash = 0;
    try {
      hash = body(s);
    } catch (const std::exception& e) {
      s.failures_.push_back(std::string("exploration body threw: ") +
                            e.what());
    } catch (...) {
      s.failures_.push_back("exploration body threw a non-std exception");
    }
    tl_schedule = nullptr;
    const std::uint64_t san_delta = san.unannotated_count() - san_before;
    if (san_delta > 0) {
      s.failures_.push_back("sanitizer reported " +
                            std::to_string(san_delta) +
                            " new unannotated finding(s)");
    }
    ++res.schedules_run;
    res.preemptions += s.preempt_count_;
    res.yield_points += s.yield_count_;
    for (std::string& f : s.failures_) {
      res.failures.push_back(ScheduleFailure{seed, std::move(f), hash});
    }
    if (!baseline && hash != 0 && res.baseline_hash != 0 &&
        hash != res.baseline_hash && !res.state_diverged) {
      res.state_diverged = true;
      res.first_divergent_seed = seed;
      res.first_divergent_hash = hash;
    }
    last_trace = s.trace_hash_;
    return hash;
  };

  // Round 0: deterministic conflict collection.  Runs in replay mode too —
  // replay must rebuild the identical conflict relation before the replayed
  // seed's decision stream can mean the same thing.
  res.baseline_hash = run_one(cfg.seed, /*baseline=*/true);
  conflicts.freeze();
  res.conflict_keys = conflicts.hot.size();

  std::unordered_set<std::uint64_t> seen_traces;
  seen_traces.insert(last_trace);
  if (cfg.has_replay) {
    run_one(cfg.replay_seed, /*baseline=*/false);
  } else {
    for (unsigned i = 1; i < cfg.schedules; ++i) {
      run_one(splitmix64(cfg.seed + i), /*baseline=*/false);
      if (!seen_traces.insert(last_trace).second) ++res.schedules_pruned;
    }
  }

  chk_hook_slot().store(prev_hook);
  return res;
}

}  // namespace xbfs::sim
