// Per-buffer shadow state for SimSan (see hipsim/sanitizer.h).
//
// Every DeviceBuffer allocated while the sanitizer is enabled carries a
// BufferShadow: the allocation's identity (name, virtual base address,
// extent), a freed flag that outlives the buffer itself, a device-dirty
// flag tracking whether kernels have written since the last modelled
// device->host copy, and a per-byte initialization bitmap.  Shadows are
// owned jointly by the buffer and the Sanitizer's registry, so a dangling
// dspan still reaches valid shadow state and use-after-free is reported
// instead of dereferencing freed storage.
//
// This header is deliberately small: buffer.h includes it without pulling
// in the full sanitizer surface.  The three hook functions at the bottom
// are implemented in sanitizer.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace xbfs::sim {

enum class DefectKind : unsigned {
  OutOfBounds = 0,      ///< index past the end of the span/buffer
  UseAfterFree,         ///< access through a span of a destroyed buffer
  UninitRead,           ///< read of a word no kernel or host write touched
  StaleHostRead,        ///< host read while device writes were never copied back
  DataRace,             ///< conflicting non-atomic cross-block access, unannotated
  DataRaceAllowlisted,  ///< same, but every non-atomic party is sim::racy_ok
};
inline constexpr unsigned kNumDefectKinds = 6;

const char* defect_kind_name(DefectKind k);

/// Shadow state of one device allocation.  Device-side marks go through
/// per-byte relaxed atomics (simulated blocks run on real threads); the
/// bulk host-side operations (fill, full-buffer sync) are only legal while
/// no kernel is in flight, which the phase-structured simulator guarantees.
class BufferShadow {
 public:
  BufferShadow(std::uint64_t base_addr, std::size_t bytes, std::string name)
      : name_(std::move(name)),
        base_addr_(base_addr),
        bytes_(bytes),
        init_(bytes ? std::make_unique<std::atomic<std::uint8_t>[]>(bytes)
                    : nullptr) {}

  const std::string& name() const { return name_; }
  std::uint64_t base_addr() const { return base_addr_; }
  std::size_t bytes() const { return bytes_; }

  bool freed() const { return freed_.load(std::memory_order_relaxed); }
  void mark_freed() const { freed_.store(true, std::memory_order_relaxed); }

  bool device_dirty() const {
    return device_dirty_.load(std::memory_order_relaxed);
  }
  void set_device_dirty() const {
    if (!device_dirty()) device_dirty_.store(true, std::memory_order_relaxed);
  }
  void clear_device_dirty() const {
    device_dirty_.store(false, std::memory_order_relaxed);
  }

  void mark_init(std::size_t off, std::size_t n) const {
    if (all_init_.load(std::memory_order_relaxed)) return;
    for (std::size_t b = off; b < off + n && b < bytes_; ++b) {
      init_[b].store(1, std::memory_order_relaxed);
    }
  }
  bool is_init(std::size_t off, std::size_t n) const {
    if (all_init_.load(std::memory_order_relaxed)) return true;
    for (std::size_t b = off; b < off + n; ++b) {
      if (b >= bytes_ || init_[b].load(std::memory_order_relaxed) == 0) {
        return false;
      }
    }
    return true;
  }
  /// Bulk "everything is initialized" (host fill, full upload, or the
  /// mutable host_data() escape hatch).  One flag, so repeated calls are
  /// free.
  void mark_all_init() const { all_init_.store(true, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::uint64_t base_addr_ = 0;
  std::size_t bytes_ = 0;
  // Shadow state is synchronization metadata, updated through const views
  // (dspan carries const BufferShadow*); all mutation is relaxed-atomic.
  mutable std::atomic<bool> freed_{false};
  mutable std::atomic<bool> device_dirty_{false};
  mutable std::atomic<bool> all_init_{false};
  std::unique_ptr<std::atomic<std::uint8_t>[]> init_;
};

// --- hooks for buffer.h (implemented in sanitizer.cpp) ----------------------
/// Create (and register) a shadow for a fresh allocation; null when the
/// sanitizer is disabled, so buffers pay nothing by default.
std::shared_ptr<BufferShadow> sanitizer_make_shadow(std::uint64_t base_addr,
                                                    std::size_t bytes,
                                                    std::string name);
/// Report a host-side finding (kernel attribution is empty).
void sanitizer_report_host(DefectKind kind, const BufferShadow* shadow,
                           std::uint64_t byte_off, const char* detail);
bool sanitizer_checks_init();
bool sanitizer_checks_stale();

}  // namespace xbfs::sim
