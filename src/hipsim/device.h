// Device: the simulated GPU.  Owns the virtual-address allocator, the L2
// model, the worker pool that executes kernels, the stream clocks and the
// profiler.  This is the simulator's public entry point — the "HIP runtime"
// of this repository.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hipsim/block.h"
#include "hipsim/buffer.h"
#include "hipsim/counters.h"
#include "hipsim/device_profile.h"
#include "hipsim/mem_model.h"
#include "hipsim/profiler.h"
#include "hipsim/stream.h"
#include "hipsim/thread_pool.h"
#include "hipsim/timing.h"

namespace xbfs::sim {

struct SimOptions {
  /// Worker threads executing simulated blocks.  1 gives bit-exact,
  /// sequential "deterministic profile mode"; 0 = hardware concurrency.
  unsigned num_workers = 0;
  /// Address-sharded L2 slices (power of two taken).
  unsigned l2_shards = 64;
  /// LDS arena per worker (shared memory per simulated block).
  std::size_t lds_bytes = 64 * 1024;
  /// Record per-launch profiler rows.
  bool profiling = true;
};

struct LaunchConfig {
  unsigned grid_blocks = 1;
  unsigned block_threads = 256;
  /// Issue-slot cost multiplier for this kernel (register-spill modelling).
  double lane_work_multiplier = 1.0;
};

struct LaunchResult {
  double time_us = 0;
  KernelCounters counters;
  TimingBreakdown timing;
};

/// Per-consumer counter-attribution sink (obs tentpole: per-query cost
/// slicing).  While attached, every launch and modelled copy adds its
/// KernelCounters rollup, launch/copy counts and modelled time here, so
/// the serving engine can bill device work to the exact query (or sweep
/// batch) that consumed it.  Not internally synchronised: attach/detach
/// and all device work must share the caller's serialisation — in
/// serving, the per-GCD lock that already guards every device call.
struct AttributionSink {
  KernelCounters counters;
  std::uint64_t launches = 0;
  std::uint64_t memcpys = 0;
  double modelled_us = 0.0;  ///< kernel + copy time attributed
};

class Device {
 public:
  explicit Device(DeviceProfile profile, SimOptions options = {});
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceProfile& profile() const { return profile_; }
  const SimOptions& options() const { return options_; }

  // --- memory -------------------------------------------------------------
  /// The optional name labels the allocation in SimSan findings
  /// (hipsim/sanitizer.h); it costs nothing when the sanitizer is off.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t n, std::string name = {}) {
    return DeviceBuffer<T>(reserve_addr(n * sizeof(T)), n, std::move(name));
  }
  std::uint64_t allocated_bytes() const { return next_addr_; }

  /// Modelled host<->device copies: advance the stream clock by the copy
  /// time; the data itself already lives host-side so no bytes move.
  double memcpy_h2d(Stream& s, std::uint64_t bytes);
  double memcpy_d2h(Stream& s, std::uint64_t bytes);
  double memcpy_h2d(std::uint64_t bytes) { return memcpy_h2d(stream(0), bytes); }
  double memcpy_d2h(std::uint64_t bytes) { return memcpy_d2h(stream(0), bytes); }

  /// Typed copies: one modelled transfer covering every listed buffer in
  /// full (byte counts sum, so batching N buffers still costs exactly one
  /// copy of their total size) plus the sanitizer bookkeeping — d2h marks
  /// host reads in sync, h2d marks device content host-authored.  For
  /// *partial* copies keep the byte-count overloads and call
  /// mark_host_synced()/mark_device_synced() on the buffer yourself.
  template <typename T, typename... Ts>
  double memcpy_d2h(Stream& s, const DeviceBuffer<T>& b,
                    const DeviceBuffer<Ts>&... rest) {
    const std::uint64_t bytes =
        b.size() * sizeof(T) +
        (std::uint64_t{0} + ... + (rest.size() * sizeof(Ts)));
    const double t = memcpy_d2h(s, bytes);
    b.mark_host_synced();
    (rest.mark_host_synced(), ...);
    return t;
  }
  template <typename T, typename... Ts>
  double memcpy_h2d(Stream& s, const DeviceBuffer<T>& b,
                    const DeviceBuffer<Ts>&... rest) {
    const std::uint64_t bytes =
        b.size() * sizeof(T) +
        (std::uint64_t{0} + ... + (rest.size() * sizeof(Ts)));
    const double t = memcpy_h2d(s, bytes);
    b.mark_device_synced();
    (rest.mark_device_synced(), ...);
    return t;
  }

  /// Injected memcpy corruption (see hipsim/fault.h).  Because modelled
  /// copies move no real bytes, a corrupted transfer raises this flag
  /// instead; the consumer that owns the destination data (e.g. the serving
  /// engine reading back BFS levels) polls the flag after its copies and
  /// poisons its own data so validators see real corruption.
  bool take_pending_corruption() {
    const bool p = pending_corruption_;
    pending_corruption_ = false;
    return p;
  }
  std::uint64_t corrupted_copies() const { return corrupted_copies_; }

  // --- execution ----------------------------------------------------------
  using KernelBody = std::function<void(BlockCtx&)>;

  LaunchResult launch(Stream& s, std::string_view name,
                      const LaunchConfig& cfg, const KernelBody& body);
  LaunchResult launch(std::string_view name, const LaunchConfig& cfg,
                      const KernelBody& body) {
    return launch(stream(0), name, cfg, body);
  }

  // --- streams and the modelled clock ---------------------------------------
  /// Stream 0 always exists; create_stream() adds more.
  Stream& stream(std::size_t i) { return streams_[i]; }
  Stream& create_stream(std::string name);
  std::size_t num_streams() const { return streams_.size(); }

  /// hipDeviceSynchronize(): advance the device floor past every stream and
  /// pay the profile's device-sync cost.
  void synchronize();
  /// Join a set of streams with cross-stream event waits: all named streams
  /// advance to the max of their clocks plus (n-1) joins' cost.
  void join_streams(const std::vector<Stream*>& ss);
  /// Model host-side (CPU) work on the critical path.
  void host_work(double us);

  /// Modelled elapsed time: max over the floor and all stream clocks (us).
  double now_us() const;
  /// Reset clocks (not allocations, not cache state).
  void reset_clock();
  /// Drop all cached lines (between independent measurements).
  void invalidate_l2() { l2_->invalidate_all(); }

  Profiler& profiler() { return profiler_; }
  L2Model& l2() { return *l2_; }

  /// Trace-lane id of this device: every Device gets a unique pid in the
  /// obs trace so multi-GCD runs render one process group per device
  /// (pid 0 is reserved for the host/coordinator).
  int trace_pid() const { return trace_pid_; }
  /// Relabel this device's trace lane (dist names its GCDs by rank).
  void set_trace_label(const std::string& label);

  /// Pay the one-time first-launch (module load) cost now, off the measured
  /// path; benches that model a warmed-up device call this before timing.
  void warmup();

  /// Attach (or detach with nullptr) the counter-attribution sink; see
  /// AttributionSink for the synchronisation contract.  A launch that
  /// faults before executing attributes nothing.
  void attach_attribution(AttributionSink* sink) { attr_sink_ = sink; }
  AttributionSink* attribution() const { return attr_sink_; }

 private:
  friend class Stream;
  std::uint64_t reserve_addr(std::uint64_t bytes);
  double stream_begin(Stream& s) const;
  void maybe_corrupt_copy(const char* name);
  void trace_memcpy(const char* name, const Stream& s, double start_us,
                    double dur_us, std::uint64_t bytes) const;

  DeviceProfile profile_;
  SimOptions options_;
  std::unique_ptr<L2Model> l2_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<ShMem>> worker_shmem_;
  std::deque<Stream> streams_;
  Profiler profiler_;
  std::uint64_t next_addr_ = 0;
  double t_floor_ = 0.0;
  bool first_launch_done_ = false;
  bool pending_corruption_ = false;
  std::uint64_t corrupted_copies_ = 0;
  int trace_pid_ = 0;
  AttributionSink* attr_sink_ = nullptr;
};

/// RAII attach/detach for AttributionSink around one attributed scope.
class ScopedAttribution {
 public:
  ScopedAttribution(Device& dev, AttributionSink& sink) : dev_(dev) {
    dev_.attach_attribution(&sink);
  }
  ~ScopedAttribution() { dev_.attach_attribution(nullptr); }

  ScopedAttribution(const ScopedAttribution&) = delete;
  ScopedAttribution& operator=(const ScopedAttribution&) = delete;

 private:
  Device& dev_;
};

}  // namespace xbfs::sim
