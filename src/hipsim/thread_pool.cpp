#include "hipsim/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "hipsim/chk_point.h"
#include "hipsim/fault.h"

namespace xbfs::sim {

ThreadPool::ThreadPool(unsigned num_workers) {
  if (num_workers == 0) {
    num_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread is worker 0; spawn the rest.
  threads_.reserve(num_workers - 1);
  for (unsigned i = 1; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<RankedMutex> lk(mu_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::drain(unsigned worker_id) {
  // The caller registered this drain in job_.in_flight under mu_ before
  // entering, so job_ cannot be reset while this body reads it.  The
  // injected worker faults (hipsim/fault.h) therefore run while
  // registered: a "dead" worker deregisters and skips the job — safe
  // because the shared cursor lets the surviving workers (worker 0, the
  // caller, never dies) steal its chunks; a "stalled" worker sleeps while
  // registered, turning itself into a straggler the serving layer's
  // dispatch timeout must detect.
  // Yield point for SchedCheck harnesses that model the drain protocol
  // (no-op on real pool workers: they are not controlled tasks).
  chk_point("sim.pool.drain", worker_id);
  FaultInjector& faults = FaultInjector::global();
  if (faults.enabled() && worker_id != 0) {
    if (faults.should_inject(FaultKind::WorkerDeath)) {
      job_.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    if (faults.should_inject(FaultKind::WorkerStall)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(faults.stall_ms()));
    }
  }
  const std::uint64_t count = job_.count;
  const std::uint64_t chunk = job_.chunk;
  const auto& fn = *job_.fn;
  std::uint64_t processed = 0;
  for (;;) {
    const std::uint64_t begin =
        job_.cursor.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= count) break;
    const std::uint64_t end = std::min(begin + chunk, count);
    for (std::uint64_t i = begin; i < end; ++i) fn(worker_id, i);
    processed += end - begin;
  }
  if (processed != 0 &&
      job_.done.fetch_add(processed, std::memory_order_acq_rel) + processed ==
          count) {
    std::lock_guard<RankedMutex> lk(mu_);
    cv_done_.notify_all();
  }
  job_.in_flight.fetch_sub(1, std::memory_order_acq_rel);
}

void ThreadPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<RankedMutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      // Register under mu_: parallel_for resets job_ under the same lock
      // only while in_flight is zero, so a registered drain always reads
      // one coherent job even if it was woken for an epoch that has
      // already completed.
      job_.in_flight.fetch_add(1, std::memory_order_acq_rel);
    }
    drain(worker_id);
  }
}

void ThreadPool::parallel_for(
    std::uint64_t count,
    const std::function<void(unsigned, std::uint64_t)>& fn) {
  if (count == 0) return;
  if (size() == 1 || count == 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  // Yield point before the job-reset critical section (outside mu_, per the
  // chk_point discipline): this is where PR 3's stalled-worker race lived —
  // resetting job_ while a stale drain was still registered.
  chk_point("sim.pool.reset");
  {
    std::unique_lock<RankedMutex> lk(mu_);
    // A worker woken late for a *previous* epoch may have registered just
    // before this call locked mu_ (its drain exits immediately — that
    // job's cursor is spent — but it still reads job_'s fields).  Let it
    // unwind before resetting job_ under the same lock that guards
    // registration; afterwards no drain can start until the new epoch is
    // published.
    while (job_.in_flight.load(std::memory_order_acquire) != 0) {
      lk.unlock();
      std::this_thread::yield();
      lk.lock();
    }
    job_.count = count;
    job_.chunk = std::max<std::uint64_t>(1, count / (8ull * size()));
    job_.fn = &fn;
    job_.cursor.store(0, std::memory_order_relaxed);
    job_.done.store(0, std::memory_order_relaxed);
    ++epoch_;
    // The calling thread registers its own drain here, like worker_loop.
    job_.in_flight.fetch_add(1, std::memory_order_acq_rel);
  }
  cv_start_.notify_all();
  drain(/*worker_id=*/0);
  {
    std::unique_lock<RankedMutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return job_.done.load(std::memory_order_acquire) == job_.count;
    });
  }
  // A worker that lost the cursor race — or is serving an injected stall —
  // may still be inside drain(); the caller's fn must outlive every
  // registered drain, so wait for all of them to unwind before returning.
  while (job_.in_flight.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

}  // namespace xbfs::sim
