// Dynamic serving tests: the result cache's epoch-bump purge / lazy stale
// reap, the server's update-admission lane (writes serialized, reads never
// blocked, cache purged per epoch), and that every query served across a
// stream of updates matches a fresh reference BFS on the exact graph the
// result was computed against.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "dyn/delta_ref.h"
#include "dyn/graph_store.h"
#include "graph/builder.h"
#include "graph/rmat.h"
#include "serve/result_cache.h"
#include "serve/server.h"

namespace xbfs::serve {
namespace {

using graph::vid_t;

graph::Csr undirected_rmat(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

ServeConfig manual_config() {
  ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.batch_window_ms = 0.0;
  cfg.xbfs.report_runs = false;
  return cfg;
}

CachedResult make_result(std::uint32_t depth) {
  CachedResult r;
  r.levels = std::make_shared<const std::vector<std::int32_t>>(
      std::vector<std::int32_t>{0, 1});
  r.depth = depth;
  return r;
}

// --- ResultCache epoch invalidation ---------------------------------------

TEST(DynResultCache, EpochBumpPurgesRetiredEpochs) {
  ResultCache cache(8, 1);
  cache.prime(100);
  cache.put(100, 1, make_result(1));
  cache.put(100, 2, make_result(1));
  EXPECT_EQ(cache.size(), 2u);

  const std::size_t purged = cache.epoch_bump(200);
  EXPECT_EQ(purged, 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(static_cast<bool>(cache.get(100, 1)));

  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.epoch_bumps, 1u);
  EXPECT_EQ(s.purged_stale, 2u);
}

TEST(DynResultCache, EpochBumpKeepsCurrentEpochEntries) {
  ResultCache cache(8, 1);
  cache.prime(100);
  cache.put(200, 1, make_result(1));  // already keyed under the new epoch
  cache.put(100, 2, make_result(1));
  EXPECT_EQ(cache.epoch_bump(200), 1u);  // only the epoch-100 entry goes
  EXPECT_TRUE(static_cast<bool>(cache.get(200, 1)));
}

TEST(DynResultCache, LazyReapCountsAvoidedStaleHits) {
  // A purge can't run (e.g. an entry was inserted under the old key after
  // the sweep); the get() path must still reap the prior epoch's twin.
  ResultCache cache(8, 1);
  cache.prime(100);
  cache.epoch_bump(200);          // prev=100, current=200
  cache.put(100, 7, make_result(1));  // straggler under the retired epoch
  EXPECT_EQ(cache.size(), 1u);

  // Miss on the live key for the same source: the stale twin is dropped.
  EXPECT_FALSE(static_cast<bool>(cache.get(200, 7)));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().stale_hits_avoided, 1u);
}

TEST(DynResultCache, UnprimedCacheNeverReaps) {
  ResultCache cache(8, 1);
  cache.put(100, 7, make_result(1));
  EXPECT_FALSE(static_cast<bool>(cache.get(200, 7)));  // plain miss
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().stale_hits_avoided, 0u);
}

// --- dynamic server -------------------------------------------------------

std::vector<std::int32_t> query_levels(Server& server, vid_t src) {
  Admission a = server.submit(src);
  EXPECT_TRUE(a.accepted);
  while (server.dispatch_once() == 0 &&
         a.result.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
  }
  QueryResult r = a.result.get();
  EXPECT_EQ(r.status, QueryStatus::Completed);
  return r.levels ? *r.levels : std::vector<std::int32_t>{};
}

TEST(DynServing, StaticServerRejectsUpdates) {
  const graph::Csr g = graph::build_csr(4, {{0, 1}, {1, 2}});
  Server server(g, manual_config());
  dyn::EdgeBatch b;
  b.insert(2, 3);
  const UpdateAdmission a = server.submit_update(b);
  EXPECT_FALSE(a.accepted);
  EXPECT_EQ(a.status.code(), xbfs::StatusCode::InvalidArgument);
  EXPECT_FALSE(server.dynamic());
  server.shutdown();
}

TEST(DynServing, UpdatesApplyAndInvalidateCache) {
  dyn::GraphStore store(graph::build_csr(4, {{0, 1}, {1, 2}, {2, 3}}));
  Server server(store, manual_config());
  EXPECT_TRUE(server.dynamic());

  // Warm the cache, then update: levels must reflect the new graph.
  EXPECT_EQ(query_levels(server, 0),
            (std::vector<std::int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(query_levels(server, 0),
            (std::vector<std::int32_t>{0, 1, 2, 3}));  // cache hit

  dyn::EdgeBatch b;
  b.insert(0, 3);
  const UpdateAdmission a = server.submit_update(b);
  ASSERT_TRUE(a.accepted);
  EXPECT_EQ(a.epoch, 1u);
  EXPECT_EQ(a.applied.inserts_applied, 1u);
  EXPECT_EQ(a.fingerprint, server.graph_fingerprint());
  EXPECT_GE(a.cache_purged, 1u);  // the warmed entry went with the epoch

  EXPECT_EQ(query_levels(server, 0),
            (std::vector<std::int32_t>{0, 1, 2, 1}));

  const ServerStats st = server.stats();
  EXPECT_EQ(st.updates_submitted, 1u);
  EXPECT_EQ(st.updates_applied, 1u);
  EXPECT_EQ(st.update_edges_applied, 1u);
  EXPECT_EQ(st.graph_epoch, 1u);
  EXPECT_GE(st.cache_epoch_bumps, 1u);
  EXPECT_GE(st.cache_purged_stale, 1u);
  EXPECT_GE(st.recomputes, 1u);
  server.shutdown();
}

TEST(DynServing, ServedLevelsTrackUpdatesAgainstReference) {
  const graph::Csr base = undirected_rmat(8, 21);
  dyn::GraphStore store(base);
  Server server(store, manual_config());

  std::mt19937_64 rng(13);
  std::uniform_int_distribution<vid_t> pick(0, base.num_vertices() - 1);
  for (int round = 0; round < 5; ++round) {
    dyn::EdgeBatch b;
    const dyn::Snapshot cur = store.snapshot();
    for (int i = 0; i < 6; ++i) {
      const vid_t u = pick(rng);
      const vid_t v = pick(rng);
      if (u == v) continue;
      if (cur.graph->has_edge(u, v)) {
        b.erase(u, v);
      } else {
        b.insert(u, v);
      }
    }
    ASSERT_TRUE(server.submit_update(b).accepted);

    const vid_t src = pick(rng);
    const std::vector<std::int32_t> got = query_levels(server, src);
    const dyn::Snapshot now = store.snapshot();
    EXPECT_EQ(got, dyn::reference_bfs(*now.graph, src))
        << "round " << round << " src " << src;
  }
  const ServerStats st = server.stats();
  EXPECT_EQ(st.graph_epoch, 5u);
  EXPECT_GT(st.repairs + st.recomputes, 0u);
  server.shutdown();
}

TEST(DynServing, ReadsAreNeverBlockedByWrites) {
  const graph::Csr base = undirected_rmat(8, 33);
  dyn::GraphStore store(base);
  ServeConfig cfg;  // threaded scheduler: reads and writes overlap
  cfg.xbfs.report_runs = false;
  cfg.num_gcds = 2;
  Server server(store, cfg);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::mt19937_64 rng(1);
    std::uniform_int_distribution<vid_t> pick(0, base.num_vertices() - 1);
    while (!stop.load(std::memory_order_acquire)) {
      dyn::EdgeBatch b;
      const vid_t u = pick(rng);
      const vid_t v = pick(rng);
      if (u != v) {
        if (store.snapshot().graph->has_edge(u, v)) {
          b.erase(u, v);
        } else {
          b.insert(u, v);
        }
        server.submit_update(b);
      }
      std::this_thread::yield();
    }
  });

  std::mt19937_64 rng(2);
  std::uniform_int_distribution<vid_t> pick(0, base.num_vertices() - 1);
  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 64; ++i) {
    Admission a = server.submit(pick(rng));
    ASSERT_TRUE(a.accepted);
    if (a.result.valid()) futs.push_back(std::move(a.result));
  }
  server.drain();
  stop.store(true, std::memory_order_release);
  writer.join();

  std::size_t completed = 0;
  for (auto& f : futs) {
    const QueryResult r = f.get();
    // Every query resolves with levels; the snapshot it ran on is one of
    // the epochs the writer published, so validate shape only.
    EXPECT_EQ(r.status, QueryStatus::Completed);
    ASSERT_TRUE(r.levels);
    EXPECT_EQ(r.levels->size(), base.num_vertices());
    ++completed;
  }
  EXPECT_EQ(completed, futs.size());
  EXPECT_GT(server.stats().updates_applied, 0u);
  server.shutdown();
}

TEST(DynServing, ShutdownRejectsUpdates) {
  dyn::GraphStore store(graph::build_csr(3, {{0, 1}, {1, 2}}));
  Server server(store, manual_config());
  server.shutdown();
  dyn::EdgeBatch b;
  b.insert(0, 2);
  const UpdateAdmission a = server.submit_update(b);
  EXPECT_FALSE(a.accepted);
  EXPECT_EQ(a.status.code(), xbfs::StatusCode::ShuttingDown);
}

TEST(DynServing, SummaryCarriesDynamicCounters) {
  dyn::GraphStore store(graph::build_csr(4, {{0, 1}, {1, 2}, {2, 3}}));
  Server server(store, manual_config());
  (void)query_levels(server, 0);
  dyn::EdgeBatch b;
  b.insert(0, 2);
  server.submit_update(b);
  (void)query_levels(server, 0);
  const ServerStats st = server.stats();
  EXPECT_EQ(st.updates_applied, 1u);
  EXPECT_EQ(st.graph_epoch, 1u);
  EXPECT_EQ(st.repairs + st.recomputes, st.computed_sources);
  server.shutdown();
}

}  // namespace
}  // namespace xbfs::serve
