// Unit tests for the device runtime: allocation, kernel launch accounting,
// stream clocks and synchronization costs, memcpy modelling, the profiler,
// shared-memory arena and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "hipsim/hipsim.h"

namespace xbfs::sim {
namespace {

Device make_device(unsigned workers = 1) {
  SimOptions o;
  o.num_workers = workers;
  return Device(DeviceProfile::test_profile(), o);
}

TEST(DeviceAlloc, BuffersAreLineAlignedAndDisjoint) {
  Device dev = make_device();
  auto a = dev.alloc<std::uint32_t>(3);
  auto b = dev.alloc<std::uint32_t>(5);
  const unsigned line = dev.profile().l2_line_bytes;
  EXPECT_EQ(a.device_addr() % line, 0u);
  EXPECT_EQ(b.device_addr() % line, 0u);
  EXPECT_GE(b.device_addr(), a.device_addr() + 3 * sizeof(std::uint32_t));
  EXPECT_GT(dev.allocated_bytes(), 0u);
}

TEST(DeviceAlloc, SpanViewsAndSubspan) {
  Device dev = make_device();
  auto buf = dev.alloc<int>(10);
  std::iota(buf.host_data(), buf.host_data() + 10, 0);
  dspan<int> s = buf.span();
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s[7], 7);
  dspan<int> sub = s.subspan(4, 3);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[0], 4);
  EXPECT_EQ(sub.addr_of(0), s.addr_of(4));
  dspan<const int> cs = s;  // implicit const view
  EXPECT_EQ(cs[2], 2);
}

TEST(DeviceLaunch, GridStrideCoversEveryIndexExactlyOnce) {
  Device dev = make_device(4);
  const std::size_t n = 10007;  // prime: exercises ragged tails
  auto buf = dev.alloc<std::uint32_t>(n);
  auto s = buf.span();
  dev.launch("fill", LaunchConfig{.grid_blocks = 7, .block_threads = 64},
             [=](BlockCtx& blk) {
               auto& ctx = blk.ctx();
               blk.grid_stride(n, [&](std::uint64_t i) {
                 ctx.store(s, i, static_cast<std::uint32_t>(i * 3 + 1));
               });
             });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(buf.host_data()[i], i * 3 + 1) << i;
  }
}

TEST(DeviceLaunch, CountersMatchIssuedTraffic) {
  Device dev = make_device();
  const std::size_t n = 1000;
  auto buf = dev.alloc<std::uint32_t>(n);
  auto s = buf.span();
  const LaunchResult r = dev.launch(
      "stores", LaunchConfig{.grid_blocks = 2, .block_threads = 64},
      [=](BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(n, [&](std::uint64_t i) {
          ctx.store(s, i, std::uint32_t{1});
        });
      });
  EXPECT_EQ(r.counters.mem_writes, n);
  EXPECT_EQ(r.counters.bytes_written, n * sizeof(std::uint32_t));
  EXPECT_GT(r.counters.lane_slots, 0u);
  EXPECT_GT(r.time_us, 0.0);
}

TEST(DeviceLaunch, AtomicAddsAreExactUnderContention) {
  Device dev = make_device(4);
  auto buf = dev.alloc<std::uint64_t>(1);
  buf.host_data()[0] = 0;
  auto s = buf.span();
  const unsigned blocks = 32, threads = 64;
  dev.launch("atomics", LaunchConfig{.grid_blocks = blocks,
                                     .block_threads = threads},
             [=](BlockCtx& blk) {
               auto& ctx = blk.ctx();
               blk.threads([&](unsigned) {
                 ctx.atomic_add(s, 0, std::uint64_t{1});
               });
             });
  EXPECT_EQ(buf.host_data()[0], std::uint64_t{blocks} * threads);
}

TEST(DeviceLaunch, AtomicCasClaimsExactlyOnce) {
  Device dev = make_device(4);
  const std::size_t n = 4096;
  auto flags = dev.alloc<std::uint32_t>(n);
  auto wins = dev.alloc<std::uint32_t>(1);
  std::fill(flags.host_data(), flags.host_data() + n, 0xFFFFFFFFu);
  wins.host_data()[0] = 0;
  auto fs = flags.span();
  auto ws = wins.span();
  // Every thread tries to claim every slot; exactly n claims must win.
  dev.launch("cas", LaunchConfig{.grid_blocks = 8, .block_threads = 64},
             [=](BlockCtx& blk) {
               auto& ctx = blk.ctx();
               blk.threads([&](unsigned t) {
                 for (std::size_t i = t; i < n; i += 64) {
                   const std::uint32_t old =
                       ctx.atomic_cas(fs, i, 0xFFFFFFFFu,
                                      blk.block_id() * 64 + t);
                   if (old == 0xFFFFFFFFu) {
                     ctx.atomic_add(ws, 0, std::uint32_t{1});
                   }
                 }
               });
             });
  EXPECT_EQ(wins.host_data()[0], n);
}

TEST(DeviceLaunch, FirstLaunchPaysWarmupOnce) {
  DeviceProfile p = DeviceProfile::test_profile();
  p.first_launch_us = 500.0;
  Device dev(p, SimOptions{.num_workers = 1});
  auto noop = [](BlockCtx&) {};
  const LaunchResult r1 = dev.launch("k1", LaunchConfig{1, 32, 1.0}, noop);
  const LaunchResult r2 = dev.launch("k2", LaunchConfig{1, 32, 1.0}, noop);
  EXPECT_GE(r1.time_us, 500.0);
  EXPECT_LT(r2.time_us, 500.0);
}

TEST(DeviceLaunch, WarmupSkipsFirstLaunchCost) {
  DeviceProfile p = DeviceProfile::test_profile();
  p.first_launch_us = 500.0;
  Device dev(p, SimOptions{.num_workers = 1});
  dev.warmup();
  const LaunchResult r =
      dev.launch("k", LaunchConfig{1, 32, 1.0}, [](BlockCtx&) {});
  EXPECT_LT(r.time_us, 500.0);
}

TEST(Streams, SynchronizeAdvancesFloorWithCost) {
  Device dev = make_device();
  dev.launch("k", LaunchConfig{1, 32, 1.0}, [](BlockCtx&) {});
  const double before = dev.now_us();
  dev.synchronize();
  EXPECT_GE(dev.now_us(), before + dev.profile().device_sync_us);
}

TEST(Streams, IndependentStreamsOverlapJoinCosts) {
  Device dev = make_device();
  Stream& s1 = dev.create_stream("a");
  Stream& s2 = dev.create_stream("b");
  auto body = [](BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned) { ctx.slots(1, 1); });
  };
  dev.launch(s1, "k1", LaunchConfig{1, 64, 1.0}, body);
  dev.launch(s2, "k2", LaunchConfig{1, 64, 1.0}, body);
  // Overlapped: both started at the same floor, so max end < sum of times.
  const double t1 = s1.t_end(), t2 = s2.t_end();
  EXPECT_GT(t1, 0);
  EXPECT_GT(t2, 0);
  dev.join_streams({&s1, &s2});
  EXPECT_DOUBLE_EQ(s1.t_end(), s2.t_end());
  EXPECT_GE(s1.t_end(), std::max(t1, t2) + dev.profile().stream_join_us);
}

TEST(Streams, MemcpyChargesOverheadPlusBandwidth) {
  Device dev = make_device();
  const double t = dev.memcpy_h2d(1000000);
  const DeviceProfile& p = dev.profile();
  EXPECT_NEAR(t, p.memcpy_overhead_us + 1e6 / p.h2d_bytes_per_us, 1e-9);
  EXPECT_GE(dev.now_us(), t);
}

TEST(Streams, ResetClockZeroesTimeline) {
  Device dev = make_device();
  dev.memcpy_h2d(1024);
  dev.synchronize();
  ASSERT_GT(dev.now_us(), 0.0);
  dev.reset_clock();
  EXPECT_DOUBLE_EQ(dev.now_us(), 0.0);
}

TEST(Profiler, RecordsTaggedLaunches) {
  Device dev = make_device();
  dev.profiler().set_context(3, "bottom-up");
  dev.launch("kernel_x", LaunchConfig{1, 32, 1.0}, [](BlockCtx&) {});
  ASSERT_EQ(dev.profiler().records().size(), 1u);
  const LaunchRecord& r = dev.profiler().records()[0];
  EXPECT_EQ(r.kernel, "kernel_x");
  EXPECT_EQ(r.level, 3);
  EXPECT_EQ(r.tag, "bottom-up");
}

TEST(Profiler, DisabledProfilerRecordsNothing) {
  Device dev = make_device();
  dev.profiler().set_enabled(false);
  dev.launch("k", LaunchConfig{1, 32, 1.0}, [](BlockCtx&) {});
  EXPECT_TRUE(dev.profiler().records().empty());
}

TEST(Profiler, MatchingAndTotalsFilterBySubstring) {
  Device dev = make_device();
  dev.launch("alpha_one", LaunchConfig{1, 32, 1.0}, [](BlockCtx&) {});
  dev.launch("beta_two", LaunchConfig{1, 32, 1.0}, [](BlockCtx&) {});
  dev.launch("alpha_three", LaunchConfig{1, 32, 1.0}, [](BlockCtx&) {});
  EXPECT_EQ(dev.profiler().matching("alpha").size(), 2u);
  EXPECT_GT(dev.profiler().total_runtime_ms("alpha"), 0.0);
  EXPECT_GT(dev.profiler().total_runtime_ms(""),
            dev.profiler().total_runtime_ms("alpha"));
}

TEST(ShMemArena, BumpAllocAlignsAndResets) {
  ShMem sh(1024);
  char* c = sh.alloc<char>(3);
  double* d = sh.alloc<double>(2);
  EXPECT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_GE(sh.used(), 3u + 2 * sizeof(double));
  sh.reset();
  EXPECT_EQ(sh.used(), 0u);
}

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  ThreadPool pool(4);
  constexpr std::uint64_t n = 100000;
  std::vector<std::atomic<std::uint8_t>> seen(n);
  pool.parallel_for(n, [&](unsigned, std::uint64_t i) {
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(seen[i].load(), 1u) << i;
  }
}

TEST(ThreadPool, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(1000, [&](unsigned, std::uint64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 1000ull * 999 / 2) << round;
  }
}

TEST(ThreadPool, SingleWorkerIsSequential) {
  ThreadPool pool(1);
  std::vector<std::uint64_t> order;
  pool.parallel_for(100, [&](unsigned worker, std::uint64_t i) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  for (std::uint64_t i = 0; i < 100; ++i) ASSERT_EQ(order[i], i);
}

TEST(Determinism, SingleWorkerCountersAreBitIdentical) {
  auto run_once = [] {
    Device dev = make_device(1);
    const std::size_t n = 4096;
    auto buf = dev.alloc<std::uint32_t>(n);
    auto s = buf.span();
    return dev
        .launch("k", LaunchConfig{4, 64, 1.0},
                [=](BlockCtx& blk) {
                  auto& ctx = blk.ctx();
                  blk.grid_stride(n, [&](std::uint64_t i) {
                    ctx.store(s, i, static_cast<std::uint32_t>(i));
                    if (i % 3 == 0) ctx.load(s, (i * 7) % n);
                  });
                })
        .counters;
  };
  const KernelCounters a = run_once();
  const KernelCounters b = run_once();
  EXPECT_EQ(a.l2_hits, b.l2_hits);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.fetch_bytes, b.fetch_bytes);
  EXPECT_EQ(a.lane_slots, b.lane_slots);
}

}  // namespace
}  // namespace xbfs::sim
