// Disk round-trip integration: a generated dataset written by one tool
// path and read back by another must traverse identically — the contract
// between make_dataset, dataset_explorer --file and the library.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/xbfs.h"
#include "graph/datasets.h"
#include "graph/device_csr.h"
#include "graph/io.h"
#include "graph/reference.h"
#include "graph/reorder.h"

namespace xbfs::graph {
namespace {

class IoIntegration : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    const auto p = std::filesystem::temp_directory_path() /
                   (std::string("xbfs_io_integration_") + name);
    created_.push_back(p.string());
    return p.string();
  }
  void TearDown() override {
    for (const auto& p : created_) std::filesystem::remove(p);
  }
  std::vector<std::string> created_;
};

TEST_F(IoIntegration, CsrRoundTripTraversesIdentically) {
  const Csr g = make_dataset(DatasetId::DB, 512, 7);
  const std::string file = path("db.csr");
  write_csr_binary(file, g);
  const Csr back = read_csr_binary(file);

  const auto giant = largest_component_vertices(g);
  const vid_t src = giant.front();
  EXPECT_EQ(reference_bfs(g, src), reference_bfs(back, src));

  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, back);
  core::Xbfs bfs(dev, dg);
  const core::BfsResult r = bfs.run(src);
  EXPECT_TRUE(validate_bfs_levels(back, src, r.levels).empty());
}

TEST_F(IoIntegration, RearrangedGraphSurvivesRoundTrip) {
  const Csr g = rearrange_neighbors(make_dataset(DatasetId::R23, 512, 3),
                                    NeighborOrder::ByDegreeDesc);
  const std::string file = path("r23_reord.csr");
  write_csr_binary(file, g);
  const Csr back = read_csr_binary(file);
  // The on-disk format must preserve adjacency order exactly (the order IS
  // the optimization).
  EXPECT_EQ(back.cols(), g.cols());
  EXPECT_TRUE(neighbors_ordered(back, NeighborOrder::ByDegreeDesc));
}

TEST_F(IoIntegration, HalvedTextEdgeListRebuildsTheSameGraph) {
  // The make_dataset --text path writes each undirected edge once; the
  // builder's symmetrization must reconstruct the same CSR.
  const Csr g = make_dataset(DatasetId::DB, 1024, 9);
  std::vector<Edge> half;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t w : g.neighbors(v)) {
      if (v <= w) half.push_back({v, w});
    }
  }
  const std::string file = path("db_half.txt");
  write_edge_list_text(file, half);
  vid_t n = 0;
  auto edges = read_edge_list_text(file, &n);
  const Csr rebuilt = build_csr(g.num_vertices(), std::move(edges));
  EXPECT_EQ(rebuilt.offsets(), g.offsets());
  EXPECT_EQ(rebuilt.cols(), g.cols());
}

}  // namespace
}  // namespace xbfs::graph
