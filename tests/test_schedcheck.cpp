// SchedCheck unit tests (docs/modelcheck.md): env-spec parsing, planted
// kernel races caught-and-replayed by seed, benign annotated races verified
// benign, deterministic replay, the host-side harnesses over the flight
// recorder's seqlock / admission queue / breaker probe token / graph-store
// publication, a protocol model pinning the historical stalled-worker
// thread-pool race (caught in the buggy variant, clean in the shipped one),
// and lock-rank inversion detection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "dyn/edge_batch.h"
#include "dyn/graph_store.h"
#include "graph/rmat.h"
#include "hipsim/hipsim.h"
#include "hipsim/lock_rank.h"
#include "hipsim/sanitizer.h"
#include "hipsim/schedcheck.h"
#include "obs/flight_recorder.h"
#include "serve/admission_queue.h"
#include "serve/health.h"
#include "store/durability.h"

namespace xbfs {
namespace {

using sim::SchedCheck;
using sim::SchedCheckConfig;
using sim::Schedule;

/// Configure the global sanitizer for one test; on scope exit drop the
/// findings/registry and disable.  Declare FIRST in a test body so device
/// buffers die before reset() releases their shadows (same discipline as
/// test_sanitizer.cpp).
struct SanScope {
  explicit SanScope(
      sim::SanitizeConfig cfg = sim::SanitizeConfig::all_on()) {
    sim::Sanitizer::global().configure(cfg);
  }
  ~SanScope() {
    sim::Sanitizer::global().reset();
    sim::Sanitizer::global().disable();
  }
};

sim::Device make_device() {
  return sim::Device(sim::DeviceProfile::mi250x_gcd(),
                     sim::SimOptions{.num_workers = 1});
}

SchedCheckConfig small_cfg(unsigned schedules = 12, unsigned preemptions = 3,
                           std::uint64_t seed = 0xC0FFEEull) {
  SchedCheckConfig cfg;
  cfg.schedules = schedules;
  cfg.preemptions = preemptions;
  cfg.seed = seed;
  return cfg;
}

TEST(SchedCheckTest, EnvSpecParsing) {
  const auto cfg =
      SchedCheckConfig::from_env_string("schedules=64,preemptions=5,seed=7");
  EXPECT_EQ(cfg.schedules, 64u);
  EXPECT_EQ(cfg.preemptions, 5u);
  EXPECT_EQ(cfg.seed, 7ull);
  EXPECT_FALSE(cfg.has_replay);

  const auto rep = SchedCheckConfig::from_env_string("replay=0x1B5ED");
  EXPECT_TRUE(rep.has_replay);
  EXPECT_EQ(rep.replay_seed, 0x1B5EDull);

  // Unknown/malformed tokens warn and are ignored; schedules clamps to 1.
  const auto junk =
      SchedCheckConfig::from_env_string("schedules=0,bogus=3,seed=nope");
  EXPECT_EQ(junk.schedules, 1u);
  EXPECT_EQ(junk.seed, SchedCheckConfig{}.seed);
}

// The headline promise, at unit scale: an unsynchronized cross-block RMW
// is reported on every schedule, diverges within the budget, and the
// divergent seed replays to the identical state hash.
TEST(SchedCheckTest, PlantedKernelRaceCaughtAndReplaysBySeed) {
  SanScope san;
  SchedCheck chk;
  auto planted = [&](Schedule&) -> std::uint64_t {
    sim::Device dev = make_device();
    sim::Stream& s = dev.stream(0);
    auto counter = dev.alloc<std::uint32_t>(1, "chk.counter");
    counter.h_fill(0);
    dev.memcpy_h2d(s, counter);
    auto cs = counter.span();
    sim::LaunchConfig lc{.grid_blocks = 4, .block_threads = 1};
    dev.launch(s, "racy_rmw", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t != 0) return;
        for (int it = 0; it < 3; ++it) {
          const std::uint32_t v = ctx.load(cs, 0);
          ctx.store(cs, 0, v + 1);
        }
      });
    });
    dev.memcpy_d2h(s, counter);
    return 0x1000ull + counter.h_read(0);
  };

  const auto res = chk.explore_with(small_cfg(), "planted", planted);
  ASSERT_FALSE(res.failures.empty())
      << "the sanitizer must flag the unannotated race on every schedule";
  ASSERT_TRUE(res.state_diverged)
      << "some schedule must exhibit the lost update within the budget";
  EXPECT_NE(res.first_divergent_hash, res.baseline_hash);

  SchedCheckConfig replay = small_cfg();
  replay.has_replay = true;
  replay.replay_seed = res.first_divergent_seed;
  sim::Sanitizer::global().reset();
  const auto rep = chk.explore_with(replay, "planted-replay", planted);
  ASSERT_TRUE(rep.state_diverged);
  EXPECT_EQ(rep.first_divergent_seed, res.first_divergent_seed);
  EXPECT_EQ(rep.first_divergent_hash, res.first_divergent_hash)
      << "replay must reproduce the divergent state bit-for-bit";
}

// A racy_ok-annotated same-value store is the benign-race pattern the
// paper's bottom-up look-ahead relies on: every interleaving must converge
// to the same state with zero findings — that is what "verified benign"
// means.
TEST(SchedCheckTest, AnnotatedSameValueRaceVerifiesBenign) {
  SanScope san;
  SchedCheck chk;
  const auto res = chk.explore_with(
      small_cfg(), "benign", [&](Schedule&) -> std::uint64_t {
        sim::Device dev = make_device();
        sim::Stream& s = dev.stream(0);
        auto flag = dev.alloc<std::uint32_t>(4, "chk.flag");
        flag.h_fill(0);
        dev.memcpy_h2d(s, flag);
        auto fs = flag.span();
        sim::LaunchConfig lc{.grid_blocks = 4, .block_threads = 1};
        dev.launch(s, "same_value_claim", lc, [=](sim::BlockCtx& blk) {
          auto& ctx = blk.ctx();
          blk.threads([&](unsigned t) {
            if (t != 0) return;
            sim::racy_ok allow(ctx, "test: same-value claim from every block");
            for (std::size_t i = 0; i < 4; ++i) {
              if (ctx.load(fs, i) == 0) ctx.store(fs, i, 7u);
            }
          });
        });
        dev.memcpy_d2h(s, flag);
        std::vector<std::uint32_t> out(4);
        for (std::size_t i = 0; i < 4; ++i) out[i] = flag.h_read(i);
        return sim::state_hash(out);
      });
  EXPECT_TRUE(res.ok()) << "same-value stores must converge on every "
                           "schedule with zero findings";
  EXPECT_GT(res.conflict_keys, 0u);
}

// Two explorations from the same config must make identical decisions:
// same preemption count, same failures, same divergence.  This is the
// property the replay workflow stands on.
TEST(SchedCheckTest, ExplorationIsDeterministicAcrossRuns) {
  SanScope san;
  SchedCheck chk;
  auto body = [&](Schedule&) -> std::uint64_t {
    sim::Device dev = make_device();
    sim::Stream& s = dev.stream(0);
    auto counter = dev.alloc<std::uint32_t>(1, "chk.det");
    counter.h_fill(0);
    dev.memcpy_h2d(s, counter);
    auto cs = counter.span();
    sim::LaunchConfig lc{.grid_blocks = 3, .block_threads = 1};
    dev.launch(s, "det_rmw", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t != 0) return;
        const std::uint32_t v = ctx.load(cs, 0);
        ctx.store(cs, 0, v + 1);
      });
    });
    dev.memcpy_d2h(s, counter);
    return 0x1000ull + counter.h_read(0);
  };
  const auto a = chk.explore_with(small_cfg(), "det-a", body);
  sim::Sanitizer::global().reset();
  const auto b = chk.explore_with(small_cfg(), "det-b", body);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.yield_points, b.yield_points);
  EXPECT_EQ(a.conflict_keys, b.conflict_keys);
  EXPECT_EQ(a.state_diverged, b.state_diverged);
  EXPECT_EQ(a.first_divergent_seed, b.first_divergent_seed);
  EXPECT_EQ(a.first_divergent_hash, b.first_divergent_hash);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
    EXPECT_EQ(a.failures[i].what, b.failures[i].what);
  }
}

// Host domain: the flight recorder's seqlock under controlled writer /
// reader interleavings.  Every snapshot a preempted reader takes must be
// internally consistent — the payload always matches the slot's seq claim.
TEST(SchedCheckTest, FlightRecorderSeqlockSnapshotsStayCoherent) {
  SanScope san;
  SchedCheck chk;
  const auto res = chk.explore_with(
      small_cfg(16, 4), "flight-seqlock", [&](Schedule& s) -> std::uint64_t {
        obs::FlightRecorder fr;
        fr.enable("", /*capacity=*/8);  // tiny ring: writers lap readers
        std::uint64_t reader_hash = 0;
        s.run_tasks(3, [&](std::size_t task) {
          if (task < 2) {
            for (int i = 0; i < 6; ++i) {
              fr.record("chk", "evt", {}, task, static_cast<std::uint64_t>(i));
            }
            return;
          }
          for (int round = 0; round < 4; ++round) {
            const auto events = fr.snapshot();
            std::uint64_t prev = 0;
            for (const auto& e : events) {
              if (e.seq <= prev) {
                s.fail("snapshot out of order / duplicated seq");
              }
              prev = e.seq;
              if (std::string(e.cat) != "chk" ||
                  std::string(e.name) != "evt" || e.a > 1) {
                s.fail("torn slot escaped the seqlock re-check");
              }
              reader_hash = sim::state_hash_mix(reader_hash, e.seq);
            }
          }
        });
        // The final ring contents are schedule-dependent (readers race
        // writers); coherence, not equality, is the invariant here.
        (void)reader_hash;
        return 0;
      });
  EXPECT_TRUE(res.ok()) << "seqlock coherence must hold on every schedule";
  EXPECT_GT(res.preemptions, 0u) << "the harness should actually interleave";
}

// Host domain: admission-queue conservation.  However producers and the
// consumer interleave, every admitted query is either popped or still
// queued — nothing is lost or duplicated.
TEST(SchedCheckTest, AdmissionQueueConservesQueriesUnderInterleaving) {
  SanScope san;
  SchedCheck chk;
  const auto res = chk.explore_with(
      small_cfg(16, 4), "admission", [&](Schedule& s) -> std::uint64_t {
        serve::AdmissionQueue q(/*capacity=*/64);
        std::atomic<std::uint64_t> pushed{0};
        std::atomic<std::uint64_t> popped{0};
        s.run_tasks(3, [&](std::size_t task) {
          if (task < 2) {
            for (int i = 0; i < 5; ++i) {
              // A shared step point makes producer/consumer turns
              // conflict-eligible (their internal chk_points use
              // distinct sites).
              sim::chk_point("test.admission.step");
              serve::PendingQuery pq;
              pq.id = static_cast<serve::QueryId>(task * 100 + i);
              if (q.try_push(std::move(pq)).ok()) {
                pushed.fetch_add(1, std::memory_order_relaxed);
              }
            }
            return;
          }
          std::vector<serve::PendingQuery> out;
          for (int round = 0; round < 6; ++round) {
            sim::chk_point("test.admission.step");
            popped.fetch_add(q.try_pop_batch(out, 3),
                             std::memory_order_relaxed);
          }
        });
        const std::uint64_t in_flight = q.size();
        if (pushed.load() != popped.load() + in_flight) {
          s.fail("conservation broken: pushed " +
                 std::to_string(pushed.load()) + " != popped " +
                 std::to_string(popped.load()) + " + queued " +
                 std::to_string(in_flight));
        }
        return sim::state_hash_mix(0x11ull, pushed.load());
      });
  EXPECT_TRUE(res.ok());
  EXPECT_GT(res.preemptions, 0u);
}

// Host domain: the breaker's half-open probe token.  When an Open slot
// cools down and two callers race allow(), exactly one may win the probe —
// under every interleaving.
TEST(SchedCheckTest, BreakerHandsOutExactlyOneProbeToken) {
  SanScope san;
  SchedCheck chk;
  const auto res = chk.explore_with(
      small_cfg(16, 4), "breaker-probe", [&](Schedule& s) -> std::uint64_t {
        serve::BreakerConfig bc;
        bc.failure_threshold = 1;
        bc.cooldown_ms = 1.0;
        serve::HealthTracker health(/*num_slots=*/1, bc);
        health.record_failure(0, /*now_us=*/0.0);  // trip the breaker
        int granted[2] = {0, 0};
        s.run_tasks(2, [&](std::size_t task) {
          sim::chk_point("test.breaker.step");
          // Past cooldown: both callers see Open-and-expired and race the
          // HalfOpen transition.
          if (health.allow(0, /*now_us=*/5000.0)) granted[task] = 1;
        });
        const int total = granted[0] + granted[1];
        if (total != 1) {
          s.fail("probe token violated: " + std::to_string(total) +
                 " callers admitted");
        }
        // WHICH caller wins is legitimately schedule-dependent; hash only
        // the invariant (token count), not the winner.
        return sim::state_hash_mix(0x22ull, static_cast<std::uint64_t>(total));
      });
  EXPECT_TRUE(res.ok()) << "exactly one caller may hold the half-open probe";
}

// Host domain: graph-store publication.  A reader snapshotting while a
// writer applies batches must always get a matched (graph, epoch,
// fingerprint) triple — never the new epoch with the old graph.
TEST(SchedCheckTest, GraphStoreSnapshotsAreNeverTorn) {
  SanScope san;
  SchedCheck chk;
  graph::RmatParams p;
  p.scale = 6;
  p.edge_factor = 4;
  p.seed = 9;
  const graph::Csr base = graph::rmat_csr(p);
  const auto res = chk.explore_with(
      small_cfg(16, 4), "store-publish", [&](Schedule& s) -> std::uint64_t {
        dyn::GraphStore store(base);
        s.run_tasks(2, [&](std::size_t task) {
          if (task == 0) {
            for (int i = 0; i < 3; ++i) {
              // Shared step point: the store's own chk_points use
              // writer-only sites (apply/publish) and a reader-only site
              // (snapshot), which never conflict under DPOR-lite; the
              // harness supplies the common key both tasks touch.
              sim::chk_point("test.store.step");
              dyn::EdgeBatch b;
              b.insert(static_cast<graph::vid_t>(i),
                       static_cast<graph::vid_t>(i + 20));
              store.apply(b);
            }
            return;
          }
          for (int round = 0; round < 5; ++round) {
            sim::chk_point("test.store.step");
            const dyn::Snapshot snap = store.snapshot();
            if (!snap) {
              s.fail("null snapshot");
              continue;
            }
            if (snap.epoch != snap.graph->epoch() ||
                snap.fingerprint != snap.graph->fingerprint()) {
              s.fail("torn snapshot: triple mixes two versions (epoch " +
                     std::to_string(snap.epoch) + " vs graph " +
                     std::to_string(snap.graph->epoch()) + ")");
            }
          }
        });
        return sim::state_hash_mix(0x33ull, store.epoch());
      });
  EXPECT_TRUE(res.ok());
  EXPECT_GT(res.preemptions, 0u);
}

// Protocol model of the historical thread-pool stalled-worker race: a
// late-woken worker registers and reads the job descriptor while
// parallel_for resets it for the next epoch.  The buggy variant (reset
// without waiting for registered drains) must be caught by some schedule
// and replay from its seed; the shipped protocol (reset only while no
// drain is registered — mutually exclusive with registration) must verify
// clean.  Mirrors src/hipsim/thread_pool.cpp's in_flight handshake.
struct PoolModel {
  std::atomic<int> in_flight{0};
  std::uint64_t job_count = 400;
  std::uint64_t job_chunk = 100;  // invariant: chunk * 4 == count
};

std::uint64_t pool_model_round(Schedule& s, bool buggy) {
  PoolModel m;
  std::atomic<int> torn{0};
  s.run_tasks(2, [&](std::size_t task) {
    if (task == 0) {
      // parallel_for: publish the next epoch's job.
      for (int tries = 0; tries < 6; ++tries) {
        sim::chk_point("pool.model.step");
        if (buggy) {
          // Reset unconditionally — a registered drain may be mid-read.
          m.job_count = 800;
          sim::chk_point("pool.model.step");  // the torn-write window
          m.job_chunk = 200;
          return;
        }
        // Shipped protocol: reset only while nothing is registered; the
        // check and both writes sit between yield points, modelling the
        // mu_-protected critical section (no chk_point inside — the
        // scheduler cannot interpose, exactly like a lock).
        if (m.in_flight.load(std::memory_order_acquire) == 0) {
          m.job_count = 800;
          m.job_chunk = 200;
          return;
        }
      }
      return;
    }
    // Late-woken worker: register, then read the descriptor (outside the
    // lock, as drain() does) — yields between the reads are the race.
    sim::chk_point("pool.model.step");
    m.in_flight.fetch_add(1, std::memory_order_acq_rel);
    sim::chk_point("pool.model.step");
    const std::uint64_t c = m.job_count;
    sim::chk_point("pool.model.step");
    const std::uint64_t k = m.job_chunk;
    if (k * 4 != c) torn.store(1, std::memory_order_relaxed);
    m.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  });
  if (torn.load() != 0) s.fail("worker read a torn job descriptor");
  return sim::state_hash_mix(0x44ull, m.job_count + m.job_chunk);
}

TEST(SchedCheckTest, StalledWorkerProtocolModelRegression) {
  SanScope san;
  SchedCheck chk;
  const auto buggy = chk.explore_with(
      small_cfg(24, 4, 0xBADull), "pool-model-buggy",
      [&](Schedule& s) { return pool_model_round(s, /*buggy=*/true); });
  ASSERT_FALSE(buggy.failures.empty())
      << "the unguarded reset must be caught within the budget";

  // The failure seed alone reproduces the torn read.
  SchedCheckConfig replay = small_cfg(24, 4, 0xBADull);
  replay.has_replay = true;
  replay.replay_seed = buggy.failures.front().seed;
  const auto rep = chk.explore_with(
      replay, "pool-model-replay",
      [&](Schedule& s) { return pool_model_round(s, /*buggy=*/true); });
  ASSERT_FALSE(rep.failures.empty());
  EXPECT_EQ(rep.failures.front().seed, buggy.failures.front().seed);
  EXPECT_EQ(rep.failures.front().what, buggy.failures.front().what);

  const auto fixed = chk.explore_with(
      small_cfg(24, 4, 0xBADull), "pool-model-fixed",
      [&](Schedule& s) { return pool_model_round(s, /*buggy=*/false); });
  EXPECT_TRUE(fixed.ok()) << "the shipped handshake must verify clean";
}

// Durable-writer handshake: the WAL append/fsync/publish sequence yields
// at "store.wal.append", "store.wal.fsync" and "dyn.store.publish", so
// SchedCheck can interpose a reader between the record becoming durable
// and the epoch becoming visible.  The invariant under every schedule is
// durable-then-visible: a snapshot a reader can observe is never ahead of
// the durability hook's last fsync'd epoch/fingerprint.
TEST(SchedCheckTest, DurableWriterNeverPublishesBeforeFsync) {
  SanScope san;
  SchedCheck chk;
  graph::RmatParams p;
  p.scale = 6;
  p.edge_factor = 4;
  p.seed = 21;
  const graph::Csr base = graph::rmat_csr(p);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("xbfs_schedcheck_wal_" + std::to_string(::getpid()));

  const auto res = chk.explore_with(
      small_cfg(16, 4), "durable-writer", [&](Schedule& s) -> std::uint64_t {
        std::filesystem::remove_all(dir);
        store::DurableStore ds;
        if (!store::open_durable({dir.string(), 0}, base, {}, 64, &ds).ok()) {
          s.fail("open_durable failed");
          return 0;
        }
        s.run_tasks(2, [&](std::size_t task) {
          if (task == 0) {
            for (int i = 0; i < 3; ++i) {
              sim::chk_point("test.store.step");
              dyn::EdgeBatch b;
              b.insert(static_cast<graph::vid_t>(i),
                       static_cast<graph::vid_t>(i + 20));
              ds.store->apply(b);
            }
            return;
          }
          for (int round = 0; round < 5; ++round) {
            sim::chk_point("test.store.step");
            const dyn::Snapshot snap = ds.store->snapshot();
            // Stats are read after the snapshot and the durable epoch only
            // grows, so durable >= visible must hold at this point under
            // every interleaving.
            const dyn::DurabilityStats st = ds.durability->stats();
            if (st.last_durable_epoch < snap.epoch) {
              s.fail("epoch " + std::to_string(snap.epoch) +
                     " visible before durable (last fsync'd " +
                     std::to_string(st.last_durable_epoch) + ")");
            }
            if (snap.epoch == st.last_durable_epoch &&
                snap.fingerprint != st.last_durable_fingerprint) {
              s.fail("visible fingerprint disagrees with the durable one at "
                     "epoch " +
                     std::to_string(snap.epoch));
            }
          }
        });
        return sim::state_hash_mix(0x55ull, ds.store->fingerprint());
      });
  std::filesystem::remove_all(dir);
  EXPECT_TRUE(res.ok());
  EXPECT_GT(res.preemptions, 0u);
}

// Lock-rank assertions: acquiring a lower-ranked mutex while holding a
// higher-ranked one is a potential deadlock cycle and must be reported
// with both stacks, before the lock is taken.
TEST(SchedCheckTest, LockRankInversionIsCaughtWithBothStacks) {
  sim::LockRank::set_abort(false);  // throw instead of abort, for the test
  sim::RankedMutex low{10, "test.low"};
  sim::RankedMutex high{20, "test.high"};

  {  // ascending order is legal
    std::lock_guard<sim::RankedMutex> a(low);
    std::lock_guard<sim::RankedMutex> b(high);
  }

  bool caught = false;
  std::string msg;
  {
    std::lock_guard<sim::RankedMutex> b(high);
    try {
      low.lock();
      low.unlock();  // unreachable
    } catch (const sim::LockOrderViolation& e) {
      caught = true;
      msg = e.what();
    }
  }
  ASSERT_TRUE(caught);
  EXPECT_NE(msg.find("test.low"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test.high"), std::string::npos) << msg;
  sim::LockRank::set_abort(true);
}

}  // namespace
}  // namespace xbfs
