// Unit tests for the L2 cache model: hit/miss behaviour, LRU replacement,
// write-back accounting, payload-based service accounting, sharding and
// invalidation.
#include <gtest/gtest.h>

#include "hipsim/mem_model.h"

namespace xbfs::sim {
namespace {

TEST(CacheShard, ColdMissThenHit) {
  CacheShard shard(64 * 1024, 64, 4);
  EXPECT_FALSE(shard.access(42, false).hit);
  EXPECT_TRUE(shard.access(42, false).hit);
  EXPECT_TRUE(shard.access(42, true).hit);
}

TEST(CacheShard, DistinctLinesMissIndependently) {
  CacheShard shard(64 * 1024, 64, 4);
  for (std::uint64_t line = 0; line < 16; ++line) {
    EXPECT_FALSE(shard.access(line, false).hit) << line;
  }
  for (std::uint64_t line = 0; line < 16; ++line) {
    EXPECT_TRUE(shard.access(line, false).hit) << line;
  }
}

TEST(CacheShard, CapacityEvictionIsLru) {
  // 1 set x 4 ways: exactly four lines mapping to the same set fit.
  CacheShard shard(4 * 64, 64, 4);
  ASSERT_EQ(shard.num_sets(), 1u);
  // Fill the set; line 0 becomes least recently used.
  for (std::uint64_t line = 0; line < 4; ++line) shard.access(line, false);
  // Touch 1..3 so 0 stays LRU.
  for (std::uint64_t line = 1; line < 4; ++line) shard.access(line, false);
  shard.access(99, false);  // evicts line 0
  EXPECT_TRUE(shard.access(1, false).hit);
  EXPECT_TRUE(shard.access(2, false).hit);
  EXPECT_TRUE(shard.access(3, false).hit);
  EXPECT_FALSE(shard.access(0, false).hit);  // was evicted
}

TEST(CacheShard, DirtyEvictionReportsWriteback) {
  CacheShard shard(4 * 64, 64, 4);
  ASSERT_EQ(shard.num_sets(), 1u);
  shard.access(0, true);  // dirty
  for (std::uint64_t line = 1; line < 4; ++line) shard.access(line, false);
  bool saw_writeback = false;
  // Insert new lines until the dirty one is evicted.
  for (std::uint64_t line = 10; line < 20; ++line) {
    if (shard.access(line, false).writeback) saw_writeback = true;
  }
  EXPECT_TRUE(saw_writeback);
}

TEST(CacheShard, CleanEvictionHasNoWriteback) {
  CacheShard shard(4 * 64, 64, 4);
  for (std::uint64_t line = 0; line < 32; ++line) {
    EXPECT_FALSE(shard.access(line, false).writeback) << line;
  }
}

TEST(CacheShard, InvalidateDropsEverything) {
  CacheShard shard(64 * 1024, 64, 4);
  shard.access(7, false);
  ASSERT_TRUE(shard.access(7, false).hit);
  shard.invalidate_all();
  EXPECT_FALSE(shard.access(7, false).hit);
}

DeviceProfile tiny_profile() {
  DeviceProfile p = DeviceProfile::test_profile();
  p.l2_bytes = 16 * 1024;
  p.l2_line_bytes = 64;
  p.l2_ways = 4;
  return p;
}

TEST(L2Model, CountsHitsMissesAndFetch) {
  L2Model l2(tiny_profile(), 4);
  KernelCounters c;
  l2.access(0, 4, false, c);    // miss, fetch one line
  l2.access(4, 4, false, c);    // same line: hit
  l2.access(64, 4, false, c);   // next line: miss
  EXPECT_EQ(c.l2_misses, 2u);
  EXPECT_EQ(c.l2_hits, 1u);
  EXPECT_EQ(c.fetch_bytes, 2u * 64u);
  EXPECT_EQ(c.l2_hit_bytes, 4u);
}

TEST(L2Model, CrossLineAccessTouchesEveryCoveredLine) {
  L2Model l2(tiny_profile(), 4);
  KernelCounters c;
  l2.access(60, 8, false, c);  // spans lines 0 and 1
  EXPECT_EQ(c.l2_misses + c.l2_hits, 2u);
  EXPECT_EQ(c.l2_misses, 2u);
  EXPECT_EQ(c.fetch_bytes, 2u * 64u);
}

TEST(L2Model, HitPayloadSumsToCoalescedTraffic) {
  // 16 consecutive 4-byte probes over one line: 1 miss + 15 hits whose
  // payload sums to 60 bytes (the coalesced remainder of the line).
  L2Model l2(tiny_profile(), 4);
  KernelCounters c;
  for (unsigned i = 0; i < 16; ++i) l2.access(i * 4, 4, false, c);
  EXPECT_EQ(c.l2_misses, 1u);
  EXPECT_EQ(c.l2_hits, 15u);
  EXPECT_EQ(c.l2_hit_bytes, 60u);
}

TEST(L2Model, WorkingSetLargerThanCacheThrashes) {
  L2Model l2(tiny_profile(), 4);  // 16 KB total
  KernelCounters c;
  const std::uint64_t big = 1024 * 1024;  // 1 MB stream, twice
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < big; a += 64) l2.access(a, 4, false, c);
  }
  // Second pass cannot hit: every line was evicted long before reuse.
  EXPECT_EQ(c.l2_hits, 0u);
  EXPECT_EQ(c.l2_misses, 2u * big / 64);
}

TEST(L2Model, WorkingSetSmallerThanCacheIsResident) {
  L2Model l2(tiny_profile(), 4);  // 16 KB
  KernelCounters c;
  const std::uint64_t small = 4 * 1024;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < small; a += 64) l2.access(a, 4, false, c);
  }
  // First pass misses, later passes hit.
  EXPECT_EQ(c.l2_misses, small / 64);
  EXPECT_EQ(c.l2_hits, 2 * small / 64);
}

TEST(L2Model, ShardCountRoundsToPowerOfTwo) {
  L2Model l2(tiny_profile(), 5);
  EXPECT_EQ(l2.n_shards(), 4u);
  L2Model l2b(tiny_profile(), 64);
  EXPECT_EQ(l2b.n_shards(), 64u);
}

TEST(L2Model, InvalidateAllDropsResidency) {
  L2Model l2(tiny_profile(), 4);
  KernelCounters c;
  l2.access(128, 4, false, c);
  l2.invalidate_all();
  l2.access(128, 4, false, c);
  EXPECT_EQ(c.l2_misses, 2u);
}

TEST(KernelCounters, AggregationAndDerivedMetrics) {
  KernelCounters a, b;
  a.l2_hits = 3;
  a.l2_misses = 1;
  a.fetch_bytes = 128;
  b.l2_hits = 1;
  b.l2_misses = 3;
  b.fetch_bytes = 384;
  a += b;
  EXPECT_EQ(a.l2_hits, 4u);
  EXPECT_EQ(a.l2_misses, 4u);
  EXPECT_DOUBLE_EQ(a.l2_hit_pct(), 50.0);
  EXPECT_DOUBLE_EQ(a.fetch_kb(), 0.5);
}

TEST(KernelCounters, LaneEfficiencyDefaultsToOne) {
  KernelCounters c;
  EXPECT_DOUBLE_EQ(c.lane_efficiency(), 1.0);
  c.lane_slots = 128;
  c.active_lanes = 64;
  EXPECT_DOUBLE_EQ(c.lane_efficiency(), 0.5);
}

TEST(MemProbe, RecordsReadsWritesAndAtomics) {
  L2Model l2(tiny_profile(), 4);
  KernelCounters c;
  MemProbe probe(&l2, &c);
  probe.read(0, 4);
  probe.write(64, 8);
  probe.atomic_rmw(128, 4);
  EXPECT_EQ(c.mem_reads, 1u);
  EXPECT_EQ(c.mem_writes, 1u);
  EXPECT_EQ(c.atomics, 1u);
  EXPECT_EQ(c.bytes_read, 4u + 4u);      // read + atomic read side
  EXPECT_EQ(c.bytes_written, 8u + 4u);   // write + atomic write side
}

}  // namespace
}  // namespace xbfs::sim
