// Tests for the Graph500-specification validator: accepts real BFS trees
// (from the reference and from the simulated XBFS) and detects each class
// of corruption by the rule that covers it.
#include <gtest/gtest.h>

#include <deque>

#include "core/xbfs.h"
#include "graph/builder.h"
#include "graph/device_csr.h"
#include "graph/g500_validate.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs::graph {
namespace {

constexpr vid_t kNoParent = static_cast<vid_t>(-1);

/// Serial BFS building a parent tree.
std::vector<vid_t> reference_parents(const Csr& g, vid_t src) {
  std::vector<vid_t> parent(g.num_vertices(), kNoParent);
  std::deque<vid_t> queue{src};
  parent[src] = src;
  while (!queue.empty()) {
    const vid_t v = queue.front();
    queue.pop_front();
    for (vid_t w : g.neighbors(v)) {
      if (parent[w] == kNoParent) {
        parent[w] = v;
        queue.push_back(w);
      }
    }
  }
  return parent;
}

Csr diamond() {
  // 0-1, 0-2, 1-3, 2-3, 3-4 plus isolated 5.
  return build_csr(6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
}

TEST(G500Validate, AcceptsReferenceTree) {
  const Csr g = diamond();
  const auto parent = reference_parents(g, 0);
  EXPECT_TRUE(validate_graph500(g, 0, parent).empty())
      << validate_graph500(g, 0, parent);
}

TEST(G500Validate, LevelsFromParentsMatchBfs) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 31;
  const Csr g = rmat_csr(p);
  const auto giant = largest_component_vertices(g);
  const auto parent = reference_parents(g, giant[0]);
  const auto from_tree = levels_from_parents(g, giant[0], parent);
  EXPECT_EQ(from_tree, reference_bfs(g, giant[0]));
}

TEST(G500Validate, Rule5RootMustSelfParent) {
  const Csr g = diamond();
  auto parent = reference_parents(g, 0);
  parent[0] = 1;
  const std::string err = validate_graph500(g, 0, parent);
  EXPECT_NE(err.find("rule 5"), std::string::npos) << err;
}

TEST(G500Validate, Rule1CycleDetected) {
  const Csr g = diamond();
  auto parent = reference_parents(g, 0);
  // 1 and 3 parent each other: a cycle disconnected from the root.
  parent[1] = 3;
  parent[3] = 1;
  const std::string err = validate_graph500(g, 0, parent);
  EXPECT_NE(err.find("rule 1"), std::string::npos) << err;
}

TEST(G500Validate, Rule2NonEdgeParentDetected) {
  const Csr g = diamond();
  auto parent = reference_parents(g, 0);
  parent[4] = 0;  // (0,4) is not an edge
  const std::string err = validate_graph500(g, 0, parent);
  EXPECT_NE(err.find("rule 2"), std::string::npos) << err;
}

TEST(G500Validate, Rule2WrongDepthDetected) {
  const Csr g = diamond();
  auto parent = reference_parents(g, 0);
  // Parent 4 via 3 is correct, but reparent 3 via 4: tree edge spans -1.
  parent[3] = 4;
  parent[4] = 3;
  const std::string err = validate_graph500(g, 0, parent);
  EXPECT_FALSE(err.empty());
}

TEST(G500Validate, Rule4MissingVertexDetected) {
  const Csr g = diamond();
  auto parent = reference_parents(g, 0);
  parent[4] = kNoParent;  // reachable vertex left out of the tree
  const std::string err = validate_graph500(g, 0, parent);
  EXPECT_FALSE(err.empty());
}

TEST(G500Validate, Rule4PhantomVertexDetected) {
  const Csr g = diamond();
  auto parent = reference_parents(g, 0);
  parent[5] = 5;  // unreachable vertex claims tree membership
  const std::string err = validate_graph500(g, 0, parent);
  EXPECT_NE(err.find("rule"), std::string::npos) << err;
}

TEST(G500Validate, AcceptsXbfsParentTree) {
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 33;
  const Csr g = rmat_csr(p);
  const auto giant = largest_component_vertices(g);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  dev.warmup();
  auto dg = DeviceCsr::upload(dev, g);
  core::XbfsConfig cfg;
  cfg.build_parents = true;
  core::Xbfs bfs(dev, dg, cfg);
  for (vid_t src : {giant.front(), giant[giant.size() / 2]}) {
    const core::BfsResult r = bfs.run(src);
    const std::string err = validate_graph500(g, src, r.parent);
    EXPECT_TRUE(err.empty()) << "src " << src << ": " << err;
  }
}

TEST(G500Validate, AcceptsXbfsParentTreeWithLookaheadAndBottomUp) {
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 16;
  p.seed = 34;
  const Csr g = rmat_csr(p);
  const auto giant = largest_component_vertices(g);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  dev.warmup();
  auto dg = DeviceCsr::upload(dev, g);
  core::XbfsConfig cfg;
  cfg.build_parents = true;
  cfg.alpha = 0.02;  // aggressive bottom-up: exercises look-ahead parents
  core::Xbfs bfs(dev, dg, cfg);
  const core::BfsResult r = bfs.run(giant.front());
  const std::string err = validate_graph500(g, giant.front(), r.parent);
  EXPECT_TRUE(err.empty()) << err;
}

}  // namespace
}  // namespace xbfs::graph
