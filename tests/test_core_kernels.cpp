// Kernel-level tests for the XBFS building blocks, each validated against a
// host-side recomputation: status init, source seeding, single-scan
// generation, the bottom-up count/scan/queue-gen pipeline and both
// expansion kernels for a single level.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "core/kernels_bottomup.h"
#include "core/kernels_topdown.h"
#include "core/status.h"
#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs::core {
namespace {

using graph::vid_t;

struct KernelFixture : ::testing::Test {
  KernelFixture()
      : dev(sim::DeviceProfile::mi250x_gcd(), sim::SimOptions{.num_workers = 2}) {
    graph::RmatParams p;
    p.scale = 11;
    p.edge_factor = 8;
    p.seed = 77;
    host = graph::rmat_csr(p);
    dg = graph::DeviceCsr::upload(dev, host);
    cfg.block_threads = 128;
    buffers = BfsBuffers::allocate(
        dev, dg.n, 256,
        bu_scan_blocks(dev.profile(), (dg.n + 255) / 256, cfg.block_threads),
        /*with_parents=*/false, /*with_bins=*/true);
  }

  /// Set the status array host-side to `levels` (kUnvisited for -1).
  void set_status(const std::vector<std::int32_t>& levels) {
    for (vid_t v = 0; v < dg.n; ++v) {
      buffers.status.host_data()[v] =
          levels[v] < 0 ? kUnvisited : static_cast<std::uint32_t>(levels[v]);
    }
  }

  TopDownArgs topdown_args(sim::dspan<const vid_t> queue,
                           std::uint32_t queue_size, std::uint32_t level) {
    TopDownArgs a;
    a.offsets = dg.offsets_span();
    a.cols = dg.cols_span();
    a.status = buffers.status.span();
    a.queue = queue;
    a.queue_size = queue_size;
    a.next_queue = buffers.queue_b.span();
    a.counters = buffers.counters.span();
    a.edge_counters = buffers.edge_counters.span();
    a.cur_level = level;
    return a;
  }

  BottomUpArgs bottomup_args(std::uint32_t level) {
    BottomUpArgs a;
    a.offsets = dg.offsets_span();
    a.cols = dg.cols_span();
    a.status = buffers.status.span();
    a.bu_queue = buffers.bu_queue.span();
    a.next_queue = buffers.queue_b.span();
    a.pending_queue = buffers.pending_a.span();
    a.seg_counts = buffers.seg_counts.span();
    a.seg_offsets = buffers.seg_offsets.span();
    a.block_sums = buffers.block_sums.span();
    a.counters = buffers.counters.span();
    a.edge_counters = buffers.edge_counters.span();
    a.n = dg.n;
    a.num_segments = buffers.num_segments;
    a.segment_size = buffers.segment_size;
    a.cur_level = level;
    return a;
  }

  sim::Device dev;
  graph::Csr host;
  graph::DeviceCsr dg;
  XbfsConfig cfg;
  BfsBuffers buffers{};
};

TEST_F(KernelFixture, InitStatusFillsUnvisited) {
  std::fill(buffers.status.host_data(), buffers.status.host_data() + dg.n, 7u);
  launch_init_status(dev, dev.stream(0), buffers.status.span(), 128);
  for (vid_t v = 0; v < dg.n; ++v) {
    ASSERT_EQ(buffers.status.host_data()[v], kUnvisited) << v;
  }
}

TEST_F(KernelFixture, EnqueueSourceSeedsState) {
  launch_init_status(dev, dev.stream(0), buffers.status.span(), 128);
  launch_reset_counters(dev, dev.stream(0), buffers);
  launch_enqueue_source(dev, dev.stream(0), buffers, buffers.queue_a.span(),
                        42);
  EXPECT_EQ(buffers.status.host_data()[42], 0u);
  EXPECT_EQ(buffers.queue_a.host_data()[0], 42u);
  EXPECT_EQ(buffers.counters.host_data()[kCurTail], 1u);
}

TEST_F(KernelFixture, ResetCountersZeroesEverything) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    buffers.counters.host_data()[i] = 99;
  }
  buffers.edge_counters.host_data()[0] = 123;
  buffers.edge_counters.host_data()[1] = 456;
  launch_reset_counters(dev, dev.stream(0), buffers);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_EQ(buffers.counters.host_data()[i], 0u) << i;
  }
  EXPECT_EQ(buffers.edge_counters.host_data()[0], 0u);
  EXPECT_EQ(buffers.edge_counters.host_data()[1], 0u);
}

TEST_F(KernelFixture, SingleScanGenerateFindsExactlyTheLevel) {
  const auto giant = graph::largest_component_vertices(host);
  const auto levels = graph::reference_bfs(host, giant[0]);
  set_status(levels);
  launch_reset_counters(dev, dev.stream(0), buffers);
  const std::uint32_t target_level = 2;
  launch_singlescan_generate(dev, dev.stream(0), buffers.status.span(),
                             buffers.queue_a.span(), buffers.counters.span(),
                             target_level, cfg);
  std::set<vid_t> expected;
  for (vid_t v = 0; v < dg.n; ++v) {
    if (levels[v] == static_cast<std::int32_t>(target_level)) {
      expected.insert(v);
    }
  }
  const std::uint32_t count = buffers.counters.host_data()[kCurTail];
  ASSERT_EQ(count, expected.size());
  std::set<vid_t> got(buffers.queue_a.host_data(),
                      buffers.queue_a.host_data() + count);
  EXPECT_EQ(got, expected);  // no duplicates, no misses
}

TEST_F(KernelFixture, ScanFreeExpandClaimsExactlyTheNextLevel) {
  const auto giant = graph::largest_component_vertices(host);
  const vid_t src = giant[0];
  const auto ref = graph::reference_bfs(host, src);
  // State: levels <= 1 visited, rest unvisited; queue = level-1 vertices.
  std::vector<std::int32_t> cut(ref.size());
  std::vector<vid_t> frontier;
  for (vid_t v = 0; v < dg.n; ++v) {
    cut[v] = (ref[v] >= 0 && ref[v] <= 1) ? ref[v] : -1;
    if (ref[v] == 1) frontier.push_back(v);
  }
  set_status(cut);
  std::copy(frontier.begin(), frontier.end(), buffers.queue_a.host_data());
  launch_reset_counters(dev, dev.stream(0), buffers);
  const TopDownArgs a = topdown_args(
      buffers.queue_a.cspan(), static_cast<std::uint32_t>(frontier.size()), 1);
  launch_scanfree_expand(dev, dev.stream(0), a, cfg);

  std::uint64_t expected_next = 0, expected_edges = 0;
  for (vid_t v = 0; v < dg.n; ++v) {
    if (ref[v] == 2) {
      ++expected_next;
      expected_edges += host.degree(v);
      ASSERT_EQ(buffers.status.host_data()[v], 2u) << v;
    } else if (cut[v] < 0) {
      ASSERT_EQ(buffers.status.host_data()[v], kUnvisited) << v;
    }
  }
  EXPECT_EQ(buffers.counters.host_data()[kNextTail], expected_next);
  EXPECT_EQ(buffers.edge_counters.host_data()[kNextEdges], expected_edges);
  // Queue entries are exactly the level-2 set, no duplicates.
  std::set<vid_t> got(buffers.queue_b.host_data(),
                      buffers.queue_b.host_data() + expected_next);
  EXPECT_EQ(got.size(), expected_next);
  for (vid_t v : got) EXPECT_EQ(ref[v], 2);
}

TEST_F(KernelFixture, ScanFreeBalancingModesAgree) {
  const auto giant = graph::largest_component_vertices(host);
  const vid_t src = giant[0];
  const auto ref = graph::reference_bfs(host, src);
  std::vector<vid_t> frontier;
  for (vid_t v = 0; v < dg.n; ++v) {
    if (ref[v] == 1) frontier.push_back(v);
  }
  std::vector<std::uint32_t> results[3];
  const Balancing modes[3] = {Balancing::ThreadCentric,
                              Balancing::WavefrontCentric,
                              Balancing::DegreeBinned};
  for (int m = 0; m < 3; ++m) {
    std::vector<std::int32_t> cut(ref.size());
    for (vid_t v = 0; v < dg.n; ++v) {
      cut[v] = (ref[v] >= 0 && ref[v] <= 1) ? ref[v] : -1;
    }
    set_status(cut);
    std::copy(frontier.begin(), frontier.end(), buffers.queue_a.host_data());
    launch_reset_counters(dev, dev.stream(0), buffers);
    XbfsConfig c = cfg;
    c.topdown_balancing = modes[m];
    const TopDownArgs a = topdown_args(
        buffers.queue_a.cspan(), static_cast<std::uint32_t>(frontier.size()),
        1);
    launch_scanfree_expand(dev, dev.stream(0), a, c);
    results[m].assign(buffers.status.host_data(),
                      buffers.status.host_data() + dg.n);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST_F(KernelFixture, BottomUpPipelineBuildsSortedCandidateQueue) {
  // Random visited pattern; the pipeline must enumerate exactly the
  // unvisited vertices, globally sorted.
  std::mt19937_64 rng(5);
  std::vector<std::int32_t> levels(dg.n);
  for (vid_t v = 0; v < dg.n; ++v) levels[v] = (rng() & 3) == 0 ? 1 : -1;
  set_status(levels);
  launch_reset_counters(dev, dev.stream(0), buffers);
  const BottomUpArgs a = bottomup_args(1);
  launch_bu_count(dev, dev.stream(0), a, cfg);
  launch_bu_scan_block(dev, dev.stream(0), a, cfg);
  launch_bu_scan_final(dev, dev.stream(0), a, cfg);
  launch_bu_queue_gen(dev, dev.stream(0), a, cfg);

  std::vector<vid_t> expected;
  for (vid_t v = 0; v < dg.n; ++v) {
    if (levels[v] < 0) expected.push_back(v);
  }
  const std::uint32_t total = buffers.counters.host_data()[kCurTail];
  ASSERT_EQ(total, expected.size());
  const std::vector<vid_t> got(buffers.bu_queue.host_data(),
                               buffers.bu_queue.host_data() + total);
  EXPECT_EQ(got, expected);  // globally sorted, exactly the unvisited set
}

TEST_F(KernelFixture, BottomUpSegmentCountsMatchHost) {
  std::mt19937_64 rng(9);
  std::vector<std::int32_t> levels(dg.n);
  for (vid_t v = 0; v < dg.n; ++v) levels[v] = (rng() & 1) ? 2 : -1;
  set_status(levels);
  const BottomUpArgs a = bottomup_args(2);
  launch_bu_count(dev, dev.stream(0), a, cfg);
  for (std::uint32_t seg = 0; seg < a.num_segments; ++seg) {
    std::uint32_t expected = 0;
    const std::uint64_t begin = std::uint64_t{seg} * a.segment_size;
    const std::uint64_t end =
        std::min<std::uint64_t>(dg.n, begin + a.segment_size);
    for (std::uint64_t v = begin; v < end; ++v) {
      if (levels[v] < 0) ++expected;
    }
    ASSERT_EQ(buffers.seg_counts.host_data()[seg], expected) << seg;
  }
}

TEST_F(KernelFixture, BottomUpExpandMatchesHostOneLevel) {
  const auto giant = graph::largest_component_vertices(host);
  const vid_t src = giant[0];
  const auto ref = graph::reference_bfs(host, src);
  const std::uint32_t k = 1;  // expand into level 2 bottom-up
  std::vector<std::int32_t> cut(ref.size());
  for (vid_t v = 0; v < dg.n; ++v) {
    cut[v] = (ref[v] >= 0 && ref[v] <= static_cast<std::int32_t>(k))
                 ? ref[v]
                 : -1;
  }
  set_status(cut);
  launch_reset_counters(dev, dev.stream(0), buffers);
  XbfsConfig c = cfg;
  c.enable_lookahead = false;  // exact one-level semantics for this test
  const BottomUpArgs a = bottomup_args(k);
  launch_bu_count(dev, dev.stream(0), a, c);
  launch_bu_scan_block(dev, dev.stream(0), a, c);
  launch_bu_scan_final(dev, dev.stream(0), a, c);
  const std::uint32_t candidates = buffers.counters.host_data()[kCurTail];
  launch_bu_queue_gen(dev, dev.stream(0), a, c);
  launch_bu_expand(dev, dev.stream(0), a, candidates, c);

  std::uint64_t expected_next = 0;
  for (vid_t v = 0; v < dg.n; ++v) {
    if (ref[v] == static_cast<std::int32_t>(k + 1)) {
      ++expected_next;
      ASSERT_EQ(buffers.status.host_data()[v], k + 1) << v;
    } else if (cut[v] < 0) {
      ASSERT_EQ(buffers.status.host_data()[v], kUnvisited) << v;
    }
  }
  EXPECT_EQ(buffers.counters.host_data()[kNextTail], expected_next);
  EXPECT_EQ(buffers.counters.host_data()[kPendingTail], 0u);
}

TEST_F(KernelFixture, BottomUpLookaheadPromotesOnlyNextNextLevel) {
  const auto giant = graph::largest_component_vertices(host);
  const vid_t src = giant[0];
  const auto ref = graph::reference_bfs(host, src);
  const std::uint32_t k = 1;
  std::vector<std::int32_t> cut(ref.size());
  for (vid_t v = 0; v < dg.n; ++v) {
    cut[v] = (ref[v] >= 0 && ref[v] <= static_cast<std::int32_t>(k))
                 ? ref[v]
                 : -1;
  }
  set_status(cut);
  launch_reset_counters(dev, dev.stream(0), buffers);
  XbfsConfig c = cfg;
  c.enable_lookahead = true;
  const BottomUpArgs a = bottomup_args(k);
  launch_bu_count(dev, dev.stream(0), a, c);
  launch_bu_scan_block(dev, dev.stream(0), a, c);
  launch_bu_scan_final(dev, dev.stream(0), a, c);
  const std::uint32_t candidates = buffers.counters.host_data()[kCurTail];
  launch_bu_queue_gen(dev, dev.stream(0), a, c);
  launch_bu_expand(dev, dev.stream(0), a, candidates, c);

  // Every claimed status must match the true BFS level (look-ahead may
  // leave some level-(k+2) vertices unclaimed — that is allowed — but must
  // never claim a wrong level).
  std::uint32_t promoted = 0;
  for (vid_t v = 0; v < dg.n; ++v) {
    const std::uint32_t st = buffers.status.host_data()[v];
    if (cut[v] >= 0) continue;
    if (st == kUnvisited) continue;
    ASSERT_EQ(st, static_cast<std::uint32_t>(ref[v])) << v;
    if (st == k + 2) ++promoted;
  }
  EXPECT_EQ(buffers.counters.host_data()[kPendingTail], promoted);
  // Look-ahead must fire on this graph (dense RMAT core).
  EXPECT_GT(promoted, 0u);
}

TEST_F(KernelFixture, BottomUpWarpCentricAgreesWithThreadCentric) {
  const auto giant = graph::largest_component_vertices(host);
  const auto ref = graph::reference_bfs(host, giant[0]);
  std::vector<std::uint32_t> results[2];
  for (int m = 0; m < 2; ++m) {
    std::vector<std::int32_t> cut(ref.size());
    for (vid_t v = 0; v < dg.n; ++v) {
      cut[v] = (ref[v] >= 0 && ref[v] <= 1) ? ref[v] : -1;
    }
    set_status(cut);
    launch_reset_counters(dev, dev.stream(0), buffers);
    XbfsConfig c = cfg;
    c.enable_lookahead = false;
    c.bottomup_warp_centric = (m == 1);
    const BottomUpArgs a = bottomup_args(1);
    launch_bu_count(dev, dev.stream(0), a, c);
    launch_bu_scan_block(dev, dev.stream(0), a, c);
    launch_bu_scan_final(dev, dev.stream(0), a, c);
    const std::uint32_t candidates = buffers.counters.host_data()[kCurTail];
    launch_bu_queue_gen(dev, dev.stream(0), a, c);
    launch_bu_expand(dev, dev.stream(0), a, candidates, c);
    results[m].assign(buffers.status.host_data(),
                      buffers.status.host_data() + dg.n);
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST_F(KernelFixture, WarpCentricBottomUpWastesIssueSlots) {
  // The paper's Sec. IV-A observation, measurable in the model: at the
  // peak-ratio pass, early termination finds a parent within a probe or
  // two, so thread-centric lanes stay busy while warp-centric gather
  // issues a full 64-wide wavefront per vertex regardless.
  const auto giant = graph::largest_component_vertices(host);
  const auto ref = graph::reference_bfs(host, giant[0]);
  const std::int32_t k = 2;  // the frontier-mass peak on this RMAT
  double eff[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    std::vector<std::int32_t> cut(ref.size());
    for (vid_t v = 0; v < dg.n; ++v) {
      cut[v] = (ref[v] >= 0 && ref[v] <= k) ? ref[v] : -1;
    }
    set_status(cut);
    launch_reset_counters(dev, dev.stream(0), buffers);
    XbfsConfig c = cfg;
    c.bottomup_warp_centric = (m == 1);
    const BottomUpArgs a = bottomup_args(k);
    launch_bu_count(dev, dev.stream(0), a, c);
    launch_bu_scan_block(dev, dev.stream(0), a, c);
    launch_bu_scan_final(dev, dev.stream(0), a, c);
    const std::uint32_t candidates = buffers.counters.host_data()[kCurTail];
    launch_bu_queue_gen(dev, dev.stream(0), a, c);
    const sim::LaunchResult r =
        launch_bu_expand(dev, dev.stream(0), a, candidates, c);
    eff[m] = r.counters.lane_efficiency();
  }
  EXPECT_LT(eff[1], eff[0] * 0.8);
}

TEST_F(KernelFixture, ClassifyBinsPartitionsQueueByDegree) {
  const auto giant = graph::largest_component_vertices(host);
  const auto ref = graph::reference_bfs(host, giant[0]);
  std::vector<vid_t> frontier;
  for (vid_t v = 0; v < dg.n; ++v) {
    if (ref[v] == 2) frontier.push_back(v);
  }
  std::copy(frontier.begin(), frontier.end(), buffers.queue_a.host_data());
  launch_reset_counters(dev, dev.stream(0), buffers);
  const TopDownArgs a = topdown_args(
      buffers.queue_a.cspan(), static_cast<std::uint32_t>(frontier.size()), 2);
  launch_classify_bins(dev, dev.stream(0), a, buffers.bin_small.span(),
                       buffers.bin_medium.span(), buffers.bin_large.span(),
                       cfg);
  const std::uint32_t ns = buffers.counters.host_data()[kBinSmall];
  const std::uint32_t nm = buffers.counters.host_data()[kBinMedium];
  const std::uint32_t nl = buffers.counters.host_data()[kBinLarge];
  EXPECT_EQ(ns + nm + nl, frontier.size());
  for (std::uint32_t i = 0; i < ns; ++i) {
    EXPECT_LT(host.degree(buffers.bin_small.host_data()[i]),
              cfg.medium_min_degree);
  }
  for (std::uint32_t i = 0; i < nm; ++i) {
    const vid_t v = buffers.bin_medium.host_data()[i];
    EXPECT_GE(host.degree(v), cfg.medium_min_degree);
    EXPECT_LT(host.degree(v), cfg.large_min_degree);
  }
  for (std::uint32_t i = 0; i < nl; ++i) {
    EXPECT_GE(host.degree(buffers.bin_large.host_data()[i]),
              cfg.large_min_degree);
  }
}

TEST_F(KernelFixture, AppendQueueCopiesRange) {
  for (vid_t i = 0; i < 100; ++i) buffers.pending_a.host_data()[i] = i * 2;
  for (vid_t i = 0; i < 50; ++i) buffers.queue_b.host_data()[i] = 1000 + i;
  launch_append_queue(dev, dev.stream(0), buffers.pending_a.cspan(), 100,
                      buffers.queue_b.span(), 50, 128);
  for (vid_t i = 0; i < 50; ++i) {
    ASSERT_EQ(buffers.queue_b.host_data()[i], 1000 + i);
  }
  for (vid_t i = 0; i < 100; ++i) {
    ASSERT_EQ(buffers.queue_b.host_data()[50 + i], i * 2);
  }
}

}  // namespace
}  // namespace xbfs::core
