// Unit tests for wavefront collectives and intrinsics — the AMD-64-wide
// semantics the port depends on (maskless __any/__shfl, 64-bit ballots,
// __popcll, ballot-rank aggregation).
#include <gtest/gtest.h>

#include <array>

#include "hipsim/hipsim.h"

namespace xbfs::sim {
namespace {

TEST(Intrinsics, PopcllCountsBits) {
  EXPECT_EQ(popcll(0), 0u);
  EXPECT_EQ(popcll(~0ull), 64u);
  EXPECT_EQ(popcll(0x8000000000000001ull), 2u);
}

TEST(Intrinsics, FfsllIsOneBased) {
  EXPECT_EQ(ffsll(0), 0u);
  EXPECT_EQ(ffsll(1), 1u);
  EXPECT_EQ(ffsll(0x8000000000000000ull), 64u);
  EXPECT_EQ(ffsll(0b101000), 4u);
}

TEST(Intrinsics, LaneMaskLt) {
  EXPECT_EQ(lane_mask_lt(0), 0ull);
  EXPECT_EQ(lane_mask_lt(1), 1ull);
  EXPECT_EQ(lane_mask_lt(64), ~0ull);
  EXPECT_EQ(lane_mask_lt(8), 0xFFull);
}

TEST(Intrinsics, MaskRankIsExclusivePopcount) {
  const std::uint64_t mask = 0b10110010;
  EXPECT_EQ(mask_rank(mask, 1), 0u);
  EXPECT_EQ(mask_rank(mask, 4), 1u);
  EXPECT_EQ(mask_rank(mask, 5), 2u);
  EXPECT_EQ(mask_rank(mask, 7), 3u);
}

/// Run `f(wavefront)` inside a 1-block, 64-thread kernel on a fresh device.
template <typename F>
void with_wavefront(F&& f) {
  Device dev(DeviceProfile::test_profile(), SimOptions{.num_workers = 1});
  dev.launch("wf", LaunchConfig{.grid_blocks = 1, .block_threads = 64},
             [&](BlockCtx& blk) {
               blk.wavefronts([&](WavefrontCtx& wf, unsigned) { f(wf); });
             });
}

TEST(Wavefront, BallotCollectsPredicateMask) {
  with_wavefront([](WavefrontCtx& wf) {
    const std::uint64_t mask = wf.ballot([](unsigned l) { return l % 4 == 0; });
    EXPECT_EQ(popcll(mask), 16u);
    EXPECT_TRUE(mask & 1);
    EXPECT_FALSE(mask & 2);
  });
}

TEST(Wavefront, AnyAndAllMasklessForms) {
  with_wavefront([](WavefrontCtx& wf) {
    EXPECT_TRUE(wf.any([](unsigned l) { return l == 63; }));
    EXPECT_FALSE(wf.any([](unsigned) { return false; }));
    EXPECT_TRUE(wf.all([](unsigned) { return true; }));
    EXPECT_FALSE(wf.all([](unsigned l) { return l != 13; }));
  });
}

TEST(Wavefront, ShflBroadcastsFromSourceLane) {
  with_wavefront([](WavefrontCtx& wf) {
    const int v = wf.shfl([](unsigned l) { return static_cast<int>(l * 10); },
                          /*src=*/7);
    EXPECT_EQ(v, 70);
    // Source lane wraps modulo the wavefront width, as on hardware.
    const int w = wf.shfl([](unsigned l) { return static_cast<int>(l); }, 64);
    EXPECT_EQ(w, 0);
  });
}

TEST(Wavefront, ReduceAddSumsAllLanes) {
  with_wavefront([](WavefrontCtx& wf) {
    const std::uint64_t sum = wf.reduce_add<std::uint64_t>(
        [](unsigned l) { return std::uint64_t{l}; });
    EXPECT_EQ(sum, 63ull * 64 / 2);
  });
}

TEST(Wavefront, ExclusiveScanMatchesPrefixSums) {
  with_wavefront([](WavefrontCtx& wf) {
    std::array<std::uint32_t, 64> out{};
    const std::uint32_t total = wf.scan_exclusive<std::uint32_t>(
        [](unsigned l) { return l + 1; }, out);
    EXPECT_EQ(total, 64u * 65 / 2);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 1u);
    EXPECT_EQ(out[63], 63u * 64 / 2);
  });
}

TEST(Wavefront, LanesMaskedAccountsDivergence) {
  Device dev(DeviceProfile::test_profile(), SimOptions{.num_workers = 1});
  const LaunchResult r = dev.launch(
      "div", LaunchConfig{.grid_blocks = 1, .block_threads = 64},
      [&](BlockCtx& blk) {
        blk.wavefronts([&](WavefrontCtx& wf, unsigned) {
          int executed = 0;
          wf.lanes_masked(0xFFull, [&](unsigned) { ++executed; });
          EXPECT_EQ(executed, 8);
        });
      });
  // 64 issue slots were consumed but only 8 lanes were active.
  EXPECT_EQ(r.counters.lane_slots, 64u);
  EXPECT_EQ(r.counters.active_lanes, 8u);
  EXPECT_LT(r.counters.lane_efficiency(), 0.2);
}

TEST(Wavefront, AggregatedReserveHandsOutDisjointRanges) {
  Device dev(DeviceProfile::test_profile(), SimOptions{.num_workers = 4});
  auto tail = dev.alloc<std::uint32_t>(1);
  tail.host_data()[0] = 0;
  auto ts = tail.span();
  const LaunchResult r = dev.launch(
      "reserve", LaunchConfig{.grid_blocks = 16, .block_threads = 256},
      [=](BlockCtx& blk) {
        blk.wavefronts([&](WavefrontCtx& wf, unsigned) {
          const std::uint64_t mask = 0xFFFF;  // 16 lanes enqueue
          wf.aggregated_reserve(ts, mask);
        });
      });
  // 16 blocks x 4 wavefronts x 16 lanes, one atomic per wavefront.
  EXPECT_EQ(tail.host_data()[0], 16u * 4 * 16);
  EXPECT_EQ(r.counters.atomics, 16u * 4);
}

TEST(Wavefront, P6000ProfileUsesWarp32) {
  Device dev(DeviceProfile::p6000(), SimOptions{.num_workers = 1});
  dev.launch("warp", LaunchConfig{.grid_blocks = 1, .block_threads = 64},
             [&](BlockCtx& blk) {
               EXPECT_EQ(blk.wavefronts_per_block(), 2u);
               blk.wavefronts([&](WavefrontCtx& wf, unsigned) {
                 EXPECT_EQ(wf.size(), 32u);
               });
             });
}

}  // namespace
}  // namespace xbfs::sim
