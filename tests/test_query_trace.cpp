// Query-trace tests: the QueryTrace record itself (causal sequencing,
// absorb re-sequencing, JSON schema) and the serving integration — every
// terminal outcome carries a complete admission->terminal event chain with
// per-rung kernel-counter attribution, including failed queries, sweep
// members sharing a batch, and the SLO engine proactively degrading the
// starting rung.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/fault.h"
#include "json_mini.h"
#include "obs/slo.h"
#include "serve/server.h"

namespace xbfs::serve {
namespace {

graph::Csr toy_graph(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

ServeConfig manual_config() {
  ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.batch_window_ms = 0.0;
  cfg.retry_backoff_ms = 0.0;
  cfg.breaker_cooldown_ms = 0.1;
  return cfg;
}

std::vector<std::string> kinds_of(const obs::QueryTrace& t) {
  std::vector<std::string> out;
  for (const auto& e : t.events()) out.push_back(e.kind);
  return out;
}

class QueryTracing : public ::testing::Test {
 protected:
  void SetUp() override { sim::FaultInjector::global().disable(); }
  void TearDown() override { sim::FaultInjector::global().disable(); }
};

// --- the record itself -----------------------------------------------------

TEST(QueryTraceRecord, EventsAreCausallySequenced) {
  obs::QueryTrace t(7, 42);
  t.event(1.0, "admitted", "source=42");
  t.event(2.0, "dispatched");
  t.event(3.0, "resolved");
  const auto events = t.events();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);  // 0-based causal order
  }
  EXPECT_EQ(t.find_event("dispatched"), 1);
  EXPECT_EQ(t.find_event("missing"), -1);
}

TEST(QueryTraceRecord, AbsorbResequencesAfterOwnEvents) {
  obs::QueryTrace mine(1, 10);
  mine.event(1.0, "admitted");
  obs::QueryTrace batch(0, 10);
  batch.event(5.0, "attempt", "engine=sweep");
  obs::RungAttribution ra;
  ra.engine = "sweep";
  ra.outcome = "ok";
  ra.launches = 3;
  batch.rung(ra);

  mine.absorb(batch);
  const auto events = mine.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "admitted");
  EXPECT_EQ(events[1].kind, "attempt");
  EXPECT_EQ(events[1].seq, 1u);  // re-sequenced after ours
  ASSERT_EQ(mine.rungs().size(), 1u);
  EXPECT_EQ(mine.rungs()[0].launches, 3u);
}

TEST(QueryTraceRecord, JsonCarriesSchemaEventsAndRungs) {
  obs::QueryTrace t(9, 77);
  t.event(1.0, "admitted", "source=77");
  obs::RungAttribution ra;
  ra.engine = "xbfs";
  ra.outcome = "fault";
  ra.launches = 4;
  ra.fetch_bytes = 1024;
  t.rung(ra);

  const auto doc = testjson::parse(t.to_json("failed"));
  EXPECT_EQ(doc->at("schema").str, "xbfs-query-trace");
  EXPECT_EQ(doc->at("id").num, 9.0);
  EXPECT_EQ(doc->at("source").num, 77.0);
  EXPECT_EQ(doc->at("status").str, "failed");
  ASSERT_EQ(doc->at("events").size(), 1u);
  EXPECT_EQ(doc->at("events").at(0).at("kind").str, "admitted");
  ASSERT_EQ(doc->at("rungs").size(), 1u);
  EXPECT_EQ(doc->at("rungs").at(0).at("engine").str, "xbfs");
  EXPECT_EQ(doc->at("rungs").at(0).at("outcome").str, "fault");
  EXPECT_EQ(doc->at("rungs").at(0).at("launches").num, 4.0);
}

// --- serving integration ---------------------------------------------------

TEST_F(QueryTracing, CompletedQueryHasFullChainAndAttribution) {
  const graph::Csr g = toy_graph(9, 3);
  const auto giant = graph::largest_component_vertices(g);
  ASSERT_FALSE(giant.empty());

  Server server(g, manual_config());
  Admission a = server.submit(giant[0]);
  ASSERT_TRUE(a.accepted);
  server.dispatch_once();
  const QueryResult r = a.result.get();
  ASSERT_EQ(r.status, QueryStatus::Completed);
  ASSERT_NE(r.trace, nullptr);

  const auto kinds = kinds_of(*r.trace);
  ASSERT_GE(kinds.size(), 4u);
  EXPECT_EQ(kinds.front(), "admitted");
  EXPECT_NE(r.trace->find_event("dispatched"), -1);
  EXPECT_NE(r.trace->find_event("resolved"), -1);
  EXPECT_EQ(kinds.back(), "completed");

  const auto rungs = r.trace->rungs();
  ASSERT_GE(rungs.size(), 1u);
  EXPECT_EQ(rungs[0].outcome, "ok");
  EXPECT_GT(rungs[0].launches, 0u);       // the traversal ran on the device
  EXPECT_GT(rungs[0].fetch_bytes, 0u);    // and moved modelled memory
  EXPECT_GT(rungs[0].modelled_us, 0.0);

  // Cache hits get a trace too, with zero device attribution.
  Admission hit = server.submit(giant[0]);
  ASSERT_TRUE(hit.accepted);
  const QueryResult rh = hit.result.get();
  ASSERT_EQ(rh.status, QueryStatus::Completed);
  ASSERT_NE(rh.trace, nullptr);
  EXPECT_NE(rh.trace->find_event("cache_hit"), -1);
  EXPECT_TRUE(rh.trace->rungs().empty());
  server.shutdown();
}

TEST_F(QueryTracing, FailedQueryKeepsEveryRetryAndFaultedRung) {
  const graph::Csr g = toy_graph(9, 5);
  const auto giant = graph::largest_component_vertices(g);
  ASSERT_FALSE(giant.empty());

  sim::FaultConfig fc;
  fc.kernel_fault_rate = 1.0;  // every device attempt faults
  fc.seed = 3;
  sim::FaultInjector::global().configure(fc);

  ServeConfig cfg = manual_config();
  cfg.host_fallback = false;  // no terminal rescue: the query must fail
  cfg.max_attempts = 3;
  Server server(g, cfg);
  Admission a = server.submit(giant[0]);
  ASSERT_TRUE(a.accepted);
  server.dispatch_once();
  const QueryResult r = a.result.get();
  ASSERT_EQ(r.status, QueryStatus::Failed);
  ASSERT_NE(r.trace, nullptr);

  const auto kinds = kinds_of(*r.trace);
  EXPECT_EQ(kinds.front(), "admitted");
  EXPECT_EQ(kinds.back(), "failed");
  std::size_t attempts = 0, faults = 0;
  for (const auto& k : kinds) {
    attempts += k == "attempt";
    faults += k == "fault";
  }
  EXPECT_EQ(attempts, 3u);  // the whole budget, on record
  EXPECT_EQ(faults, 3u);
  EXPECT_NE(r.trace->find_event("exhausted"), -1);

  const auto rungs = r.trace->rungs();
  ASSERT_EQ(rungs.size(), 3u);
  for (const auto& ra : rungs) EXPECT_EQ(ra.outcome, "fault");
  server.shutdown();
}

TEST_F(QueryTracing, SweepMembersShareBatchAttribution) {
  const graph::Csr g = toy_graph(9, 7);
  const auto giant = graph::largest_component_vertices(g);
  ASSERT_GE(giant.size(), 4u);

  ServeConfig cfg = manual_config();
  cfg.min_sweep_sources = 2;  // force the 64-way sweep path
  Server server(g, cfg);
  std::vector<Admission> pending;
  for (std::size_t i = 0; i < 4; ++i) {
    pending.push_back(server.submit(giant[i]));
    ASSERT_TRUE(pending.back().accepted);
  }
  server.dispatch_once();

  for (auto& p : pending) {
    const QueryResult r = p.result.get();
    ASSERT_EQ(r.status, QueryStatus::Completed);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_EQ(*r.levels, graph::reference_bfs(g, r.source));
    // The sweep's shared attempt was absorbed into each member's trace,
    // annotated with how many queries shared the cost.
    const auto rungs = r.trace->rungs();
    ASSERT_GE(rungs.size(), 1u);
    bool swept = false;
    for (const auto& ra : rungs) {
      if (ra.engine == "sweep") {
        swept = true;
        EXPECT_EQ(ra.shared_members, 4u);
        EXPECT_GT(ra.launches, 0u);
      }
    }
    EXPECT_TRUE(swept);
  }
  server.shutdown();
}

TEST_F(QueryTracing, SloBudgetExhaustionDegradesTheStartingRung) {
  const graph::Csr g = toy_graph(9, 11);
  const auto giant = graph::largest_component_vertices(g);
  ASSERT_FALSE(giant.empty());

  obs::SloEngine& eng = obs::SloEngine::global();
  eng.configure("availability=0.999,window_ms=60000");
  ServeConfig cfg = manual_config();
  cfg.slo_scope = "trace-proactive-test";

  // Exhaust the scope's error budget before the server sees any traffic:
  // the ladder must start on the cheaper rung proactively.
  obs::SloScope& scope = eng.scope(cfg.slo_scope, cfg.num_gcds);
  for (int i = 0; i < 50; ++i) {
    scope.record(0, false, 0.0, obs::slo_now_ms());
  }
  ASSERT_TRUE(scope.prefer_cheap(obs::slo_now_ms()));

  Server server(g, cfg);
  QueryOptions qo;
  qo.bypass_cache = true;
  Admission a = server.submit(giant[0], qo);
  ASSERT_TRUE(a.accepted);
  server.dispatch_once();
  const QueryResult r = a.result.get();
  ASSERT_EQ(r.status, QueryStatus::Completed);
  EXPECT_EQ(*r.levels, graph::reference_bfs(g, r.source));
  ASSERT_NE(r.trace, nullptr);
  EXPECT_NE(r.trace->find_event("slo_degrade"), -1);
  EXPECT_EQ(r.engine, "simple-scan");  // rung 1, not the adaptive rung 0
  EXPECT_TRUE(r.degraded);

  const ServerStats st = server.stats();
  EXPECT_GE(st.slo_proactive_degrades, 1u);
  EXPECT_TRUE(st.slo.active);
  EXPECT_TRUE(st.slo.budget_exhausted);
  server.shutdown();
  eng.disable();
}

TEST_F(QueryTracing, TracingCanBeDisabledPerServer) {
  const graph::Csr g = toy_graph(9, 13);
  const auto giant = graph::largest_component_vertices(g);
  ASSERT_FALSE(giant.empty());

  ServeConfig cfg = manual_config();
  cfg.query_tracing = false;
  Server server(g, cfg);
  Admission a = server.submit(giant[0]);
  ASSERT_TRUE(a.accepted);
  server.dispatch_once();
  const QueryResult r = a.result.get();
  ASSERT_EQ(r.status, QueryStatus::Completed);
  EXPECT_EQ(r.trace, nullptr);
  EXPECT_EQ(server.stats().traced_queries, 0u);
  server.shutdown();
}

}  // namespace
}  // namespace xbfs::serve
