// Tests for the run-report layer: schema stability, env-var activation,
// per-level rows matching BfsResult::level_stats exactly, kernel
// aggregates, baseline/dist participation and GTEPS guarding.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <sstream>

#include "baseline/simple_scan.h"
#include "core/report.h"
#include "core/xbfs.h"
#include "dist/dist_bfs.h"
#include "graph/builder.h"
#include "graph/device_csr.h"
#include "hipsim/hipsim.h"
#include "json_mini.h"
#include "obs/run_report.h"

namespace xbfs {
namespace {

graph::Csr ring_graph(graph::vid_t n) {
  std::vector<graph::Edge> edges;
  for (graph::vid_t v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  return graph::build_csr(n, std::move(edges));
}

TEST(RunReport, EnvVarActivatesSession) {
  ::setenv("XBFS_RUN_REPORT", "/tmp/xbfs_report_env_test.json", 1);
  obs::ReportSession session;
  ::unsetenv("XBFS_RUN_REPORT");
  EXPECT_TRUE(session.enabled());
  EXPECT_EQ(session.output_path(), "/tmp/xbfs_report_env_test.json");

  obs::ReportSession off;
  EXPECT_FALSE(off.enabled());
}

TEST(RunReport, SchemaIsVersionedAndStable) {
  obs::RunRecord rec;
  rec.tool = "xbfs";
  rec.n = 10;
  rec.m = 20;
  rec.source = 3;
  rec.depth = 2;
  rec.total_ms = 1.5;
  rec.gteps = 0.013;
  rec.edges_traversed = 10;
  rec.config.emplace_back("alpha", "0.1");
  obs::ReportLevelRow row;
  row.level = 0;
  row.strategy = "scan-free";
  row.frontier = 1;
  rec.levels.push_back(row);
  obs::ReportKernelRow k;
  k.kernel = "xbfs_scanfree_expand";
  k.runtime_ms = 0.7;
  k.launches = 2;
  rec.kernels.push_back(k);

  std::ostringstream os;
  obs::write_run_report_json(os, {rec});
  const auto doc = testjson::parse(os.str());

  EXPECT_EQ(doc->at("schema").str, "xbfs-run-report");
  EXPECT_EQ(static_cast<int>(doc->at("version").num),
            obs::kRunReportVersion);
  const auto& run = doc->at("runs").at(0);
  EXPECT_EQ(run.at("tool").str, "xbfs");
  EXPECT_EQ(run.at("graph").at("n").num, 10.0);
  EXPECT_EQ(run.at("graph").at("m").num, 20.0);
  EXPECT_EQ(run.at("config").at("alpha").str, "0.1");
  EXPECT_EQ(run.at("levels").at(0).at("strategy").str, "scan-free");
  EXPECT_EQ(run.at("kernels").at(0).at("kernel").str,
            "xbfs_scanfree_expand");
  EXPECT_EQ(run.at("kernels").at(0).at("launches").num, 2.0);
}

TEST(RunReport, SessionContextStampsRecords) {
  obs::ReportSession session;
  session.enable();
  session.set_context("dataset", "TW");
  obs::RunRecord rec;
  rec.tool = "xbfs";
  session.add(rec);
  // A record carrying its own value for the key keeps it.
  obs::RunRecord rec2;
  rec2.tool = "xbfs";
  rec2.config.emplace_back("dataset", "explicit");
  session.add(rec2);

  const auto runs = session.snapshot();
  ASSERT_EQ(runs.size(), 2u);
  ASSERT_EQ(runs[0].config.size(), 1u);
  EXPECT_EQ(runs[0].config[0].first, "dataset");
  EXPECT_EQ(runs[0].config[0].second, "TW");
  ASSERT_EQ(runs[1].config.size(), 1u);
  EXPECT_EQ(runs[1].config[0].second, "explicit");
}

/// The acceptance-criterion invariant: run-report level rows mirror
/// BfsResult::level_stats field-for-field.
TEST(RunReport, XbfsRecordMatchesLevelStatsExactly) {
  obs::ReportSession& session = obs::ReportSession::global();
  session.clear();
  session.enable();

  const graph::Csr g = ring_graph(128);
  sim::Device dev(sim::DeviceProfile::test_profile(),
                  sim::SimOptions{.num_workers = 1});
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  const core::BfsResult r = bfs.run(0);

  const auto runs = session.snapshot();
  session.disable();
  session.clear();
  ASSERT_EQ(runs.size(), 1u);
  const obs::RunRecord& rec = runs[0];
  EXPECT_EQ(rec.tool, "xbfs");
  EXPECT_EQ(rec.n, g.num_vertices());
  EXPECT_EQ(rec.m, g.num_edges());
  EXPECT_EQ(rec.depth, r.depth);
  EXPECT_DOUBLE_EQ(rec.total_ms, r.total_ms);
  EXPECT_DOUBLE_EQ(rec.gteps, r.gteps);
  EXPECT_EQ(rec.edges_traversed, r.edges_traversed);

  ASSERT_EQ(rec.levels.size(), r.level_stats.size());
  for (std::size_t i = 0; i < rec.levels.size(); ++i) {
    const obs::ReportLevelRow& row = rec.levels[i];
    const core::LevelStats& st = r.level_stats[i];
    EXPECT_EQ(row.level, static_cast<std::int64_t>(st.level));
    EXPECT_EQ(row.strategy, core::strategy_name(st.strategy));
    EXPECT_EQ(row.nfg, st.skipped_generation);
    EXPECT_EQ(row.frontier, st.frontier_count);
    EXPECT_EQ(row.edges, st.frontier_edges);
    EXPECT_DOUBLE_EQ(row.ratio, st.ratio);
    EXPECT_DOUBLE_EQ(row.time_ms, st.time_ms);
    EXPECT_DOUBLE_EQ(row.fetch_kb, st.fetch_kb);
    EXPECT_EQ(row.kernels, st.kernels);
  }

  // Kernel aggregates cover this run's launches and carry real time.
  ASSERT_FALSE(rec.kernels.empty());
  std::uint64_t launches = 0;
  for (const auto& k : rec.kernels) launches += k.launches;
  EXPECT_GT(launches, 0u);
}

TEST(RunReport, BaselineAndDistAddRecords) {
  obs::ReportSession& session = obs::ReportSession::global();
  session.clear();
  session.enable();

  const graph::Csr g = ring_graph(64);
  {
    sim::Device dev(sim::DeviceProfile::test_profile(),
                    sim::SimOptions{.num_workers = 1});
    auto dg = graph::DeviceCsr::upload(dev, g);
    baseline::SimpleScanBfs scan(dev, dg);
    scan.run(0);
  }
  {
    dist::DistConfig dc;
    dc.gcds = 2;
    dc.device_options.num_workers = 1;
    dist::DistBfs dbfs(g, dc);
    dbfs.run(0);
  }

  const auto runs = session.snapshot();
  session.disable();
  session.clear();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].tool, "simple_scan");
  EXPECT_EQ(runs[1].tool, "dist_bfs");
  ASSERT_FALSE(runs[1].levels.empty());
  EXPECT_TRUE(runs[1].levels[0].has_comm);
  // Dist rows split level time into local vs comm.
  for (const auto& row : runs[1].levels) {
    EXPECT_NEAR(row.time_ms, row.local_ms + row.comm_ms, 1e-9);
  }
}

TEST(RunReport, GtepsGuardsTrivialRuns) {
  EXPECT_DOUBLE_EQ(core::safe_gteps(100, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(core::safe_gteps(100, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(core::safe_gteps(0, 0.0), 0.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(core::safe_gteps(100, inf), 0.0);
  EXPECT_DOUBLE_EQ(core::safe_gteps(2'000'000, 2.0), 1.0);

  // A single-vertex graph must report finite numbers end to end.
  const graph::Csr g = graph::build_csr(1, {});
  sim::Device dev(sim::DeviceProfile::test_profile(),
                  sim::SimOptions{.num_workers = 1});
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  const core::BfsResult r = bfs.run(0);
  EXPECT_TRUE(std::isfinite(r.gteps));
}

}  // namespace
}  // namespace xbfs
