// ShardRouter tests: scatter-gather serving over a partitioned store —
// admission/caching/backpressure mirrored from the single-graph server,
// plus the behaviours only a sharded tier has: re-shard cache
// invalidation, reroute-around-dead-replica, and partial degradation when
// a whole replica group is lost.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/g500_validate.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/fault.h"
#include "shard/router.h"
#include "shard/sharded_store.h"

namespace xbfs::shard {
namespace {

graph::Csr toy_graph(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

ShardStoreConfig store_cfg(unsigned shards, unsigned replicas = 1) {
  ShardStoreConfig cfg;
  cfg.shards = shards;
  cfg.replicas = replicas;
  cfg.device_options.num_workers = 1;
  return cfg;
}

/// Manual dispatch + zero backoff: tests drive cycles explicitly and run
/// in milliseconds even when every attempt fails.
RouterConfig manual_cfg() {
  RouterConfig cfg;
  cfg.manual_dispatch = true;
  cfg.retry_backoff_ms = 0.0;
  cfg.breaker_cooldown_ms = 0.1;
  return cfg;
}

serve::QueryResult run_one(ShardRouter& router, graph::vid_t src,
                           serve::QueryOptions qo = {}) {
  serve::Admission a = router.submit(src, qo);
  EXPECT_TRUE(a.accepted) << a.status.to_string();
  router.dispatch_once();
  return a.result.get();
}

/// Tests own the process-wide injector and always hand it back disabled.
class ShardRouterTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::FaultInjector::global().disable(); }
  void TearDown() override { sim::FaultInjector::global().disable(); }
};

TEST_F(ShardRouterTest, ServesReferenceCorrectLevels) {
  const graph::Csr g = toy_graph(10, 21);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(4));
  ShardRouter router(store, manual_cfg());

  for (std::size_t i = 0; i < 4; ++i) {
    const serve::QueryResult r = run_one(router, giant[i]);
    ASSERT_EQ(r.status, serve::QueryStatus::Completed) << r.error.to_string();
    EXPECT_EQ(*r.levels, graph::reference_bfs(g, giant[i]));
    EXPECT_EQ(r.shards, 4u);
    EXPECT_EQ(r.shards_lost, 0u);
    EXPECT_FALSE(r.partial);
    EXPECT_EQ(r.engine, "shard-sweep");
    EXPECT_EQ(r.attempts, 1u);
  }
  const RouterStats st = router.stats();
  EXPECT_EQ(st.completed, 4u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.levels_swept, 0u);
  EXPECT_GT(st.exchange_wire_bytes, 0u);
  EXPECT_GE(st.compression_ratio, 0.5);
  router.shutdown();
}

TEST_F(ShardRouterTest, ThreadedWorkersDrainEverything) {
  const graph::Csr g = toy_graph(9, 22);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(2, 2));
  RouterConfig cfg;
  cfg.workers = 2;
  ShardRouter router(store, cfg);

  std::vector<serve::Admission> pending;
  for (std::size_t i = 0; i < 12; ++i) {
    serve::QueryOptions qo;
    qo.bypass_cache = (i % 2 == 0);
    serve::Admission a = router.submit(giant[i % giant.size()], qo);
    ASSERT_TRUE(a.accepted);
    pending.push_back(std::move(a));
  }
  router.drain();
  for (auto& a : pending) {
    const serve::QueryResult r = a.result.get();
    ASSERT_EQ(r.status, serve::QueryStatus::Completed) << r.error.to_string();
    EXPECT_EQ(*r.levels, graph::reference_bfs(g, r.source));
  }
  router.shutdown();
}

TEST_F(ShardRouterTest, SecondQuerySameSourceHitsTheCache) {
  const graph::Csr g = toy_graph(9, 23);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(2));
  ShardRouter router(store, manual_cfg());

  const serve::QueryResult cold = run_one(router, giant[0]);
  ASSERT_EQ(cold.status, serve::QueryStatus::Completed);
  EXPECT_FALSE(cold.cache_hit);

  serve::Admission a = router.submit(giant[0]);
  ASSERT_TRUE(a.accepted);
  const serve::QueryResult hot = a.result.get();  // resolves without dispatch
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_EQ(hot.levels, cold.levels);  // same shared object, not a copy
  EXPECT_EQ(hot.shards, 2u);
  EXPECT_EQ(router.stats().cache_hits, 1u);
  router.shutdown();
}

TEST_F(ShardRouterTest, ReshardChangesTheServingFingerprint) {
  // The cache key is fingerprint ⊕ layout: the same graph sharded two ways
  // must not share cached results, and a same-shaped rebuild must.
  const graph::Csr g = toy_graph(9, 24);
  ShardedStore s4(g, store_cfg(4));
  ShardedStore s8(g, store_cfg(8));
  ShardedStore s4b(g, store_cfg(4));
  ShardRouter r4(s4, manual_cfg());
  ShardRouter r8(s8, manual_cfg());
  ShardRouter r4b(s4b, manual_cfg());
  EXPECT_NE(r4.serving_fingerprint(), r8.serving_fingerprint());
  EXPECT_EQ(r4.serving_fingerprint(), r4b.serving_fingerprint());
  // And both differ from the bare graph fingerprint (the unsharded tier).
  EXPECT_NE(r4.serving_fingerprint(), g.fingerprint());
  r4.shutdown();
  r8.shutdown();
  r4b.shutdown();
}

TEST_F(ShardRouterTest, InvalidSourceAndBackpressureAreRejected) {
  const graph::Csr g = toy_graph(8, 25);
  ShardedStore store(g, store_cfg(2));
  RouterConfig cfg = manual_cfg();
  cfg.queue_capacity = 2;
  cfg.cache_capacity = 0;  // no cache fast-path interference
  ShardRouter router(store, cfg);

  serve::Admission bad = router.submit(g.num_vertices() + 5);
  EXPECT_FALSE(bad.accepted);
  EXPECT_EQ(bad.status.code(), StatusCode::InvalidArgument);

  ASSERT_TRUE(router.submit(0).accepted);
  ASSERT_TRUE(router.submit(1).accepted);
  serve::Admission full = router.submit(2);
  EXPECT_FALSE(full.accepted);
  EXPECT_EQ(full.status.code(), StatusCode::QueueFull);

  const RouterStats st = router.stats();
  EXPECT_EQ(st.rejected_invalid, 1u);
  EXPECT_EQ(st.rejected_full, 1u);
  router.dispatch_once();
  router.shutdown();
  EXPECT_FALSE(router.submit(0).accepted);
  EXPECT_EQ(router.stats().rejected_shutdown, 1u);
}

TEST_F(ShardRouterTest, KilledReplicaReroutesWithoutFailing) {
  const graph::Csr g = toy_graph(10, 26);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(2, 2));
  ShardRouter router(store, manual_cfg());

  store.kill_replica(0, 0);  // preferred replica of shard 0 for even ids
  for (std::size_t i = 0; i < 4; ++i) {
    const serve::QueryResult r = run_one(router, giant[i]);
    ASSERT_EQ(r.status, serve::QueryStatus::Completed) << r.error.to_string();
    EXPECT_EQ(*r.levels, graph::reference_bfs(g, r.source));
    EXPECT_FALSE(r.partial);
  }
  const RouterStats st = router.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.rerouted, 0u);
  EXPECT_EQ(st.partial_queries, 0u);
  router.shutdown();
}

TEST_F(ShardRouterTest, WholeReplicaGroupLostDegradesToPartial) {
  const graph::Csr g = toy_graph(10, 27);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(4));
  ShardRouter router(store, manual_cfg());

  const graph::vid_t src = giant.front();
  const unsigned owner = store.layout().owner(src);
  const unsigned lost = owner == 3 ? 0 : 3;
  store.kill_replica(lost, 0);  // replicas=1: the whole group is gone

  serve::QueryOptions qo;
  qo.bypass_cache = true;
  const serve::QueryResult r = run_one(router, src, qo);
  ASSERT_EQ(r.status, serve::QueryStatus::Completed) << r.error.to_string();
  EXPECT_TRUE(r.partial);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.shards_lost, 1u);
  EXPECT_FALSE(r.error.ok());  // Unavailable detail rides along
  EXPECT_EQ(r.error.code(), StatusCode::Unavailable);
  // Live ranges are exact; the lost range is all unreached.
  const auto ref = graph::reference_bfs(g, src);
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (store.layout().owner(v) == lost) {
      ASSERT_EQ((*r.levels)[v], -1);
    }
  }
  ASSERT_EQ((*r.levels)[src], 0);

  const RouterStats st = router.stats();
  EXPECT_EQ(st.partial_queries, 1u);
  EXPECT_GT(st.lost_shard_events, 0u);
  EXPECT_EQ(st.failed, 0u);

  // Partial results are never published: a resubmit after revival must
  // produce the full result, not replay the degraded one.
  store.revive_replica(lost, 0);
  const serve::QueryResult full = run_one(router, src);
  ASSERT_EQ(full.status, serve::QueryStatus::Completed);
  EXPECT_FALSE(full.cache_hit);
  EXPECT_FALSE(full.partial);
  EXPECT_EQ(*full.levels, ref);
  router.shutdown();
}

TEST_F(ShardRouterTest, PartialDisallowedFailsUnavailable) {
  const graph::Csr g = toy_graph(9, 28);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(4));
  RouterConfig cfg = manual_cfg();
  cfg.allow_partial = false;
  ShardRouter router(store, cfg);

  const graph::vid_t src = giant.front();
  const unsigned lost = store.layout().owner(src) == 3 ? 0 : 3;
  store.kill_replica(lost, 0);

  const serve::QueryResult r = run_one(router, src);
  EXPECT_EQ(r.status, serve::QueryStatus::Failed);
  EXPECT_EQ(r.error.code(), StatusCode::Unavailable);
  EXPECT_EQ(router.stats().unavailable_failures, 1u);
  router.shutdown();
}

TEST_F(ShardRouterTest, LostSourceShardFailsUnavailable) {
  const graph::Csr g = toy_graph(9, 29);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(4));
  ShardRouter router(store, manual_cfg());

  const graph::vid_t src = giant.front();
  store.kill_replica(store.layout().owner(src), 0);

  const serve::QueryResult r = run_one(router, src);
  EXPECT_EQ(r.status, serve::QueryStatus::Failed);
  EXPECT_EQ(r.error.code(), StatusCode::Unavailable);
  EXPECT_FALSE(r.levels);
  router.shutdown();
}

TEST_F(ShardRouterTest, ExpiredQueriesResolveWithoutASweep) {
  const graph::Csr g = toy_graph(8, 30);
  ShardedStore store(g, store_cfg(2));
  ShardRouter router(store, manual_cfg());

  serve::QueryOptions qo;
  qo.timeout_ms = 1e-6;  // already past the deadline by dispatch time
  qo.bypass_cache = true;
  serve::Admission a = router.submit(0, qo);
  ASSERT_TRUE(a.accepted);
  router.dispatch_once();
  const serve::QueryResult r = a.result.get();
  EXPECT_EQ(r.status, serve::QueryStatus::Expired);
  EXPECT_FALSE(r.levels);
  const RouterStats st = router.stats();
  EXPECT_EQ(st.expired, 1u);
  EXPECT_EQ(st.sweeps, 0u);
  router.shutdown();
}

// --- chaos: injected faults against the sharded tier -------------------------

class ShardChaos : public ShardRouterTest {
 protected:
  static void inject(double kernel, double memcpy, std::uint64_t seed) {
    sim::FaultConfig fc;
    fc.kernel_fault_rate = kernel;
    fc.memcpy_corruption_rate = memcpy;
    fc.seed = seed;
    sim::FaultInjector::global().configure(fc);
  }
};

TEST_F(ShardChaos, KernelFaultsRerouteToSiblingReplicasAndValidate) {
  const graph::Csr g = toy_graph(9, 31);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(2, 2));
  RouterConfig cfg = manual_cfg();
  // A sweep makes O(levels * shards) launches, so the per-launch rate must
  // stay low for "most attempts succeed" to hold; 1% still faults roughly
  // every other sweep here.
  cfg.max_attempts = 6;
  inject(/*kernel=*/0.01, /*memcpy=*/0.0, /*seed=*/51);
  ShardRouter router(store, cfg);

  std::vector<serve::Admission> pending;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < 6; ++i) {
      serve::QueryOptions qo;
      qo.bypass_cache = true;  // fresh fault draws every cycle
      serve::Admission a = router.submit(giant[i], qo);
      ASSERT_TRUE(a.accepted);
      pending.push_back(std::move(a));
    }
    router.dispatch_once();
  }
  for (auto& a : pending) {
    const serve::QueryResult r = a.result.get();
    ASSERT_EQ(r.status, serve::QueryStatus::Completed) << r.error.to_string();
    EXPECT_EQ(*r.levels, graph::reference_bfs(g, r.source));
    EXPECT_TRUE(
        graph::validate_levels_graph500(g, r.source, *r.levels).empty());
    EXPECT_TRUE(r.validated);  // Auto validation is active under injection
    EXPECT_FALSE(r.partial);
  }
  const RouterStats st = router.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.faults_seen, 0u);
  EXPECT_GT(st.retries, 0u);
  router.shutdown();
}

TEST_F(ShardChaos, CorruptedTransfersAreCaughtByValidationAndRetried) {
  const graph::Csr g = toy_graph(9, 32);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(2, 2));
  RouterConfig cfg = manual_cfg();
  cfg.max_attempts = 8;
  inject(/*kernel=*/0.0, /*memcpy=*/0.05, /*seed=*/52);
  ShardRouter router(store, cfg);

  unsigned completed = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    serve::QueryOptions qo;
    qo.bypass_cache = true;
    const serve::QueryResult r = run_one(router, giant[i], qo);
    if (r.status != serve::QueryStatus::Completed) continue;  // exhausted
    ++completed;
    EXPECT_EQ(*r.levels, graph::reference_bfs(g, r.source));
    EXPECT_TRUE(r.validated);
  }
  EXPECT_GT(completed, 0u);
  const RouterStats st = router.stats();
  // Either validation tripped (corruption surfaced on a shard copy) or no
  // corrupting draw hit a levels transfer; the former is the interesting
  // path and this seed/rate makes it overwhelmingly likely.
  EXPECT_GT(st.validation_failures + st.faults_seen, 0u);
  EXPECT_EQ(st.completed, completed);
  router.shutdown();
}

TEST_F(ShardChaos, CertainFaultsExhaustAttemptsAndFailCleanly) {
  const graph::Csr g = toy_graph(8, 33);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(2));
  RouterConfig cfg = manual_cfg();
  cfg.max_attempts = 2;
  inject(/*kernel=*/1.0, /*memcpy=*/0.0, /*seed=*/53);
  ShardRouter router(store, cfg);

  const serve::QueryResult r = run_one(router, giant[0]);
  EXPECT_EQ(r.status, serve::QueryStatus::Failed);
  const StatusCode c = r.error.code();
  EXPECT_TRUE(c == StatusCode::FaultInjected || c == StatusCode::Unavailable)
      << r.error.to_string();
  const RouterStats st = router.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_GT(st.faults_seen, 0u);
  router.shutdown();
}

TEST_F(ShardChaos, RepeatedFaultsOpenTheSlotBreaker) {
  const graph::Csr g = toy_graph(8, 34);
  const auto giant = graph::largest_component_vertices(g);
  ShardedStore store(g, store_cfg(2, 2));
  RouterConfig cfg = manual_cfg();
  cfg.breaker_failure_threshold = 2;
  cfg.breaker_cooldown_ms = 1e9;  // stays open for the whole test
  cfg.max_attempts = 4;
  inject(/*kernel=*/1.0, /*memcpy=*/0.0, /*seed=*/54);
  ShardRouter router(store, cfg);

  for (int i = 0; i < 4; ++i) {
    serve::QueryOptions qo;
    qo.bypass_cache = true;
    (void)run_one(router, giant[0], qo);
  }
  const RouterStats st = router.stats();
  EXPECT_GT(st.breaker_opens, 0u);
  bool any_open = false;
  for (unsigned s = 0; s < store.shards(); ++s) {
    for (unsigned rep = 0; rep < store.replicas(); ++rep) {
      any_open |= router.breaker_state(s, rep) == serve::BreakerState::Open;
    }
  }
  EXPECT_TRUE(any_open);
  router.shutdown();
}

}  // namespace
}  // namespace xbfs::shard
