// AlgorithmEngine vocabulary + EngineRegistry tests, and the cross-engine
// conformance suite: every engine registered for a kind — device rungs,
// negative-rung baselines, and host oracles alike — must produce the
// canonical answer for that kind on a shared graph, which is the property
// that lets the serving ladder degrade between rungs without clients
// seeing anything but latency.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algos/engines.h"
#include "core/algorithm_engine.h"
#include "core/engine_registry.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/device.h"

namespace xbfs {
namespace {

using core::AlgoKind;
using core::AlgoParams;
using core::AlgoQuery;
using core::AlgoResult;
using core::EngineContext;
using core::EngineInfo;
using core::EngineRegistry;

graph::Csr toy_graph(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

// --- vocabulary -------------------------------------------------------------

TEST(AlgoKind_, NamesRoundTripThroughParse) {
  for (std::size_t i = 0; i < core::kNumAlgoKinds; ++i) {
    const AlgoKind k = static_cast<AlgoKind>(i);
    const char* name = core::algo_kind_name(k);
    ASSERT_NE(name, nullptr);
    AlgoKind back = AlgoKind::Bfs;
    EXPECT_TRUE(core::algo_kind_parse(name, back)) << name;
    EXPECT_EQ(back, k) << name;
  }
  AlgoKind sink = AlgoKind::Sssp;
  EXPECT_FALSE(core::algo_kind_parse("pagerank", sink));
  EXPECT_EQ(sink, AlgoKind::Sssp);  // failed parse leaves out untouched
}

TEST(AlgoKind_, SourceRootedKinds) {
  EXPECT_TRUE(core::algo_needs_source(AlgoKind::Bfs));
  EXPECT_TRUE(core::algo_needs_source(AlgoKind::Sssp));
  EXPECT_TRUE(core::algo_needs_source(AlgoKind::Bc));
  EXPECT_FALSE(core::algo_needs_source(AlgoKind::Cc));
  EXPECT_FALSE(core::algo_needs_source(AlgoKind::KCore));
  EXPECT_FALSE(core::algo_needs_source(AlgoKind::Scc));
}

TEST(AlgoParams_, HashSaltsEveryAnswerAffectingField) {
  const AlgoParams base;
  std::set<std::uint64_t> hashes{base.hash()};
  AlgoParams p = base;
  p.max_weight = 16;
  EXPECT_TRUE(hashes.insert(p.hash()).second) << "max_weight not mixed";
  p = base;
  p.weight_seed = 2;
  EXPECT_TRUE(hashes.insert(p.hash()).second) << "weight_seed not mixed";
  p = base;
  p.delta = 4;
  EXPECT_TRUE(hashes.insert(p.hash()).second) << "delta not mixed";
  p = base;
  p.k = 3;
  EXPECT_TRUE(hashes.insert(p.hash()).second) << "k not mixed";
}

TEST(AlgoParams_, HashIsStableAndEqualityConsistent) {
  AlgoParams a, b;
  a.weight_seed = b.weight_seed = 7;
  a.k = b.k = 2;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), a.hash());  // stable across calls
}

TEST(ResultPayload_, BoolAndSizeFollowTheSetVector) {
  core::ResultPayload p;
  EXPECT_FALSE(static_cast<bool>(p));
  EXPECT_EQ(p.size(), 0u);

  p.kind = AlgoKind::Sssp;
  p.distances = std::make_shared<const std::vector<std::uint32_t>>(
      std::vector<std::uint32_t>{0, 3, 7});
  EXPECT_TRUE(static_cast<bool>(p));
  EXPECT_EQ(p.size(), 3u);

  core::ResultPayload c;
  c.kind = AlgoKind::Cc;
  c.components = std::make_shared<const std::vector<graph::vid_t>>(
      std::vector<graph::vid_t>{0, 0});
  EXPECT_TRUE(static_cast<bool>(c));
  EXPECT_EQ(c.size(), 2u);
}

// --- registry ---------------------------------------------------------------

TEST(EngineRegistry_, BuiltinsCoverEveryKind) {
  algos::register_builtin_engines();
  EngineRegistry& reg = EngineRegistry::global();
  for (std::size_t i = 0; i < core::kNumAlgoKinds; ++i) {
    EXPECT_TRUE(reg.supports(static_cast<AlgoKind>(i)))
        << core::algo_kind_name(static_cast<AlgoKind>(i));
  }
  // Idempotent: re-registering does not duplicate rows.
  const std::size_t rows = reg.list().size();
  algos::register_builtin_engines();
  EXPECT_EQ(reg.list().size(), rows);
}

TEST(EngineRegistry_, UnknownNameBuildsNull) {
  algos::register_builtin_engines();
  const EngineContext empty;
  EXPECT_EQ(EngineRegistry::global().build(AlgoKind::Bfs, "no-such-engine",
                                           empty),
            nullptr);
}

TEST(EngineRegistry_, DeviceFactoriesDeclineHostOnlyContext) {
  algos::register_builtin_engines();
  const graph::Csr g = toy_graph(8, 5);
  EngineContext host_only;
  host_only.host_g = &g;

  EngineRegistry& reg = EngineRegistry::global();
  for (std::size_t i = 0; i < core::kNumAlgoKinds; ++i) {
    const AlgoKind k = static_cast<AlgoKind>(i);
    // No device => no device ladder...
    EXPECT_TRUE(reg.build_ladder(k, host_only).empty())
        << core::algo_kind_name(k);
    // ...but the host oracle still builds, and is really host-side.
    auto host = reg.build_host(k, host_only);
    ASSERT_NE(host, nullptr) << core::algo_kind_name(k);
    EXPECT_EQ(host->kind(), k);
    EXPECT_FALSE(host->capabilities().on_device) << host->name();
  }
}

TEST(EngineRegistry_, LaddersAreOnDeviceAndRungOrdered) {
  algos::register_builtin_engines();
  const graph::Csr g = toy_graph(8, 5);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd());
  auto dg = graph::DeviceCsr::upload(dev, g);
  EngineContext ctx;
  ctx.dev = &dev;
  ctx.dg = &dg;
  ctx.host_g = &g;

  EngineRegistry& reg = EngineRegistry::global();
  for (std::size_t i = 0; i < core::kNumAlgoKinds; ++i) {
    const AlgoKind k = static_cast<AlgoKind>(i);
    const auto ladder = reg.build_ladder(k, ctx);
    ASSERT_FALSE(ladder.empty()) << core::algo_kind_name(k);
    for (const auto& eng : ladder) {
      EXPECT_EQ(eng->kind(), k);
      EXPECT_TRUE(eng->capabilities().on_device) << eng->name();
    }
  }
  // list() is kind-major, rung-ordered within a kind, and never includes
  // a negative rung in any ladder (those are conformance/direct-build only).
  const std::vector<EngineInfo> rows = reg.list();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i - 1].kind == rows[i].kind) {
      EXPECT_LE(rows[i - 1].rung, rows[i].rung);
    }
  }
}

TEST(EngineRegistry_, RegisterReplacesSameKindAndName) {
  // A private registry: same (kind, name) re-registration wins latest.
  class Stub final : public core::AlgorithmEngine {
   public:
    explicit Stub(std::uint32_t depth) : depth_(depth) {}
    AlgoKind kind() const override { return AlgoKind::Bfs; }
    AlgoResult solve(const AlgoQuery&) override {
      AlgoResult r;
      r.payload.kind = AlgoKind::Bfs;
      r.payload.levels = std::make_shared<const std::vector<std::int32_t>>(
          std::vector<std::int32_t>{0});
      r.payload.depth = depth_;
      return r;
    }
    const char* name() const override { return "stub"; }
    core::EngineCapabilities capabilities() const override { return {}; }

   private:
    std::uint32_t depth_;
  };

  EngineRegistry reg;
  reg.register_engine(AlgoKind::Bfs, "stub", 0, false,
                      [](const EngineContext&) {
                        return std::make_unique<Stub>(1);
                      });
  reg.register_engine(AlgoKind::Bfs, "stub", 0, false,
                      [](const EngineContext&) {
                        return std::make_unique<Stub>(2);
                      });
  ASSERT_EQ(reg.list().size(), 1u);
  auto eng = reg.build(AlgoKind::Bfs, "stub", {});
  ASSERT_NE(eng, nullptr);
  EXPECT_EQ(eng->solve({}).payload.depth, 2u);
}

// --- cross-engine conformance ----------------------------------------------

/// Builds every registered engine of `kind` the full context can satisfy
/// (device rungs, negative-rung baselines, host oracles) and runs `check`
/// on each; at least one device and one host engine must participate.
class ConformanceTest : public ::testing::Test {
 protected:
  ConformanceTest()
      : g_(toy_graph(9, 11)),
        dev_(sim::DeviceProfile::mi250x_gcd()),
        dg_(graph::DeviceCsr::upload(dev_, g_)) {
    algos::register_builtin_engines();
    ctx_.dev = &dev_;
    ctx_.dg = &dg_;
    ctx_.host_g = &g_;
    src_ = graph::largest_component_vertices(g_)[0];
  }

  template <typename Check>
  void for_each_engine(AlgoKind kind, Check check) {
    EngineRegistry& reg = EngineRegistry::global();
    unsigned device_engines = 0, host_engines = 0;
    for (const EngineInfo& info : reg.list()) {
      if (info.kind != kind) continue;
      auto eng = reg.build(kind, info.name, ctx_);
      if (!eng) continue;  // factory declined (e.g. needs a dyn store)
      // Registration names may differ from the built engine's self-report
      // (e.g. "cpu-bfs" builds a mode-named "cpu-parallel"); the kind is
      // the contract.
      SCOPED_TRACE(info.name);
      ASSERT_EQ(eng->kind(), kind);
      (eng->capabilities().on_device ? device_engines : host_engines)++;
      check(*eng);
    }
    EXPECT_GT(device_engines, 0u) << "no device engine was conformance-run";
    EXPECT_GT(host_engines, 0u) << "no host oracle was conformance-run";
  }

  graph::Csr g_;
  sim::Device dev_;
  graph::DeviceCsr dg_;
  EngineContext ctx_;
  graph::vid_t src_ = 0;
};

TEST_F(ConformanceTest, BfsEnginesMatchReferenceLevels) {
  const auto ref = graph::reference_bfs(g_, src_);
  for_each_engine(AlgoKind::Bfs, [&](core::AlgorithmEngine& eng) {
    AlgoQuery q;
    q.algo = AlgoKind::Bfs;
    q.source = src_;
    const AlgoResult r = eng.solve(q);
    ASSERT_TRUE(r.payload.levels);
    EXPECT_EQ(r.payload.kind, AlgoKind::Bfs);
    EXPECT_EQ(*r.payload.levels, ref);
  });
}

TEST_F(ConformanceTest, SsspEnginesMatchDijkstraAcrossParams) {
  AlgoParams variants[2];
  variants[1].weight_seed = 9;
  variants[1].max_weight = 17;
  for (const AlgoParams& params : variants) {
    const auto ref = graph::reference_sssp(g_, src_, params.weight_seed,
                                           params.max_weight);
    for_each_engine(AlgoKind::Sssp, [&](core::AlgorithmEngine& eng) {
      AlgoQuery q;
      q.algo = AlgoKind::Sssp;
      q.source = src_;
      q.params = params;
      const AlgoResult r = eng.solve(q);
      ASSERT_TRUE(r.payload.distances);
      EXPECT_EQ(r.payload.kind, AlgoKind::Sssp);
      EXPECT_EQ(*r.payload.distances, ref)
          << "seed=" << params.weight_seed << " max=" << params.max_weight;
    });
  }
}

TEST_F(ConformanceTest, CcEnginesProduceAValidPartition) {
  const auto canonical = graph::canonical_components(g_);
  for_each_engine(AlgoKind::Cc, [&](core::AlgorithmEngine& eng) {
    AlgoQuery q;
    q.algo = AlgoKind::Cc;
    const AlgoResult r = eng.solve(q);
    ASSERT_TRUE(r.payload.components);
    EXPECT_EQ(r.payload.kind, AlgoKind::Cc);
    // Partition-equivalent to the reference; builtin engines additionally
    // emit the canonical min-vertex-id labels.
    EXPECT_EQ(graph::validate_components(g_, *r.payload.components), "");
    EXPECT_EQ(*r.payload.components, canonical);
  });
}

TEST_F(ConformanceTest, KcoreEnginesMatchPeelingForDecompositionAndMembership) {
  for (const std::uint32_t k : {0u, 2u}) {
    const auto ref = graph::reference_kcore(g_, k);
    for_each_engine(AlgoKind::KCore, [&](core::AlgorithmEngine& eng) {
      AlgoQuery q;
      q.algo = AlgoKind::KCore;
      q.params.k = k;
      const AlgoResult r = eng.solve(q);
      ASSERT_TRUE(r.payload.cores);
      EXPECT_EQ(r.payload.kind, AlgoKind::KCore);
      EXPECT_EQ(*r.payload.cores, ref) << "k=" << k;
      EXPECT_EQ(graph::validate_kcore(g_, *r.payload.cores, k), "");
    });
  }
}

TEST_F(ConformanceTest, BcEnginesMatchBrandesReference) {
  const auto ref = algos::betweenness_reference(g_, {src_});
  for_each_engine(AlgoKind::Bc, [&](core::AlgorithmEngine& eng) {
    AlgoQuery q;
    q.algo = AlgoKind::Bc;
    q.source = src_;
    const AlgoResult r = eng.solve(q);
    ASSERT_TRUE(r.payload.scores);
    EXPECT_EQ(r.payload.kind, AlgoKind::Bc);
    ASSERT_EQ(r.payload.scores->size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); ++v) {
      EXPECT_NEAR((*r.payload.scores)[v], ref[v], 1e-9) << "vertex " << v;
    }
  });
}

TEST_F(ConformanceTest, SccEnginesPartitionLikeCcOnSymmetricGraphs) {
  // The RMAT CSR is symmetric, so strongly connected components coincide
  // with connected components.  SCC engines label by discovery order (not
  // min-vertex-id), so the oracle here is partition equivalence.
  for_each_engine(AlgoKind::Scc, [&](core::AlgorithmEngine& eng) {
    AlgoQuery q;
    q.algo = AlgoKind::Scc;
    const AlgoResult r = eng.solve(q);
    ASSERT_TRUE(r.payload.components);
    EXPECT_EQ(r.payload.kind, AlgoKind::Scc);
    EXPECT_EQ(graph::validate_components(g_, *r.payload.components), "");
  });
}

TEST_F(ConformanceTest, TraversalEngineAdapterWrapsRunIntoTypedPayload) {
  // Any engine resolved for kind Bfs goes through the TraversalEngine
  // adapter or a native solve; either way the payload must carry the
  // fixpoint depth (levels run = deepest level + 1).
  auto eng = EngineRegistry::global().build(AlgoKind::Bfs, "xbfs", ctx_);
  ASSERT_NE(eng, nullptr);
  AlgoQuery q;
  q.source = src_;
  const AlgoResult r = eng->solve(q);
  ASSERT_TRUE(r.payload.levels);
  std::int32_t deepest = 0;
  for (const std::int32_t l : *r.payload.levels) {
    deepest = std::max(deepest, l);
  }
  EXPECT_EQ(r.payload.depth, static_cast<std::uint32_t>(deepest) + 1);
}

}  // namespace
}  // namespace xbfs
