// Tests for the alpha auto-tuner and the result-reporting helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"
#include "core/tuner.h"
#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs::core {
namespace {

TEST(AlphaTuner, FindsBracketOnDenseRmat) {
  // Large enough that kernels escape launch-overhead dominance (below
  // ~scale 17 bottom-up's five launches can never win and the tuner
  // rightly reports no bracket — covered by the next test).
  graph::RmatParams p;
  p.scale = 17;
  p.edge_factor = 16;
  p.seed = 21;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);

  TunerOptions opt;
  opt.probe_sources = {giant.front()};
  const TunerReport rep =
      tune_alpha(sim::DeviceProfile::mi250x_gcd(), g, opt);

  ASSERT_FALSE(rep.samples.empty());
  ASSERT_TRUE(rep.bracket_found);
  EXPECT_GT(rep.recommended_alpha, rep.bracket_low);
  EXPECT_LT(rep.recommended_alpha, rep.bracket_high);
  // On a dense RMAT the crossover sits in the broad vicinity the paper's
  // Fig. 7 bracketed around alpha = 0.1.
  EXPECT_GT(rep.recommended_alpha, 1e-4);
  EXPECT_LT(rep.recommended_alpha, 0.7);
}

TEST(AlphaTuner, ToySizeReportsNoBracketAndDisablesBottomUp) {
  // At toy scale every kernel is launch-bound, so bottom-up (five kernels)
  // never wins and the tuner must recommend keeping it off.
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 16;
  p.seed = 21;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);
  TunerOptions opt;
  opt.probe_sources = {giant.front()};
  const TunerReport rep =
      tune_alpha(sim::DeviceProfile::mi250x_gcd(), g, opt);
  EXPECT_FALSE(rep.bracket_found);
  EXPECT_GE(rep.recommended_alpha, opt.fallback_alpha);
  EXPECT_LE(rep.recommended_alpha, 1.1);
}

TEST(AlphaTuner, RecommendedAlphaYieldsCorrectAndCompetitiveRuns) {
  graph::RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  p.seed = 22;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);

  TunerOptions opt;
  opt.probe_sources = {giant.front()};
  const TunerReport rep =
      tune_alpha(sim::DeviceProfile::mi250x_gcd(), g, opt);

  auto run_with_alpha = [&](double alpha) {
    sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                    sim::SimOptions{.num_workers = 1});
    dev.warmup();
    auto dg = graph::DeviceCsr::upload(dev, g);
    XbfsConfig cfg;
    cfg.alpha = alpha;
    Xbfs bfs(dev, dg, cfg);
    return bfs.run(giant[giant.size() / 3]);
  };
  const BfsResult tuned = run_with_alpha(rep.recommended_alpha);
  EXPECT_TRUE(graph::validate_bfs_levels(g, giant[giant.size() / 3],
                                         tuned.levels)
                  .empty());
  // The tuned alpha must not be worse than disabling bottom-up outright.
  const BfsResult topdown_only = run_with_alpha(2.0);
  EXPECT_LT(tuned.total_ms, topdown_only.total_ms * 1.05);
}

TEST(AlphaTuner, TopDownOnlyGraphGetsConservativeAlpha) {
  // A long path never reaches high ratios: bottom-up never wins, and the
  // tuner must not recommend an aggressive threshold.
  std::vector<graph::Edge> e;
  for (graph::vid_t v = 0; v + 1 < 3000; ++v) e.push_back({v, v + 1});
  const graph::Csr g = graph::build_csr(3000, std::move(e));
  TunerOptions opt;
  opt.probe_sources = {0};
  const TunerReport rep =
      tune_alpha(sim::DeviceProfile::mi250x_gcd(), g, opt);
  EXPECT_FALSE(rep.bracket_found);
  EXPECT_GE(rep.recommended_alpha, opt.fallback_alpha);
}

TEST(Report, ScheduleTableAndCsvContainEveryLevel) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 23;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 1});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  Xbfs bfs(dev, dg);
  const BfsResult r = bfs.run(giant.front());

  std::ostringstream table_os, csv_os;
  print_schedule(table_os, r);
  write_schedule_csv(csv_os, r);
  const std::string table = table_os.str();
  const std::string csv = csv_os.str();

  EXPECT_NE(table.find("end-to-end"), std::string::npos);
  // CSV: header + one row per level.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(r.level_stats.size()) + 1);
  for (const LevelStats& st : r.level_stats) {
    EXPECT_NE(table.find(strategy_name(st.strategy)), std::string::npos);
  }
}

}  // namespace
}  // namespace xbfs::core
