// Tests for the frontier/counter plumbing and the device-resident graph:
// buffer allocation geometry, counter readback modelling, queue appends and
// DeviceCsr uploads.
#include <gtest/gtest.h>

#include "core/frontier.h"
#include "core/kernels_bottomup.h"
#include "core/status.h"
#include "graph/device_csr.h"
#include "graph/rmat.h"

namespace xbfs::core {
namespace {

sim::Device make_device() {
  return sim::Device(sim::DeviceProfile::mi250x_gcd(),
                     sim::SimOptions{.num_workers = 1});
}

TEST(BfsBuffers, AllocationGeometry) {
  sim::Device dev = make_device();
  const graph::vid_t n = 10000;
  const std::uint32_t seg = 512;
  BfsBuffers b = BfsBuffers::allocate(dev, n, seg, 8, /*with_parents=*/true,
                                      /*with_bins=*/true);
  EXPECT_EQ(b.status.size(), n);
  EXPECT_EQ(b.parent.size(), n);
  EXPECT_EQ(b.queue_a.size(), n);
  EXPECT_EQ(b.queue_b.size(), n);
  EXPECT_EQ(b.pending_a.size(), n);
  EXPECT_EQ(b.pending_b.size(), n);
  EXPECT_EQ(b.bu_queue.size(), n);
  EXPECT_EQ(b.counters.size(), static_cast<std::size_t>(kNumCounters));
  EXPECT_EQ(b.edge_counters.size(),
            static_cast<std::size_t>(kNumEdgeCounters));
  EXPECT_EQ(b.segment_size, seg);
  EXPECT_EQ(b.num_segments, (n + seg - 1) / seg);
  EXPECT_EQ(b.seg_counts.size(), b.num_segments);
  EXPECT_EQ(b.bin_small.size(), n);
}

TEST(BfsBuffers, ParentAndBinsAreOptional) {
  sim::Device dev = make_device();
  BfsBuffers b = BfsBuffers::allocate(dev, 100, 64, 2, false, false);
  EXPECT_TRUE(b.parent.empty());
  EXPECT_TRUE(b.bin_small.empty());
  EXPECT_TRUE(b.bin_large.empty());
}

TEST(ReadCounters, ReflectsDeviceStateAndChargesCopyTime) {
  sim::Device dev = make_device();
  BfsBuffers b = BfsBuffers::allocate(dev, 100, 64, 2, false, false);
  b.counters.host_data()[kNextTail] = 11;
  b.counters.host_data()[kPendingTail] = 22;
  b.counters.host_data()[kNewCount] = 33;
  b.counters.host_data()[kCurTail] = 44;
  b.edge_counters.host_data()[kNextEdges] = 55;
  b.edge_counters.host_data()[kPendingEdges] = 66;
  const double before = dev.now_us();
  const LevelCounters lc = read_counters(dev, dev.stream(0), b);
  EXPECT_EQ(lc.next_count, 11u);
  EXPECT_EQ(lc.pending_count, 22u);
  EXPECT_EQ(lc.new_count, 33u);
  EXPECT_EQ(lc.cur_count, 44u);
  EXPECT_EQ(lc.next_edges, 55u);
  EXPECT_EQ(lc.pending_edges, 66u);
  EXPECT_GT(dev.now_us(), before);  // the d2h readback costs modelled time
}

TEST(AppendQueue, ZeroCountIsANoOpWithoutLaunch) {
  sim::Device dev = make_device();
  BfsBuffers b = BfsBuffers::allocate(dev, 100, 64, 2, false, false);
  dev.profiler().clear();
  launch_append_queue(dev, dev.stream(0), b.pending_a.cspan(), 0,
                      b.queue_a.span(), 0, 64);
  EXPECT_TRUE(dev.profiler().records().empty());
}

TEST(SegmentSizing, BuScanBlocksFitsFinalScanBlock) {
  const sim::DeviceProfile p = sim::DeviceProfile::mi250x_gcd();
  for (std::uint32_t segs : {1u, 7u, 110u, 4096u, 1u << 20}) {
    const unsigned blocks = bu_scan_blocks(p, segs, 256);
    EXPECT_GE(blocks, 1u);
    EXPECT_LE(blocks, 256u);  // one thread per chunk in the final scan
    EXPECT_LE(blocks, p.num_cus);
  }
}

TEST(DeviceCsr, UploadPreservesPayloadAndChargesTransfer) {
  sim::Device dev = make_device();
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  p.seed = 9;
  const graph::Csr g = graph::rmat_csr(p);
  const double before = dev.now_us();
  auto dg = graph::DeviceCsr::upload(dev, g);
  EXPECT_GT(dev.now_us(), before);
  EXPECT_EQ(dg.n, g.num_vertices());
  EXPECT_EQ(dg.m, g.num_edges());
  for (std::size_t i = 0; i <= g.num_vertices(); ++i) {
    ASSERT_EQ(dg.offsets.host_data()[i], g.offsets()[i]);
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    ASSERT_EQ(dg.cols.host_data()[e], g.cols()[e]);
  }
}

TEST(AutoGrid, CoversWorkAndRespectsCuCap) {
  const sim::DeviceProfile p = sim::DeviceProfile::mi250x_gcd();
  EXPECT_EQ(auto_grid_blocks(p, 1, 256), 1u);
  EXPECT_EQ(auto_grid_blocks(p, 256, 256), 1u);
  EXPECT_EQ(auto_grid_blocks(p, 257, 256), 2u);
  // Huge work saturates at num_cus * waves.
  EXPECT_EQ(auto_grid_blocks(p, 1ull << 40, 256, 8), p.num_cus * 8);
}

}  // namespace
}  // namespace xbfs::core
