// Tests for Degree-Aware Neighbor Order Re-arrangement: ordering
// invariants, graph-semantics preservation, and the paper's visit
// probability model.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/reference.h"
#include "graph/reorder.h"
#include "graph/rmat.h"

namespace xbfs::graph {
namespace {

Csr test_graph(std::uint64_t seed = 1) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  p.seed = seed;
  return rmat_csr(p);
}

TEST(Reorder, ByDegreeDescIsOrdered) {
  const Csr g = test_graph();
  const Csr r = rearrange_neighbors(g, NeighborOrder::ByDegreeDesc);
  EXPECT_TRUE(neighbors_ordered(r, NeighborOrder::ByDegreeDesc));
  for (vid_t v = 0; v < r.num_vertices(); ++v) {
    const auto nb = r.neighbors(v);
    for (std::size_t i = 1; i < nb.size(); ++i) {
      EXPECT_GE(r.degree(nb[i - 1]), r.degree(nb[i]))
          << "vertex " << v << " position " << i;
    }
  }
}

TEST(Reorder, PreservesAdjacencyMultiset) {
  const Csr g = test_graph();
  const Csr r = rearrange_neighbors(g, NeighborOrder::ByDegreeDesc);
  ASSERT_EQ(g.offsets(), r.offsets());  // degrees unchanged
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    auto a = g.neighbors(v);
    auto b = r.neighbors(v);
    std::vector<vid_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    ASSERT_EQ(sa, sb) << "vertex " << v;
  }
}

TEST(Reorder, BfsLevelsAreInvariant) {
  const Csr g = test_graph(3);
  const Csr r = rearrange_neighbors(g, NeighborOrder::ByDegreeDesc);
  const auto giant = largest_component_vertices(g);
  for (vid_t src : {giant[0], giant[giant.size() / 2], giant.back()}) {
    EXPECT_EQ(reference_bfs(g, src), reference_bfs(r, src));
  }
}

TEST(Reorder, ByIdRestoresBuilderOrder) {
  const Csr g = test_graph();
  const Csr shuffled = rearrange_neighbors(g, NeighborOrder::ByDegreeDesc);
  const Csr restored = rearrange_neighbors(shuffled, NeighborOrder::ById);
  EXPECT_EQ(restored.cols(), g.cols());  // builder sorts by id
}

TEST(Reorder, AscAndDescAreReverses) {
  const Csr g = test_graph();
  const Csr asc = rearrange_neighbors(g, NeighborOrder::ByDegreeAsc);
  const Csr desc = rearrange_neighbors(g, NeighborOrder::ByDegreeDesc);
  EXPECT_TRUE(neighbors_ordered(asc, NeighborOrder::ByDegreeAsc));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto a = asc.neighbors(v);
    const auto d = desc.neighbors(v);
    ASSERT_EQ(a.size(), d.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Same degree sequence mirrored (ids may differ on ties).
      EXPECT_EQ(asc.degree(a[i]), desc.degree(d[d.size() - 1 - i]));
    }
  }
}

TEST(Reorder, IdempotentOnRearrangedGraph) {
  const Csr g = test_graph();
  const Csr once = rearrange_neighbors(g, NeighborOrder::ByDegreeDesc);
  const Csr twice = rearrange_neighbors(once, NeighborOrder::ByDegreeDesc);
  EXPECT_EQ(once.cols(), twice.cols());
}

TEST(Reorder, DeterministicTieBreaking) {
  const Csr g = test_graph(5);
  const Csr a = rearrange_neighbors(g, NeighborOrder::ByDegreeDesc);
  const Csr b = rearrange_neighbors(g, NeighborOrder::ByDegreeDesc);
  EXPECT_EQ(a.cols(), b.cols());
}

// --- the paper's probability model: P = 1 - C(m-d, mk)/C(m, mk) ----------

TEST(VisitProbability, BoundaryCases) {
  EXPECT_DOUBLE_EQ(visit_probability(100, 0, 10), 0.0);   // nothing visited
  EXPECT_DOUBLE_EQ(visit_probability(100, 100, 10), 1.0); // all visited
  EXPECT_DOUBLE_EQ(visit_probability(100, 50, 0), 0.0);   // no edges at all
}

TEST(VisitProbability, IncreasesWithDegree) {
  // "vertices with larger degrees have a higher likelihood of being visited
  // earlier" — monotone in d for fixed m, mk.
  double prev = 0.0;
  for (std::uint64_t d = 1; d <= 50; d += 7) {
    const double p = visit_probability(1000, 100, d);
    EXPECT_GT(p, prev) << "d=" << d;
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(VisitProbability, IncreasesWithVisitedEdges) {
  double prev = -1.0;
  for (std::uint64_t mk = 0; mk <= 900; mk += 100) {
    const double p = visit_probability(1000, mk, 8);
    EXPECT_GT(p, prev) << "mk=" << mk;
    prev = p;
  }
}

TEST(VisitProbability, MatchesExactSmallCase) {
  // m=4 edges, mk=2 visited, d=1: P = 1 - C(3,2)/C(4,2) = 1 - 3/6 = 0.5.
  EXPECT_NEAR(visit_probability(4, 2, 1), 0.5, 1e-12);
  // d=2: 1 - C(2,2)/C(4,2) = 1 - 1/6.
  EXPECT_NEAR(visit_probability(4, 2, 2), 1.0 - 1.0 / 6.0, 1e-12);
}

TEST(VisitProbability, CertainWhenUnvisitedPoolSmallerThanDegree) {
  // If fewer than d edges remain unvisited, some incident edge was visited.
  EXPECT_DOUBLE_EQ(visit_probability(100, 95, 10), 1.0);
}

// --- whole-graph vertex relabeling ----------------------------------------

TEST(Relabel, MappingsAreInverseBijections) {
  const Csr g = test_graph(9);
  for (VertexOrder order : {VertexOrder::ByDegreeDesc,
                            VertexOrder::ByDegreeAsc, VertexOrder::BfsFrom0}) {
    const Relabeling r = relabel_vertices(g, order);
    ASSERT_EQ(r.new_to_old.size(), g.num_vertices());
    for (vid_t nv = 0; nv < g.num_vertices(); ++nv) {
      ASSERT_EQ(r.old_to_new[r.new_to_old[nv]], nv);
    }
  }
}

TEST(Relabel, ByDegreeDescPutsHubsFirst) {
  const Csr g = test_graph(10);
  const Relabeling r = relabel_vertices(g, VertexOrder::ByDegreeDesc);
  for (vid_t nv = 1; nv < r.graph.num_vertices(); ++nv) {
    ASSERT_GE(r.graph.degree(nv - 1), r.graph.degree(nv)) << nv;
  }
}

TEST(Relabel, GraphIsIsomorphicUnderMapping) {
  const Csr g = test_graph(11);
  const Relabeling r = relabel_vertices(g, VertexOrder::BfsFrom0);
  ASSERT_TRUE(r.graph.validate().empty());
  ASSERT_EQ(r.graph.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    // Neighbors of v in the original == mapped-back neighbors of old_to_new[v].
    std::vector<vid_t> orig(g.neighbors(v).begin(), g.neighbors(v).end());
    std::vector<vid_t> mapped;
    for (vid_t w : r.graph.neighbors(r.old_to_new[v])) {
      mapped.push_back(r.new_to_old[w]);
    }
    std::sort(orig.begin(), orig.end());
    std::sort(mapped.begin(), mapped.end());
    ASSERT_EQ(orig, mapped) << v;
  }
}

TEST(Relabel, BfsOrderGivesMonotoneLevelsFromVertex0) {
  const Csr g = test_graph(12);
  const Relabeling r = relabel_vertices(g, VertexOrder::BfsFrom0);
  // BFS visit order: the level sequence of new ids from the new source
  // (old vertex 0 -> new id of its component head) is non-decreasing over
  // each component's id range.
  const auto levels = reference_bfs(r.graph, r.old_to_new[0]);
  std::int32_t prev = 0;
  for (vid_t nv = 0; nv < r.graph.num_vertices(); ++nv) {
    if (levels[nv] < 0) break;  // left the source's component
    ASSERT_GE(levels[nv], prev) << nv;
    prev = levels[nv];
  }
}

TEST(Relabel, BfsDistancesAreInvariant) {
  const Csr g = test_graph(13);
  const Relabeling r = relabel_vertices(g, VertexOrder::ByDegreeDesc);
  const auto giant = largest_component_vertices(g);
  const vid_t src = giant[0];
  const auto ref = reference_bfs(g, src);
  const auto rel = reference_bfs(r.graph, r.old_to_new[src]);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(ref[v], rel[r.old_to_new[v]]) << v;
  }
}

}  // namespace
}  // namespace xbfs::graph
