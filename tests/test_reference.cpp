// Tests for the serial reference algorithms and — crucially — for the
// validators themselves: a validator that cannot detect corruption would
// silently bless a broken GPU traversal.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/reference.h"

namespace xbfs::graph {
namespace {

Csr path_graph(vid_t n) {
  std::vector<Edge> e;
  for (vid_t v = 0; v + 1 < n; ++v) e.push_back({v, v + 1});
  return build_csr(n, std::move(e));
}

TEST(ReferenceBfs, PathLevelsAreDistances) {
  const Csr g = path_graph(6);
  const auto levels = reference_bfs(g, 0);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(levels[v], static_cast<int>(v));
  const auto mid = reference_bfs(g, 3);
  EXPECT_EQ(mid[0], 3);
  EXPECT_EQ(mid[5], 2);
}

TEST(ReferenceBfs, DisconnectedVerticesStayUnreached) {
  const Csr g = build_csr(5, {{0, 1}, {2, 3}});
  const auto levels = reference_bfs(g, 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], kUnreached);
  EXPECT_EQ(levels[3], kUnreached);
  EXPECT_EQ(levels[4], kUnreached);
}

TEST(ReferenceBfs, SingleVertexGraph) {
  const Csr g = build_csr(1, {});
  const auto levels = reference_bfs(g, 0);
  EXPECT_EQ(levels[0], 0);
}

TEST(ReferenceBfs, StarHasDepthOne) {
  std::vector<Edge> e;
  for (vid_t v = 1; v < 100; ++v) e.push_back({0, v});
  const Csr g = build_csr(100, std::move(e));
  const auto levels = reference_bfs(g, 0);
  for (vid_t v = 1; v < 100; ++v) EXPECT_EQ(levels[v], 1);
  // From a leaf, the center is 1 and other leaves are 2.
  const auto from_leaf = reference_bfs(g, 7);
  EXPECT_EQ(from_leaf[0], 1);
  EXPECT_EQ(from_leaf[8], 2);
}

TEST(ConnectedComponents, CountsAndLabels) {
  const Csr g = build_csr(7, {{0, 1}, {1, 2}, {3, 4}});
  vid_t n_comp = 0;
  const auto comp = connected_components(g, &n_comp);
  EXPECT_EQ(n_comp, 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[6]);
}

TEST(ConnectedComponents, LargestComponentVertices) {
  const Csr g = build_csr(8, {{0, 1}, {1, 2}, {2, 3}, {5, 6}});
  const auto giant = largest_component_vertices(g);
  EXPECT_EQ(giant, (std::vector<vid_t>{0, 1, 2, 3}));
}

// --- validator robustness --------------------------------------------------

TEST(ValidateLevels, AcceptsReference) {
  const Csr g = build_csr(8, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
  const auto levels = reference_bfs(g, 0);
  EXPECT_TRUE(validate_bfs_levels(g, 0, levels).empty());
}

TEST(ValidateLevels, DetectsWrongSourceLevel) {
  const Csr g = path_graph(4);
  auto levels = reference_bfs(g, 0);
  levels[0] = 1;
  EXPECT_FALSE(validate_bfs_levels(g, 0, levels).empty());
}

TEST(ValidateLevels, DetectsOffByOneLevel) {
  const Csr g = path_graph(6);
  auto levels = reference_bfs(g, 0);
  levels[4] = 5;  // should be 4: edge (3,4) now spans 2 levels
  EXPECT_FALSE(validate_bfs_levels(g, 0, levels).empty());
}

TEST(ValidateLevels, DetectsFalseReachability) {
  const Csr g = build_csr(4, {{0, 1}, {2, 3}});
  auto levels = reference_bfs(g, 0);
  levels[2] = 5;  // claims an unreachable vertex was reached
  EXPECT_FALSE(validate_bfs_levels(g, 0, levels).empty());
}

TEST(ValidateLevels, DetectsMissedVertex) {
  const Csr g = path_graph(4);
  auto levels = reference_bfs(g, 0);
  levels[3] = kUnreached;  // claims a reachable vertex was missed
  EXPECT_FALSE(validate_bfs_levels(g, 0, levels).empty());
}

TEST(ValidateLevels, DetectsLevelWithoutPredecessor) {
  // A cycle where a vertex claims level 2 but has no level-1 neighbor.
  const Csr g = build_csr(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  auto levels = reference_bfs(g, 0);
  // levels: 0,1,2,3,2,1 — corrupt vertex 3 (true 3) to 3 stays; instead
  // corrupt vertex 2 from 2 to 3: edge (1,2) spans 2 levels -> caught by
  // the span rule; to exercise the predecessor rule corrupt a diamond:
  const Csr d = build_csr(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
  auto dl = reference_bfs(d, 0);
  ASSERT_EQ(dl[3], 2);
  ASSERT_EQ(dl[4], 3);
  dl[3] = 3;  // now 4 (level 3) has no level-2 neighbor... and (1,3) spans 2
  EXPECT_FALSE(validate_bfs_levels(d, 0, dl).empty());
  (void)levels;
}

TEST(ValidateLevels, WrongSizeRejected) {
  const Csr g = path_graph(4);
  EXPECT_FALSE(validate_bfs_levels(g, 0, std::vector<std::int32_t>(3, 0))
                   .empty());
}

TEST(ValidateParents, AcceptsConsistentTree) {
  const Csr g = build_csr(5, {{0, 1}, {0, 2}, {1, 3}, {2, 4}});
  const auto levels = reference_bfs(g, 0);
  const std::vector<vid_t> parent = {0, 0, 0, 1, 2};
  EXPECT_TRUE(validate_bfs_parents(g, 0, levels, parent).empty());
}

TEST(ValidateParents, DetectsNonNeighborParent) {
  const Csr g = build_csr(5, {{0, 1}, {0, 2}, {1, 3}, {2, 4}});
  const auto levels = reference_bfs(g, 0);
  const std::vector<vid_t> parent = {0, 0, 0, 2, 2};  // 2 is not 3's neighbor
  EXPECT_FALSE(validate_bfs_parents(g, 0, levels, parent).empty());
}

TEST(ValidateParents, DetectsWrongLevelParent) {
  const Csr g = path_graph(4);
  const auto levels = reference_bfs(g, 0);
  const std::vector<vid_t> parent = {0, 0, 3, 2};  // 3 (level 3) parents 2
  EXPECT_FALSE(validate_bfs_parents(g, 0, levels, parent).empty());
}

}  // namespace
}  // namespace xbfs::graph
