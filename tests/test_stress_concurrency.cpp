// Concurrency stress: repeated multi-worker runs shaking out races in the
// simulated-atomics paths (CAS claims, aggregated enqueues, benign stores,
// look-ahead commits), plus cross-implementation agreement of every BFS in
// the repository on the same instances.
#include <gtest/gtest.h>

#include "baseline/async_sssp.h"
#include "baseline/gunrock_like.h"
#include "baseline/hier_queue.h"
#include "baseline/simple_scan.h"
#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/sanitizer.h"
#include "hipsim/schedcheck.h"

namespace xbfs {
namespace {

TEST(StressConcurrency, RepeatedMultiWorkerRunsStayCorrect) {
  graph::RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  p.seed = 51;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);

  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 4});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::XbfsConfig cfg;
  cfg.alpha = 0.05;  // exercise bottom-up + look-ahead under contention
  core::Xbfs bfs(dev, dg, cfg);

  const graph::vid_t src = giant.front();
  const auto ref = graph::reference_bfs(g, src);
  for (int run = 0; run < 12; ++run) {
    const core::BfsResult r = bfs.run(src);
    ASSERT_EQ(r.levels, ref) << "run " << run;
  }
}

TEST(StressConcurrency, AlternatingConfigsOnOneDevice) {
  // Interleave configurations on a single device instance — stale state
  // from one variant must never leak into the next run.
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 52;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant[giant.size() / 3];
  const auto ref = graph::reference_bfs(g, src);

  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 4});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);

  core::XbfsConfig bitmap_cfg;
  bitmap_cfg.bottomup_bitmap = true;
  core::XbfsConfig triple_cfg;
  triple_cfg.stream_mode = core::StreamMode::TripleBinned;
  core::Xbfs plain(dev, dg);
  core::Xbfs bitmap(dev, dg, bitmap_cfg);
  core::Xbfs triple(dev, dg, triple_cfg);
  for (int round = 0; round < 4; ++round) {
    ASSERT_EQ(plain.run(src).levels, ref) << round;
    ASSERT_EQ(bitmap.run(src).levels, ref) << round;
    ASSERT_EQ(triple.run(src).levels, ref) << round;
  }
}

class CrossImplementation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossImplementation, EveryBfsAgreesOnTheSameInstance) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = GetParam();
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant.front();

  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 4});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);

  core::Xbfs xbfs(dev, dg);
  baseline::GunrockLikeBfs gunrock(dev, dg);
  baseline::SimpleScanBfs scan(dev, dg);
  baseline::HierQueueBfs hier(dev, dg);
  baseline::AsyncSsspBfs sssp(dev, dg);

  const auto expected = graph::reference_bfs(g, src);
  EXPECT_EQ(xbfs.run(src).levels, expected);
  EXPECT_EQ(gunrock.run(src).levels, expected);
  EXPECT_EQ(scan.run(src).levels, expected);
  EXPECT_EQ(hier.run(src).levels, expected);
  EXPECT_EQ(sssp.run(src).levels, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossImplementation,
                         ::testing::Values<std::uint64_t>(61, 62, 63, 64),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

// SchedCheck fixed-seed matrix (docs/modelcheck.md): the full XBFS
// traversal explored under a bounded set of *chosen* block interleavings
// per seed, not whatever the pool happened to produce.  Every schedule
// must reach the reference labeling with zero findings — the model-checked
// counterpart of the free-running stress runs above.
TEST(StressConcurrency, XbfsVerifiesUnderScheduleExplorationSeedMatrix) {
  sim::Sanitizer::global().configure(sim::SanitizeConfig::all_on());
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  p.seed = 53;
  const graph::Csr g = graph::rmat_csr(p);
  const graph::vid_t src = graph::largest_component_vertices(g).front();
  const auto ref = graph::reference_bfs(g, src);
  const std::uint64_t ref_hash = sim::state_hash(ref);

  sim::SchedCheck chk;
  for (const std::uint64_t seed : {0x51ull, 0x52ull, 0x53ull}) {
    sim::SchedCheckConfig cfg;
    cfg.schedules = 8;
    cfg.preemptions = 3;
    cfg.seed = seed;
    const auto res = chk.explore_with(
        cfg, "stress-xbfs", [&](sim::Schedule&) -> std::uint64_t {
          sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                          sim::SimOptions{.num_workers = 1});
          auto dg = graph::DeviceCsr::upload(dev, g);
          core::XbfsConfig c;
          c.report_runs = false;
          c.block_threads = 64;  // multi-block grids at toy scale
          core::Xbfs bfs(dev, dg, c);
          return sim::state_hash(bfs.run(src).levels);
        });
    EXPECT_TRUE(res.ok()) << "seed 0x" << std::hex << seed;
    EXPECT_EQ(res.baseline_hash, ref_hash)
        << "explored runs must still compute the reference BFS";
  }
  sim::Sanitizer::global().reset();
  sim::Sanitizer::global().disable();
}

}  // namespace
}  // namespace xbfs
