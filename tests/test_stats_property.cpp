// Property tests for the statistics helpers across generator families and
// seeds: conservation laws of the frontier traces, quantile ordering of the
// box summaries and degree-stat consistency.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "graph/stats.h"

namespace xbfs::graph {
namespace {

using Param = std::tuple<int /*family*/, std::uint64_t /*seed*/>;

Csr make_graph(int family, std::uint64_t seed) {
  switch (family) {
    case 0: {
      RmatParams p;
      p.scale = 11;
      p.edge_factor = 8;
      p.seed = seed;
      return rmat_csr(p);
    }
    case 1:
      return erdos_renyi(3000, 20000, seed);
    case 2:
      return small_world(3000, 8, 0.2, seed);
    case 3:
      return layered_citation(4000, 50, 4, seed);
    default:
      return barabasi_albert(3000, 3, seed);
  }
}

class StatsProperty : public ::testing::TestWithParam<Param> {};

TEST_P(StatsProperty, FrontierTraceConservation) {
  const auto [family, seed] = GetParam();
  const Csr g = make_graph(family, seed);
  const auto giant = largest_component_vertices(g);
  const vid_t src = giant.front();
  const auto ref = reference_bfs(g, src);

  const auto sizes = frontier_sizes(g, src);
  const auto ratio = frontier_edge_ratio(g, src);
  ASSERT_EQ(sizes.size(), ratio.size());

  // Sum of frontier sizes == reached vertices.
  std::uint64_t reached = 0, reached_degree = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (ref[v] >= 0) {
      ++reached;
      reached_degree += g.degree(v);
    }
  }
  const std::uint64_t size_sum =
      std::accumulate(sizes.begin(), sizes.end(), std::uint64_t{0});
  EXPECT_EQ(size_sum, reached);

  // Sum of per-level edge ratios == reached edge mass / |E|.
  const double ratio_sum =
      std::accumulate(ratio.begin(), ratio.end(), 0.0);
  EXPECT_NEAR(ratio_sum,
              static_cast<double>(reached_degree) /
                  static_cast<double>(g.num_edges()),
              1e-9);

  // Level 0 is exactly the source.
  EXPECT_EQ(sizes[0], 1u);
  // No level is empty (BFS stops at the first empty frontier).
  for (std::size_t lvl = 0; lvl < sizes.size(); ++lvl) {
    EXPECT_GT(sizes[lvl], 0u) << lvl;
  }
}

TEST_P(StatsProperty, DegreeStatsAreConsistent) {
  const auto [family, seed] = GetParam();
  const Csr g = make_graph(family, seed);
  const DegreeStats s = degree_stats(g);
  EXPECT_LE(s.min_degree, s.max_degree);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(static_cast<double>(s.min_degree), s.mean);
  EXPECT_GE(static_cast<double>(s.max_degree), s.mean);
  EXPECT_NEAR(s.mean, g.avg_degree(), 1e-12);
  // Isolated count consistent with min degree.
  EXPECT_EQ(s.isolated > 0, s.min_degree == 0);
}

TEST_P(StatsProperty, BoxSummaryBoundsQuantiles) {
  const auto [family, seed] = GetParam();
  const Csr g = make_graph(family, seed);
  std::vector<double> degs;
  degs.reserve(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    degs.push_back(static_cast<double>(g.degree(v)));
  }
  const BoxSummary b = box_summary(degs);
  EXPECT_LE(b.min, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.max);
  EXPECT_EQ(b.count, degs.size());
}

std::string stats_param_name(const ::testing::TestParamInfo<Param>& info) {
  static const char* const kNames[] = {"Rmat", "ER", "SmallWorld", "Citation",
                                       "BA"};
  return std::string(kNames[std::get<0>(info.param)]) + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, StatsProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values<std::uint64_t>(1, 2, 3)),
    stats_param_name);

}  // namespace
}  // namespace xbfs::graph
