// Tests for the obs tracing layer: span nesting, attribute round-trips,
// env-var activation, Chrome trace-event export (parsed back with the
// mini JSON parser) and the end-to-end simulator wiring.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/xbfs.h"
#include "graph/builder.h"
#include "graph/device_csr.h"
#include "hipsim/hipsim.h"
#include "json_mini.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace xbfs {
namespace {

using obs::Span;
using obs::TraceSession;

TEST(TraceSpans, NestingRecordsParentAndDepth) {
  TraceSession tr;
  tr.enable();
  const std::uint64_t outer = tr.begin("outer", "phase");
  const std::uint64_t inner = tr.begin("inner", "phase");
  tr.end(inner);
  tr.end(outer);

  const auto spans = tr.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // inner finished first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, outer);
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_GE(spans[1].wall_dur_us, spans[0].wall_dur_us);
}

TEST(TraceSpans, AttributesRoundTrip) {
  TraceSession tr;
  tr.enable();
  const std::uint64_t id = tr.begin("work", "phase");
  tr.attr(id, "strategy", std::string("bottom-up"));
  tr.attr(id, "ratio", 0.25);
  tr.end(id);

  Span flat;
  flat.name = "kernel_x";
  flat.category = "kernel";
  flat.sim_start_us = 10.0;
  flat.sim_dur_us = 5.0;
  flat.attr("fetch_kb", 12.5);
  flat.attr("launches", std::uint64_t{3});
  flat.attr("nfg", true);
  tr.complete(flat);

  const auto spans = tr.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const Span& s0 = spans[0];
  ASSERT_NE(s0.find_attr("strategy"), nullptr);
  EXPECT_EQ(s0.find_attr("strategy")->value, "bottom-up");
  EXPECT_FALSE(s0.find_attr("strategy")->numeric);
  ASSERT_NE(s0.find_attr("ratio"), nullptr);
  EXPECT_TRUE(s0.find_attr("ratio")->numeric);
  EXPECT_DOUBLE_EQ(std::atof(s0.find_attr("ratio")->value.c_str()), 0.25);

  const Span& s1 = spans[1];
  EXPECT_EQ(s1.find_attr("launches")->value, "3");
  EXPECT_EQ(s1.find_attr("nfg")->value, "true");
  EXPECT_DOUBLE_EQ(s1.sim_start_us, 10.0);
  EXPECT_DOUBLE_EQ(s1.sim_dur_us, 5.0);
}

TEST(TraceSpans, DisabledSessionRecordsNothing) {
  TraceSession tr;  // no XBFS_TRACE in the test environment -> disabled
  tr.disable();
  EXPECT_EQ(tr.begin("x", "phase"), 0u);
  tr.end(0);
  Span s;
  s.name = "y";
  tr.complete(std::move(s));
  EXPECT_EQ(tr.size(), 0u);
}

TEST(TraceSpans, EnvVarActivatesSession) {
  ::setenv("XBFS_TRACE", "/tmp/xbfs_trace_env_test.json", 1);
  TraceSession tr;
  ::unsetenv("XBFS_TRACE");
  EXPECT_TRUE(tr.enabled());
  EXPECT_EQ(tr.output_path(), "/tmp/xbfs_trace_env_test.json");

  TraceSession off;
  EXPECT_FALSE(off.enabled());
}

TEST(TraceExport, ChromeJsonParsesBackWithTracksAndArgs) {
  TraceSession tr;
  tr.enable();
  tr.set_process_label(1, "gcd0");

  Span k;
  k.name = "xbfs_scanfree_expand";
  k.category = "kernel";
  k.track = "stream:default";
  k.pid = 1;
  k.sim_start_us = 100.0;
  k.sim_dur_us = 42.0;
  k.attr("fetch_kb", 1.5);
  k.attr("tag", std::string("level=3 \"quoted\"\n"));
  tr.complete(k);
  tr.instant("decide:bottom-up", "strategy", "policy", 1, 100.0);

  std::ostringstream os;
  obs::write_chrome_trace(os, tr.snapshot(), tr.process_labels());

  const auto doc = testjson::parse(os.str());  // throws on malformed JSON
  ASSERT_TRUE(doc->is_object());
  const auto& events = doc->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  // process_name + 2 thread_name metadata + kernel span + instant.
  ASSERT_EQ(events.size(), 5u);

  bool saw_kernel = false, saw_instant = false, saw_thread_meta = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events.at(i);
    const std::string ph = e.at("ph").str;
    if (ph == "X") {
      saw_kernel = true;
      EXPECT_EQ(e.at("name").str, "xbfs_scanfree_expand");
      EXPECT_EQ(e.at("cat").str, "kernel");
      EXPECT_DOUBLE_EQ(e.at("ts").num, 100.0);
      EXPECT_DOUBLE_EQ(e.at("dur").num, 42.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("fetch_kb").num, 1.5);
      // The nasty tag string survived escaping.
      EXPECT_EQ(e.at("args").at("tag").str, "level=3 \"quoted\"\n");
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(e.at("name").str, "decide:bottom-up");
    } else if (ph == "M" && e.at("name").str == "thread_name") {
      saw_thread_meta = true;
    }
  }
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_thread_meta);
}

TEST(Metrics, EnvVarActivatesRegistry) {
  ::setenv("XBFS_METRICS", "stderr", 1);
  obs::MetricsRegistry mx;
  ::unsetenv("XBFS_METRICS");
  EXPECT_TRUE(mx.enabled());

  obs::MetricsRegistry off;
  EXPECT_FALSE(off.enabled());
}

TEST(Metrics, InstrumentsAccumulateAndExport) {
  obs::MetricsRegistry mx;
  mx.counter("sim.launches").add();
  mx.counter("sim.launches").add(2);
  mx.gauge("run.gteps").set(1.5);
  mx.histogram("sim.kernel_us").observe(10.0);
  mx.histogram("sim.kernel_us").observe(30.0);

  EXPECT_EQ(mx.counter("sim.launches").value(), 3u);
  EXPECT_DOUBLE_EQ(mx.gauge("run.gteps").value(), 1.5);
  EXPECT_EQ(mx.histogram("sim.kernel_us").count(), 2u);
  EXPECT_DOUBLE_EQ(mx.histogram("sim.kernel_us").mean(), 20.0);
  EXPECT_DOUBLE_EQ(mx.histogram("sim.kernel_us").min(), 10.0);
  EXPECT_DOUBLE_EQ(mx.histogram("sim.kernel_us").max(), 30.0);

  std::ostringstream text;
  mx.write_text(text);
  EXPECT_NE(text.str().find("sim.launches 3"), std::string::npos);
  EXPECT_NE(text.str().find("sim.kernel_us.count 2"), std::string::npos);

  std::ostringstream json;
  mx.write_json(json);
  const auto doc = testjson::parse(json.str());
  EXPECT_EQ(doc->at("sim.launches").num, 3.0);
  EXPECT_EQ(doc->at("run.gteps").num, 1.5);

  mx.reset();
  EXPECT_EQ(mx.counter("sim.launches").value(), 0u);
}

TEST(Metrics, LaunchRollupsAndPolicyDecisionsAreAbsorbed) {
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  mx.reset();
  mx.enable();

  std::vector<graph::Edge> edges;
  for (graph::vid_t v = 0; v + 1 < 64; ++v) edges.push_back({v, v + 1});
  const graph::Csr g = graph::build_csr(64, std::move(edges));
  sim::Device dev(sim::DeviceProfile::test_profile(),
                  sim::SimOptions{.num_workers = 1});
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  const core::BfsResult r = bfs.run(0);

  EXPECT_GT(mx.counter("sim.launches").value(), 0u);
  EXPECT_EQ(mx.histogram("sim.kernel_us").count(),
            mx.counter("sim.launches").value());
  std::uint64_t decisions = 0;
  for (const core::Strategy s :
       {core::Strategy::ScanFree, core::Strategy::SingleScan,
        core::Strategy::BottomUp}) {
    decisions +=
        mx.counter(std::string("xbfs.decision.") + core::strategy_name(s))
            .value();
  }
  EXPECT_EQ(decisions, r.depth);

  mx.disable();
  mx.reset();
}

/// End-to-end: running adaptive XBFS with the global session enabled must
/// produce kernel spans (from Device::launch, no caller context needed),
/// level spans and strategy instants, and the exported document must parse.
TEST(TraceIntegration, XbfsRunEmitsKernelLevelAndStrategySpans) {
  TraceSession& tr = TraceSession::global();
  tr.clear();
  tr.enable();

  std::vector<graph::Edge> edges;
  for (graph::vid_t v = 0; v + 1 < 64; ++v) edges.push_back({v, v + 1});
  const graph::Csr g = graph::build_csr(64, std::move(edges));

  sim::Device dev(sim::DeviceProfile::test_profile(),
                  sim::SimOptions{.num_workers = 1});
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  const core::BfsResult r = bfs.run(0);
  ASSERT_GT(r.depth, 1u);

  std::size_t kernels = 0, levels = 0, strategies = 0, runs = 0;
  for (const Span& s : tr.snapshot()) {
    if (s.category == "kernel") {
      ++kernels;
      EXPECT_GE(s.sim_start_us, 0.0);
      EXPECT_EQ(s.pid, dev.trace_pid());
    }
    if (s.category == "level") ++levels;
    if (s.category == "strategy") ++strategies;
    if (s.category == "run") ++runs;
  }
  EXPECT_GT(kernels, 0u);
  EXPECT_EQ(levels, r.depth);
  EXPECT_EQ(strategies, r.depth);
  EXPECT_EQ(runs, 1u);

  std::ostringstream os;
  obs::write_chrome_trace(os, tr.snapshot(), tr.process_labels());
  EXPECT_NO_THROW(testjson::parse(os.str()));

  tr.disable();
  tr.clear();
}

}  // namespace
}  // namespace xbfs
