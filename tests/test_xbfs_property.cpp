// Property-based sweep: every (generator family x seed x configuration)
// combination must produce BFS levels identical in meaning to the serial
// reference — same reachability, same distances — regardless of strategy
// schedule, balancing mode, stream mode, look-ahead or NFG settings.
#include <gtest/gtest.h>

#include <tuple>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs {
namespace {

enum class Family { Rmat, RmatDense, ErdosRenyi, SmallWorld, Citation, Ba };

const char* family_name(Family f) {
  switch (f) {
    case Family::Rmat: return "Rmat";
    case Family::RmatDense: return "RmatDense";
    case Family::ErdosRenyi: return "ER";
    case Family::SmallWorld: return "SmallWorld";
    case Family::Citation: return "Citation";
    case Family::Ba: return "BA";
  }
  return "?";
}

graph::Csr make_family(Family f, std::uint64_t seed) {
  switch (f) {
    case Family::Rmat: {
      graph::RmatParams p;
      p.scale = 11;
      p.edge_factor = 8;
      p.seed = seed;
      return graph::rmat_csr(p);
    }
    case Family::RmatDense: {
      graph::RmatParams p;
      p.scale = 9;
      p.edge_factor = 64;
      p.seed = seed;
      return graph::rmat_csr(p);
    }
    case Family::ErdosRenyi:
      return graph::erdos_renyi(3000, 24000, seed);
    case Family::SmallWorld:
      return graph::small_world(4000, 8, 0.15, seed);
    case Family::Citation:
      return graph::layered_citation(5000, 80, 4, seed);
    case Family::Ba:
      return graph::barabasi_albert(4000, 3, seed);
  }
  return graph::Csr{};
}

struct ConfigVariant {
  const char* name;
  core::XbfsConfig cfg;
};

std::vector<ConfigVariant> config_variants() {
  std::vector<ConfigVariant> out;
  out.push_back({"adaptive-default", {}});
  {
    core::XbfsConfig c;
    c.enable_lookahead = false;
    out.push_back({"no-lookahead", c});
  }
  {
    core::XbfsConfig c;
    c.enable_nfg = false;
    out.push_back({"no-nfg", c});
  }
  {
    core::XbfsConfig c;
    c.topdown_balancing = core::Balancing::ThreadCentric;
    out.push_back({"thread-centric", c});
  }
  {
    core::XbfsConfig c;
    c.topdown_balancing = core::Balancing::WavefrontCentric;
    out.push_back({"wavefront-centric", c});
  }
  {
    core::XbfsConfig c;
    c.bottomup_warp_centric = true;
    out.push_back({"bu-warp-centric", c});
  }
  {
    core::XbfsConfig c;
    c.stream_mode = core::StreamMode::TripleBinned;
    out.push_back({"triple-binned", c});
  }
  {
    core::XbfsConfig c;
    c.alpha = 0.02;  // aggressive bottom-up
    out.push_back({"alpha-0.02", c});
  }
  {
    core::XbfsConfig c;
    c.alpha = 2.0;  // bottom-up disabled
    out.push_back({"topdown-only", c});
  }
  {
    core::XbfsConfig c;
    c.forced_strategy = static_cast<int>(core::Strategy::BottomUp);
    out.push_back({"forced-bottom-up", c});
  }
  {
    core::XbfsConfig c;
    c.build_parents = true;
    out.push_back({"with-parents", c});
  }
  {
    core::XbfsConfig c;
    c.bottomup_bitmap = true;
    out.push_back({"bitmap-status", c});
  }
  {
    core::XbfsConfig c;
    c.bottomup_bitmap = true;
    c.forced_strategy = static_cast<int>(core::Strategy::BottomUp);
    out.push_back({"bitmap-forced-bu", c});
  }
  {
    core::XbfsConfig c;
    c.bottomup_bitmap = true;
    c.enable_lookahead = false;
    c.alpha = 0.02;
    out.push_back({"bitmap-no-lookahead", c});
  }
  {
    core::XbfsConfig c;
    c.block_threads = 64;
    c.bu_segment_size = 128;
    out.push_back({"small-blocks", c});
  }
  return out;
}

using Param = std::tuple<Family, std::uint64_t /*seed*/, std::size_t /*cfg*/>;

class XbfsProperty : public ::testing::TestWithParam<Param> {};

TEST_P(XbfsProperty, MatchesReferenceBfs) {
  const auto [family, seed, cfg_idx] = GetParam();
  const ConfigVariant variant = config_variants()[cfg_idx];
  const graph::Csr g = make_family(family, seed);
  ASSERT_TRUE(g.validate().empty());
  const auto giant = graph::largest_component_vertices(g);
  ASSERT_FALSE(giant.empty());

  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg, variant.cfg);

  // Two sources per instance: a giant-component vertex and (when distinct)
  // one from the middle of the id range.
  const graph::vid_t sources[2] = {giant.front(), giant[giant.size() / 2]};
  for (graph::vid_t src : sources) {
    const core::BfsResult r = bfs.run(src);
    const auto ref = graph::reference_bfs(g, src);
    ASSERT_EQ(r.levels.size(), ref.size());
    for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(r.levels[v], ref[v])
          << family_name(family) << " seed=" << seed << " cfg="
          << variant.name << " src=" << src << " vertex=" << v;
    }
    if (variant.cfg.build_parents) {
      const std::string perr =
          graph::validate_bfs_parents(g, src, r.levels, r.parent);
      ASSERT_TRUE(perr.empty()) << perr;
    }
    ASSERT_GT(r.total_ms, 0.0);
    ASSERT_GE(r.depth, 1u);
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [family, seed, cfg_idx] = info.param;
  std::string name = std::string(family_name(family)) + "_s" +
                     std::to_string(seed) + "_" +
                     config_variants()[cfg_idx].name;
  for (char& c : name) {
    if (c == '-' || c == '.') c = '_';
  }
  return name;
}

// Full configuration matrix on the canonical RMAT instance...
INSTANTIATE_TEST_SUITE_P(
    AllConfigs, XbfsProperty,
    ::testing::Combine(::testing::Values(Family::Rmat),
                       ::testing::Values<std::uint64_t>(1),
                       ::testing::Range<std::size_t>(0,
                                                     config_variants().size())),
    param_name);

// ...and the default + forced-bottom-up configs across families and seeds.
INSTANTIATE_TEST_SUITE_P(
    AllFamilies, XbfsProperty,
    ::testing::Combine(::testing::Values(Family::Rmat, Family::RmatDense,
                                         Family::ErdosRenyi,
                                         Family::SmallWorld, Family::Citation,
                                         Family::Ba),
                       ::testing::Values<std::uint64_t>(2, 3),
                       ::testing::Values<std::size_t>(0, 9)),
    param_name);

}  // namespace
}  // namespace xbfs
