// End-to-end correctness of the adaptive XBFS runner against the serial
// reference, across generators, seeds, strategies and configurations.
#include <gtest/gtest.h>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs {
namespace {

graph::Csr small_rmat(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

void expect_valid_bfs(const graph::Csr& g, const core::XbfsConfig& cfg,
                      graph::vid_t src) {
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(), sim::SimOptions{});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg, cfg);
  const core::BfsResult r = bfs.run(src);
  const std::string err = graph::validate_bfs_levels(g, src, r.levels);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_GT(r.total_ms, 0.0);
  if (cfg.build_parents) {
    const std::string perr =
        graph::validate_bfs_parents(g, src, r.levels, r.parent);
    EXPECT_TRUE(perr.empty()) << perr;
  }
}

TEST(XbfsIntegration, AdaptiveOnRmat) {
  const graph::Csr g = small_rmat(12, 1);
  expect_valid_bfs(g, core::XbfsConfig{}, graph::largest_component_vertices(g)[0]);
}

TEST(XbfsIntegration, AdaptiveWithParents) {
  const graph::Csr g = small_rmat(11, 2);
  core::XbfsConfig cfg;
  cfg.build_parents = true;
  expect_valid_bfs(g, cfg, graph::largest_component_vertices(g)[0]);
}

TEST(XbfsIntegration, ForcedScanFree) {
  const graph::Csr g = small_rmat(11, 3);
  core::XbfsConfig cfg;
  cfg.forced_strategy = static_cast<int>(core::Strategy::ScanFree);
  expect_valid_bfs(g, cfg, graph::largest_component_vertices(g)[0]);
}

TEST(XbfsIntegration, ForcedSingleScan) {
  const graph::Csr g = small_rmat(11, 4);
  core::XbfsConfig cfg;
  cfg.forced_strategy = static_cast<int>(core::Strategy::SingleScan);
  expect_valid_bfs(g, cfg, graph::largest_component_vertices(g)[0]);
}

TEST(XbfsIntegration, ForcedBottomUp) {
  const graph::Csr g = small_rmat(11, 5);
  core::XbfsConfig cfg;
  cfg.forced_strategy = static_cast<int>(core::Strategy::BottomUp);
  expect_valid_bfs(g, cfg, graph::largest_component_vertices(g)[0]);
}

TEST(XbfsIntegration, TripleBinnedStreams) {
  const graph::Csr g = small_rmat(11, 6);
  core::XbfsConfig cfg;
  cfg.stream_mode = core::StreamMode::TripleBinned;
  expect_valid_bfs(g, cfg, graph::largest_component_vertices(g)[0]);
}

TEST(XbfsIntegration, LongDiameterCitationGraph) {
  const graph::Csr g = graph::layered_citation(20000, 100, 4, 7);
  expect_valid_bfs(g, core::XbfsConfig{}, graph::largest_component_vertices(g)[0]);
}

TEST(XbfsIntegration, SmallWorldGraph) {
  const graph::Csr g = graph::small_world(10000, 8, 0.2, 8);
  expect_valid_bfs(g, core::XbfsConfig{}, graph::largest_component_vertices(g)[0]);
}

}  // namespace
}  // namespace xbfs
