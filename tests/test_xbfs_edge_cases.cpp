// Edge-case and telemetry tests for the XBFS runner: degenerate graphs,
// repeated runs on one instance, telemetry consistency, and the modelled
// end-to-end accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/xbfs.h"
#include "graph/builder.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs {
namespace {

core::BfsResult run_on(const graph::Csr& g, graph::vid_t src,
                       core::XbfsConfig cfg = {}) {
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg, cfg);
  return bfs.run(src);
}

TEST(XbfsEdgeCases, SingleVertexGraph) {
  const graph::Csr g = graph::build_csr(1, {});
  const core::BfsResult r = run_on(g, 0);
  ASSERT_EQ(r.levels.size(), 1u);
  EXPECT_EQ(r.levels[0], 0);
  EXPECT_EQ(r.depth, 1u);
}

TEST(XbfsEdgeCases, IsolatedSourceTerminatesImmediately) {
  const graph::Csr g = graph::build_csr(10, {{1, 2}, {2, 3}});
  const core::BfsResult r = run_on(g, 0);  // vertex 0 has no edges
  EXPECT_EQ(r.levels[0], 0);
  for (graph::vid_t v = 1; v < 10; ++v) EXPECT_EQ(r.levels[v], -1);
}

TEST(XbfsEdgeCases, PathGraphVisitsEveryLevel) {
  std::vector<graph::Edge> e;
  for (graph::vid_t v = 0; v + 1 < 200; ++v) e.push_back({v, v + 1});
  const graph::Csr g = graph::build_csr(200, std::move(e));
  const core::BfsResult r = run_on(g, 0);
  for (graph::vid_t v = 0; v < 200; ++v) {
    ASSERT_EQ(r.levels[v], static_cast<std::int32_t>(v));
  }
  EXPECT_EQ(r.depth, 200u);
}

TEST(XbfsEdgeCases, CompleteGraphIsTwoLevels) {
  std::vector<graph::Edge> e;
  for (graph::vid_t u = 0; u < 64; ++u) {
    for (graph::vid_t v = u + 1; v < 64; ++v) e.push_back({u, v});
  }
  const graph::Csr g = graph::build_csr(64, std::move(e));
  const core::BfsResult r = run_on(g, 7);
  EXPECT_EQ(r.levels[7], 0);
  for (graph::vid_t v = 0; v < 64; ++v) {
    if (v != 7) ASSERT_EQ(r.levels[v], 1);
  }
}

TEST(XbfsEdgeCases, StarFromCenterAndLeaf) {
  std::vector<graph::Edge> e;
  for (graph::vid_t v = 1; v < 1000; ++v) e.push_back({0, v});
  const graph::Csr g = graph::build_csr(1000, std::move(e));
  const core::BfsResult center = run_on(g, 0);
  for (graph::vid_t v = 1; v < 1000; ++v) ASSERT_EQ(center.levels[v], 1);
  const core::BfsResult leaf = run_on(g, 500);
  EXPECT_EQ(leaf.levels[0], 1);
  EXPECT_EQ(leaf.levels[499], 2);
}

TEST(XbfsEdgeCases, RepeatedRunsOnOneInstanceAreConsistent) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 31;
  const graph::Csr g = graph::rmat_csr(p);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  // The n-to-n pattern: same instance, many sources, no cross-talk.
  std::vector<std::int32_t> first;
  for (int i = 0; i < 5; ++i) {
    const core::BfsResult r = bfs.run(giant[i * 7]);
    const auto ref = graph::reference_bfs(g, giant[i * 7]);
    ASSERT_EQ(r.levels, ref) << "run " << i;
    if (i == 0) first = r.levels;
  }
  // Re-running the first source reproduces it exactly.
  EXPECT_EQ(bfs.run(giant[0]).levels, first);
}

TEST(XbfsTelemetry, LevelStatsAreInternallyConsistent) {
  graph::RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  p.seed = 17;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);
  const core::BfsResult r = run_on(g, giant[0]);

  ASSERT_EQ(r.depth, r.level_stats.size());
  double sum_level_ms = 0;
  for (std::size_t i = 0; i < r.level_stats.size(); ++i) {
    const core::LevelStats& st = r.level_stats[i];
    EXPECT_EQ(st.level, i);
    EXPECT_GT(st.time_ms, 0.0);
    EXPECT_GE(st.ratio, 0.0);
    EXPECT_LE(st.ratio, 1.0);
    EXPECT_GE(st.kernels, 1u);
    sum_level_ms += st.time_ms;
  }
  // Levels + final readback compose the end-to-end time.
  EXPECT_LE(sum_level_ms, r.total_ms);
  EXPECT_EQ(r.level_stats[0].frontier_count, 1u);
  // Frontier counts sum to the reached-vertex count.
  std::uint64_t frontier_total = 0;
  for (const auto& st : r.level_stats) frontier_total += st.frontier_count;
  std::uint64_t reached = 0;
  for (auto l : r.levels) {
    if (l >= 0) ++reached;
  }
  EXPECT_EQ(frontier_total, reached);
}

TEST(XbfsTelemetry, GtepsMatchesEdgesOverTime) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 13;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);
  const core::BfsResult r = run_on(g, giant[0]);
  EXPECT_NEAR(r.gteps,
              static_cast<double>(r.edges_traversed) / (r.total_ms * 1e6),
              1e-9);
  // edges_traversed counts each undirected edge of the reached region once.
  std::uint64_t reached_deg = 0;
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.levels[v] >= 0) reached_deg += g.degree(v);
  }
  EXPECT_EQ(r.edges_traversed, reached_deg / 2);
}

TEST(XbfsTelemetry, ForcedStrategyTagsEveryLevel) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 19;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);
  core::XbfsConfig cfg;
  cfg.forced_strategy = static_cast<int>(core::Strategy::SingleScan);
  const core::BfsResult r = run_on(g, giant[0], cfg);
  for (const auto& st : r.level_stats) {
    EXPECT_EQ(st.strategy, core::Strategy::SingleScan);
    EXPECT_FALSE(st.skipped_generation);
  }
}

TEST(XbfsTelemetry, AdaptiveScheduleFollowsTheRatioCurve) {
  // The paper's canonical schedule on a dense RMAT: top-down start,
  // bottom-up at the ratio peak, top-down tail with an NFG transition.
  graph::RmatParams p;
  p.scale = 13;
  p.edge_factor = 16;
  p.seed = 1;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);
  const core::BfsResult r = run_on(g, giant[0]);
  ASSERT_GE(r.depth, 4u);
  EXPECT_EQ(r.level_stats.front().strategy, core::Strategy::ScanFree);
  bool saw_bottom_up = false, saw_nfg_after_bu = false;
  for (std::size_t i = 0; i + 1 < r.level_stats.size(); ++i) {
    if (r.level_stats[i].strategy == core::Strategy::BottomUp) {
      saw_bottom_up = true;
      EXPECT_GT(r.level_stats[i].ratio, 0.1);
      if (r.level_stats[i + 1].strategy == core::Strategy::SingleScan &&
          r.level_stats[i + 1].skipped_generation) {
        saw_nfg_after_bu = true;
      }
    }
  }
  EXPECT_TRUE(saw_bottom_up);
  EXPECT_TRUE(saw_nfg_after_bu);
}

}  // namespace
}  // namespace xbfs
