// Minimal recursive-descent JSON parser for tests: enough to parse back
// the documents the obs layer emits (objects, arrays, strings with escapes,
// numbers, booleans, null) and assert on their structure.  Throws
// std::runtime_error on malformed input — which is itself the assertion
// the exporter tests care about.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace xbfs::testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object } type =
      Type::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<ValuePtr> arr;
  std::map<std::string, ValuePtr> obj;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
  const Value& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return *it->second;
  }
  const Value& at(std::size_t i) const {
    if (i >= arr.size()) throw std::runtime_error("index out of range");
    return *arr[i];
  }
  std::size_t size() const {
    return type == Type::Array ? arr.size() : obj.size();
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  ValuePtr parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  ValuePtr parse_object() {
    auto v = std::make_shared<Value>();
    v->type = Value::Type::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      ValuePtr key = parse_string();
      expect(':');
      v->obj[key->str] = parse_value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  ValuePtr parse_array() {
    auto v = std::make_shared<Value>();
    v->type = Value::Type::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v->arr.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  ValuePtr parse_string() {
    auto v = std::make_shared<Value>();
    v->type = Value::Type::String;
    expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            c = static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            break;
          }
          default: throw std::runtime_error("unknown escape");
        }
      }
      v->str += c;
    }
    expect('"');
    return v;
  }

  ValuePtr parse_bool() {
    auto v = std::make_shared<Value>();
    v->type = Value::Type::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v->b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v->b = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  ValuePtr parse_null() {
    if (s_.compare(pos_, 4, "null") != 0) {
      throw std::runtime_error("bad literal");
    }
    pos_ += 4;
    return std::make_shared<Value>();
  }

  ValuePtr parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    auto v = std::make_shared<Value>();
    v->type = Value::Type::Number;
    v->num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline ValuePtr parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace xbfs::testjson
