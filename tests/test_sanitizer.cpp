// SimSan unit tests: one test per defect class (out-of-bounds, use-after-
// free, uninitialized read, stale host read), the cross-block race analyzer
// (harmful vs annotated vs all-atomic), env-spec parsing, and a regression
// test pinning down that the paper's bottom-up look-ahead race (HPDC'19
// v7->v8) is *annotated* with sim::racy_ok — reported as allowlisted with
// its documented reason — rather than suppressed or silently racy.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/frontier.h"
#include "core/kernels_bottomup.h"
#include "core/status.h"
#include "hipsim/hipsim.h"
#include "hipsim/sanitizer.h"

namespace xbfs {
namespace {

using graph::eid_t;
using graph::vid_t;
using sim::DefectKind;
using sim::SanitizeConfig;
using sim::Sanitizer;

/// Configure the global sanitizer for one test; on scope exit drop the
/// findings/registry and disable.  Declare FIRST in a test body so device
/// buffers die before reset() releases their shadows.
struct SanScope {
  explicit SanScope(SanitizeConfig cfg = SanitizeConfig::all_on()) {
    Sanitizer::global().configure(cfg);
  }
  ~SanScope() {
    Sanitizer::global().reset();
    Sanitizer::global().disable();
  }
};

sim::Device make_device() {
  return sim::Device(sim::DeviceProfile::mi250x_gcd(),
                     sim::SimOptions{.num_workers = 2});
}

std::uint64_t count(DefectKind k) {
  return Sanitizer::global().finding_count(k);
}

TEST(SanitizeConfigTest, ParsesCommaSeparatedModes) {
  const SanitizeConfig c = SanitizeConfig::from_env_string("races, bounds");
  EXPECT_TRUE(c.races);
  EXPECT_TRUE(c.bounds);
  EXPECT_FALSE(c.init);
  EXPECT_FALSE(c.stale);
  EXPECT_FALSE(c.free);

  const SanitizeConfig all = SanitizeConfig::from_env_string("all");
  EXPECT_TRUE(all.bounds && all.init && all.stale && all.free && all.races);

  EXPECT_FALSE(SanitizeConfig::from_env_string("").any());
  // Unknown tokens warn and are ignored, not fatal.
  EXPECT_TRUE(SanitizeConfig::from_env_string("bounds,zorp").bounds);
}

TEST(SanitizerTest, OutOfBoundsIndexIsReportedAndSkipped) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  auto buf = dev.alloc<std::uint32_t>(64, "t.oob");
  buf.h_fill(7);
  dev.memcpy_h2d(s, buf);
  auto out = dev.alloc<std::uint32_t>(2, "t.oob_out");
  out.h_fill(123);
  dev.memcpy_h2d(s, out);

  // A subspan narrows the legal range: index 40 is inside the buffer but
  // past the view.  Both the load and the store must be skipped.
  auto narrow = buf.span().subspan(0, 32);
  auto out_s = out.span();
  sim::LaunchConfig lc{.grid_blocks = 1, .block_threads = 64};
  dev.launch(s, "oob_probe", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t != 0) return;
      ctx.store(out_s, 0, ctx.load(narrow, 40));  // skipped load -> 0
      ctx.store(narrow, 55, std::uint32_t{9});    // skipped store
    });
  });
  s.synchronize();
  dev.memcpy_d2h(s, out);
  dev.memcpy_d2h(s, buf);

  EXPECT_GE(count(DefectKind::OutOfBounds), 2u);
  EXPECT_GE(Sanitizer::global().unannotated_count(), 2u);
  EXPECT_EQ(out.h_read(0), 0u);   // skipped load yielded a zero value
  EXPECT_EQ(buf.h_read(55), 7u);  // skipped store never landed
}

TEST(SanitizerTest, UseAfterFreeThroughDanglingSpan) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  auto out = dev.alloc<std::uint32_t>(1, "t.uaf_out");
  out.h_fill(123);
  dev.memcpy_h2d(s, out);

  sim::dspan<std::uint32_t> dangling;
  {
    auto victim = dev.alloc<std::uint32_t>(16, "t.uaf");
    victim.h_fill(5);
    dev.memcpy_h2d(s, victim);
    dangling = victim.span();
  }  // victim destroyed; its shadow lives on in the sanitizer registry

  auto out_s = out.span();
  sim::LaunchConfig lc{.grid_blocks = 1, .block_threads = 64};
  dev.launch(s, "uaf_probe", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t == 0) ctx.store(out_s, 0, ctx.load(dangling, 0));
    });
  });
  s.synchronize();
  dev.memcpy_d2h(s, out);

  EXPECT_GE(count(DefectKind::UseAfterFree), 1u);
  EXPECT_EQ(out.h_read(0), 0u);  // the freed storage was never dereferenced

  // The finding names the dead allocation.
  bool named = false;
  for (const sim::Finding& f : Sanitizer::global().findings()) {
    if (f.kind == DefectKind::UseAfterFree && f.buffer == "t.uaf") named = true;
  }
  EXPECT_TRUE(named);
}

TEST(SanitizerTest, ReadOfNeverWrittenWordIsUninit) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  auto buf = dev.alloc<std::uint32_t>(8, "t.uninit");  // never written
  auto out = dev.alloc<std::uint32_t>(1, "t.uninit_out");
  out.h_fill(0);
  dev.memcpy_h2d(s, out);

  auto buf_s = buf.cspan();
  auto out_s = out.span();
  sim::LaunchConfig lc{.grid_blocks = 1, .block_threads = 64};
  dev.launch(s, "uninit_probe", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t == 0) ctx.store(out_s, 0, ctx.load(buf_s, 3));
    });
  });
  s.synchronize();

  EXPECT_GE(count(DefectKind::UninitRead), 1u);

  // After a full host fill + upload the same read is clean.
  const std::uint64_t before = count(DefectKind::UninitRead);
  buf.h_fill(1);
  dev.memcpy_h2d(s, buf);
  dev.launch(s, "uninit_probe2", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t == 0) ctx.store(out_s, 0, ctx.load(buf_s, 3));
    });
  });
  s.synchronize();
  EXPECT_EQ(count(DefectKind::UninitRead), before);
}

TEST(SanitizerTest, HostReadOfDirtyDeviceDataIsStale) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  auto buf = dev.alloc<std::uint32_t>(4, "t.stale");
  buf.h_fill(0);
  dev.memcpy_h2d(s, buf);

  auto buf_s = buf.span();
  sim::LaunchConfig lc{.grid_blocks = 1, .block_threads = 64};
  dev.launch(s, "stale_writer", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t == 0) ctx.store(buf_s, 0, std::uint32_t{42});
    });
  });
  s.synchronize();

  // Device wrote, nobody copied back: the host read is flagged (the value
  // still comes back — the simulator's backing store is host memory).
  (void)buf.h_read(0);
  EXPECT_GE(count(DefectKind::StaleHostRead), 1u);

  const std::uint64_t before = count(DefectKind::StaleHostRead);
  dev.memcpy_d2h(s, buf);
  EXPECT_EQ(buf.h_read(0), 42u);  // synced read is clean
  EXPECT_EQ(count(DefectKind::StaleHostRead), before);
}

TEST(SanitizerTest, CrossBlockPlainStoresAreAHarmfulRace) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  auto buf = dev.alloc<std::uint32_t>(4, "t.racy");
  buf.h_fill(0);
  dev.memcpy_h2d(s, buf);

  auto buf_s = buf.span();
  sim::LaunchConfig lc{.grid_blocks = 4, .block_threads = 64};
  dev.launch(s, "racy_store", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t == 0) ctx.store(buf_s, 0, blk.block_id());
    });
  });
  s.synchronize();

  EXPECT_GE(count(DefectKind::DataRace), 1u);
  EXPECT_EQ(count(DefectKind::DataRaceAllowlisted), 0u);
  EXPECT_GE(Sanitizer::global().unannotated_count(), 1u);
}

TEST(SanitizerTest, RacyOkAnnotationAllowlistsWithItsReason) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  auto buf = dev.alloc<std::uint32_t>(4, "t.benign");
  buf.h_fill(0);
  dev.memcpy_h2d(s, buf);

  auto buf_s = buf.span();
  sim::LaunchConfig lc{.grid_blocks = 4, .block_threads = 64};
  dev.launch(s, "benign_store", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t != 0) return;
      sim::racy_ok allow(ctx, "test: same-value store from every block");
      ctx.store(buf_s, 0, std::uint32_t{1});
    });
  });
  s.synchronize();

  EXPECT_EQ(count(DefectKind::DataRace), 0u);
  EXPECT_GE(count(DefectKind::DataRaceAllowlisted), 1u);
  EXPECT_EQ(Sanitizer::global().unannotated_count(), 0u);

  // The documented reason travels into the finding.
  bool reason_seen = false;
  for (const sim::Finding& f : Sanitizer::global().findings()) {
    if (f.kind == DefectKind::DataRaceAllowlisted &&
        f.detail.find("same-value store") != std::string::npos) {
      reason_seen = true;
    }
  }
  EXPECT_TRUE(reason_seen);
}

TEST(SanitizerTest, AtomicContentionIsNotARace) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  auto buf = dev.alloc<std::uint32_t>(1, "t.atomic");
  buf.h_fill(0);
  dev.memcpy_h2d(s, buf);

  auto buf_s = buf.span();
  sim::LaunchConfig lc{.grid_blocks = 4, .block_threads = 64};
  dev.launch(s, "atomic_adds", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned) {
      ctx.atomic_add(buf_s, 0, std::uint32_t{1});
    });
  });
  s.synchronize();
  dev.memcpy_d2h(s, buf);

  EXPECT_EQ(count(DefectKind::DataRace), 0u);
  EXPECT_EQ(count(DefectKind::DataRaceAllowlisted), 0u);
  EXPECT_EQ(buf.h_read(0), 4u * 64u);
}

TEST(SanitizerTest, DisabledSanitizerAllocatesNoShadows) {
  // No SanScope: the sanitizer stays off, so buffers carry no shadow and
  // racy kernels produce no findings.
  ASSERT_FALSE(Sanitizer::global().enabled());
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  auto buf = dev.alloc<std::uint32_t>(4, "t.off");
  EXPECT_EQ(buf.span().shadow(), nullptr);

  auto buf_s = buf.span();
  sim::LaunchConfig lc{.grid_blocks = 4, .block_threads = 64};
  dev.launch(s, "off_store", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t == 0) ctx.store(buf_s, 0, std::uint32_t{1});
    });
  });
  s.synchronize();
  EXPECT_EQ(count(DefectKind::DataRace), 0u);
}

// --- regression: the paper's look-ahead race stays annotated -----------------
//
// Reconstructs the HPDC'19 v7->v8 situation with a surgical launch of k5
// (xbfs_bu_expand) alone: a chain graph where every bottom-up candidate's
// adjacency list probes its predecessor (committed in the SAME pass by a
// different wavefront/block) before finding the level-0 root.  The plain
// status commit racing with those atomic probes is the intentional race the
// paper tolerates; SimSan must (a) observe it and (b) classify it as
// allowlisted via the sim::racy_ok annotation in kernels_bottomup.cpp —
// with zero unannotated findings from the whole launch.
TEST(SanitizerTest, BottomUpLookAheadRaceIsAnnotatedNotSuppressed) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  constexpr std::uint32_t kN = 600;
  // Vertex 0: the level-0 root, no out-edges.  Vertex v >= 1: edge list
  // [v-1, 0] — the predecessor FIRST so every candidate's scan probes a
  // vertex being committed this pass before early-terminating on the root.
  std::vector<eid_t> offsets(kN + 1);
  std::vector<vid_t> cols;
  offsets[0] = 0;
  offsets[1] = 0;
  for (vid_t v = 1; v < kN; ++v) {
    cols.push_back(v - 1);
    cols.push_back(0);
    offsets[v + 1] = static_cast<eid_t>(cols.size());
  }

  auto d_offsets = dev.alloc<eid_t>(offsets.size(), "la.offsets");
  d_offsets.h_copy_from(offsets.data(), offsets.size());
  auto d_cols = dev.alloc<vid_t>(cols.size(), "la.cols");
  d_cols.h_copy_from(cols.data(), cols.size());
  auto d_status = dev.alloc<std::uint32_t>(kN, "la.status");
  d_status.h_fill(core::kUnvisited);
  d_status.h_write(0, 0);  // root at level 0
  auto d_bu_queue = dev.alloc<vid_t>(kN, "la.bu_queue");
  for (vid_t v = 1; v < kN; ++v) d_bu_queue.h_write(v - 1, v);
  auto d_next_queue = dev.alloc<vid_t>(kN, "la.next_queue");
  auto d_pending_queue = dev.alloc<vid_t>(kN, "la.pending_queue");
  auto d_counters = dev.alloc<std::uint32_t>(core::kNumCounters, "la.counters");
  d_counters.h_fill(0);
  auto d_edge_counters =
      dev.alloc<std::uint64_t>(core::kNumEdgeCounters, "la.edge_counters");
  d_edge_counters.h_fill(0);
  dev.memcpy_h2d(s, d_offsets, d_cols, d_status, d_bu_queue, d_counters,
                 d_edge_counters);

  core::BottomUpArgs a;
  a.offsets = d_offsets.cspan();
  a.cols = d_cols.cspan();
  a.status = d_status.span();
  a.bu_queue = d_bu_queue.span();
  a.next_queue = d_next_queue.span();
  a.pending_queue = d_pending_queue.span();
  a.counters = d_counters.span();
  a.edge_counters = d_edge_counters.span();
  a.n = kN;
  a.cur_level = 0;

  core::XbfsConfig cfg;
  cfg.block_threads = 64;  // one wavefront per block ...
  cfg.grid_blocks = 4;     // ... so adjacent 64-candidate chunks are in
                           // different blocks: probe-vs-commit conflicts at
                           // every chunk boundary are cross-block.
  core::launch_bu_expand(dev, s, a, kN - 1, cfg);
  s.synchronize();

  EXPECT_GE(count(DefectKind::DataRaceAllowlisted), 1u)
      << "the look-ahead race must be OBSERVED (not suppressed)";
  EXPECT_EQ(Sanitizer::global().unannotated_count(), 0u)
      << "the look-ahead race must be ANNOTATED (sim::racy_ok)";

  bool documented = false;
  for (const sim::Finding& f : Sanitizer::global().findings()) {
    if (f.kind == DefectKind::DataRaceAllowlisted &&
        f.kernel == "xbfs_bu_expand" &&
        f.detail.find("look-ahead") != std::string::npos) {
      documented = true;
    }
  }
  EXPECT_TRUE(documented)
      << "the allowlisted finding must carry the kernel's documented reason";

  // And the traversal result is still the correct BFS: every candidate is
  // adjacent to the root, so all of them land exactly at level 1.
  dev.memcpy_d2h(s, d_status, d_counters);
  for (vid_t v = 1; v < kN; ++v) {
    EXPECT_EQ(d_status.h_read(v), 1u) << "vertex " << v;
  }
  EXPECT_EQ(d_counters.h_read(core::kNextTail), kN - 1);
}

// Allowlist hygiene: an annotation whose scope runs AND covers logged
// accesses is live; one whose scope runs but covers nothing is stale (the
// racy code it documented has moved, and the entry would silently excuse a
// future, different race).  check_sanitize fails the build on stale
// entries via Sanitizer::stale_annotations().
TEST(SanitizerTest, AnnotationStatsSeparateLiveFromStale) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);

  auto buf = dev.alloc<std::uint32_t>(4, "t.annstats");
  buf.h_fill(0);
  dev.memcpy_h2d(s, buf);

  auto buf_s = buf.span();
  sim::LaunchConfig lc{.grid_blocks = 2, .block_threads = 64};
  dev.launch(s, "ann_stats_kernel", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t != 0) return;
      {
        sim::racy_ok live(ctx, "test: live annotation covers this store");
        ctx.store(buf_s, 0, std::uint32_t{1});
      }
      {
        // Scope entered, zero accesses inside: the stale pattern.
        sim::racy_ok stale(ctx, "test: stale annotation covers nothing");
      }
    });
  });
  s.synchronize();

  const auto stats = Sanitizer::global().annotation_stats();
  const sim::Sanitizer::AnnotationStats* live = nullptr;
  const sim::Sanitizer::AnnotationStats* stale = nullptr;
  for (const auto& a : stats) {
    if (a.why.find("live annotation") != std::string::npos) live = &a;
    if (a.why.find("stale annotation") != std::string::npos) stale = &a;
  }
  ASSERT_NE(live, nullptr);
  ASSERT_NE(stale, nullptr);
  EXPECT_GT(live->scopes_entered, 0u);
  EXPECT_GT(live->annotated_accesses, 0u);
  EXPECT_GT(stale->scopes_entered, 0u);
  EXPECT_EQ(stale->annotated_accesses, 0u);

  const auto stale_list = Sanitizer::global().stale_annotations();
  bool flagged = false;
  for (const auto& why : stale_list) {
    EXPECT_EQ(why.find("live annotation"), std::string::npos)
        << "a covering annotation must never be flagged stale";
    if (why.find("stale annotation") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

// reset() drops the accumulated annotation statistics with the findings.
TEST(SanitizerTest, ResetClearsAnnotationStats) {
  SanScope guard;
  sim::Device dev = make_device();
  sim::Stream& s = dev.stream(0);
  auto buf = dev.alloc<std::uint32_t>(1, "t.annreset");
  buf.h_fill(0);
  dev.memcpy_h2d(s, buf);
  auto buf_s = buf.span();
  sim::LaunchConfig lc{.grid_blocks = 2, .block_threads = 64};
  dev.launch(s, "ann_reset_kernel", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t != 0) return;
      sim::racy_ok allow(ctx, "test: reset drops me");
      ctx.store(buf_s, 0, std::uint32_t{1});
    });
  });
  s.synchronize();
  EXPECT_FALSE(Sanitizer::global().annotation_stats().empty());
  Sanitizer::global().reset();
  EXPECT_TRUE(Sanitizer::global().annotation_stats().empty());
}

}  // namespace
}  // namespace xbfs
