// Unified-status API tests: xbfs::Status semantics, admission outcomes
// as Status, and the validate-don't-clamp contract — nonsense
// configurations are rejected with std::invalid_argument by the Xbfs and
// Server constructors instead of being silently repaired.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/rmat.h"
#include "serve/admission_queue.h"
#include "serve/server.h"

namespace xbfs {
namespace {

TEST(StatusApi, DefaultStatusIsOkAndCarriesNoDetail) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::Ok);
  EXPECT_TRUE(s.detail().empty());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusApi, FactoriesProduceTheMatchingCode) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Invalid("x").code(), StatusCode::InvalidArgument);
  EXPECT_EQ(Status::QueueFull("x").code(), StatusCode::QueueFull);
  EXPECT_EQ(Status::ShuttingDown("x").code(), StatusCode::ShuttingDown);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::DeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::Unavailable);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::DataCorruption);
  EXPECT_EQ(Status::Fault("x").code(), StatusCode::FaultInjected);
  EXPECT_EQ(Status::Exhausted("x").code(), StatusCode::ResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::Internal);
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusApi, ComparesAgainstCodesFromBothSides) {
  const Status s = Status::QueueFull("at capacity");
  EXPECT_TRUE(s == StatusCode::QueueFull);
  EXPECT_TRUE(StatusCode::QueueFull == s);
  EXPECT_FALSE(s == StatusCode::Ok);
}

TEST(StatusApi, ToStringNamesTheCodeAndKeepsTheDetail) {
  const Status s = Status::Corruption("levels failed validation");
  EXPECT_EQ(s.to_string(), "data-corruption: levels failed validation");
  EXPECT_STREQ(status_code_name(StatusCode::QueueFull), "queue-full");
  EXPECT_STREQ(status_code_name(StatusCode::FaultInjected), "fault-injected");
  EXPECT_STREQ(status_code_name(StatusCode::Ok), "ok");
}

// --- XbfsConfig::validate ----------------------------------------------------

TEST(StatusApi, DefaultXbfsConfigValidates) {
  EXPECT_TRUE(core::XbfsConfig{}.validate().ok());
}

TEST(StatusApi, AlphaAboveOneIsTheValidDisableBottomUpIdiom) {
  core::XbfsConfig cfg;
  cfg.alpha = 2.0;  // the alpha-sweep benches rely on this staying legal
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(StatusApi, XbfsConfigRejectsNonsenseValues) {
  core::XbfsConfig cfg;
  cfg.alpha = 0.0;
  EXPECT_EQ(cfg.validate().code(), StatusCode::InvalidArgument);
  cfg = {};
  cfg.alpha = std::nan("");
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.growth_threshold = -1.0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.block_threads = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.stream_mode = core::StreamMode::TripleBinned;
  cfg.medium_min_degree = 4096;
  cfg.large_min_degree = 64;  // bins out of order
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.bottomup_spill_factor = 0.0;
  EXPECT_FALSE(cfg.validate().ok());
}

TEST(StatusApi, XbfsConstructorThrowsOnInvalidConfig) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  p.seed = 7;
  const graph::Csr g = graph::rmat_csr(p);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 1, .profiling = false});
  const auto dg = graph::DeviceCsr::upload(dev, g);

  core::XbfsConfig bad;
  bad.block_threads = 0;
  EXPECT_THROW(core::Xbfs(dev, dg, bad), std::invalid_argument);
}

// --- ServeConfig::validate ---------------------------------------------------

TEST(StatusApi, ServeConfigRejectsNonsenseValues) {
  serve::ServeConfig cfg;
  EXPECT_TRUE(cfg.validate().ok());
  cfg.num_gcds = 0;
  EXPECT_EQ(cfg.validate().code(), StatusCode::InvalidArgument);
  cfg = {};
  cfg.max_batch = 65;  // beyond the 64-bit sweep mask
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.min_sweep_sources = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.max_attempts = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.retry_backoff_ms = -1.0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.breaker_failure_threshold = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = {};
  cfg.xbfs.alpha = -0.5;  // nested traversal config is validated too
  EXPECT_FALSE(cfg.validate().ok());
}

TEST(StatusApi, ServerConstructorThrowsOnInvalidConfig) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  p.seed = 8;
  const graph::Csr g = graph::rmat_csr(p);

  serve::ServeConfig bad;
  bad.queue_capacity = 0;
  EXPECT_THROW(serve::Server(g, bad), std::invalid_argument);
}

// --- admission statuses ------------------------------------------------------

TEST(StatusApi, AdmissionQueueReportsWhyAPushWasTurnedAway) {
  serve::AdmissionQueue q(/*capacity=*/1);
  EXPECT_TRUE(q.try_push(serve::PendingQuery{}).ok());

  const Status full = q.try_push(serve::PendingQuery{});
  EXPECT_EQ(full.code(), StatusCode::QueueFull);
  EXPECT_NE(full.detail().find("capacity"), std::string::npos);

  q.close();
  const Status closed = q.try_push(serve::PendingQuery{});
  EXPECT_EQ(closed.code(), StatusCode::ShuttingDown);
}

TEST(StatusApi, SubmitReportsAdmissionOutcomesAsStatus) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  p.seed = 9;
  const graph::Csr g = graph::rmat_csr(p);
  serve::ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.batch_window_ms = 0.0;
  serve::Server server(g, cfg);

  serve::Admission bad = server.submit(g.num_vertices() + 1);
  EXPECT_FALSE(bad.accepted);
  EXPECT_EQ(bad.status.code(), StatusCode::InvalidArgument);
  EXPECT_NE(bad.status.detail().find("|V|"), std::string::npos);

  serve::Admission ok = server.submit(0);
  EXPECT_TRUE(ok.accepted);
  EXPECT_TRUE(ok.status.ok());
  server.dispatch_once();
  (void)ok.result.get();
}

}  // namespace
}  // namespace xbfs
