// Unit tests for the CSR builder, structural validation, I/O round-trips
// and the graph statistics helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/builder.h"
#include "graph/io.h"
#include "graph/stats.h"

namespace xbfs::graph {
namespace {

TEST(Builder, SymmetrizesAndSortsNeighbors) {
  const Csr g = build_csr(4, {{0, 2}, {0, 1}, {3, 0}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);  // each edge in both directions
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 3u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(n0[2], 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.neighbors(3)[0], 0u);
}

TEST(Builder, RemovesSelfLoopsAndDuplicates) {
  const Csr g = build_csr(3, {{0, 0}, {0, 1}, {1, 0}, {0, 1}, {2, 2}});
  // (0,0) and (2,2) dropped; (0,1) appears once per direction.
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Builder, DirectedModeKeepsOrientation) {
  BuildOptions opt;
  opt.symmetrize = false;
  const Csr g = build_csr(3, {{0, 1}, {1, 2}}, opt);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Builder, KeepDuplicatesWhenRequested) {
  BuildOptions opt;
  opt.dedup = false;
  opt.symmetrize = false;
  const Csr g = build_csr(2, {{0, 1}, {0, 1}, {0, 1}}, opt);
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(Builder, EmptyGraph) {
  const Csr g = build_csr(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(CsrValidate, AcceptsWellFormed) {
  const Csr g = build_csr(10, {{0, 1}, {1, 2}, {5, 9}});
  EXPECT_TRUE(g.validate().empty()) << g.validate();
}

TEST(CsrValidate, RejectsOutOfRangeColumn) {
  std::vector<eid_t> offsets = {0, 1};
  std::vector<vid_t> cols = {7};  // vertex 7 does not exist in a 1-vertex graph
  const Csr g(std::move(offsets), std::move(cols));
  EXPECT_FALSE(g.validate().empty());
}

TEST(Csr, PayloadBytesMatchesLayout) {
  const Csr g = build_csr(4, {{0, 1}});
  EXPECT_EQ(g.payload_bytes(), 5 * sizeof(eid_t) + 2 * sizeof(vid_t));
}

TEST(Csr, MaxDegreeAndAvgDegree) {
  const Csr g = build_csr(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 6.0 / 4.0);
}

// The epoch-mixing contract (docs/dynamic.md): equal structure at an equal
// epoch hashes equal; the same structure at a different epoch must not,
// so serve::ResultCache keys can never alias across update batches.
TEST(Csr, FingerprintEpochMixing) {
  const Csr a = build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const Csr b = build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(7), b.fingerprint(7));
  // Static callers keep their historical hash: default epoch is 0.
  EXPECT_EQ(a.fingerprint(), a.fingerprint(0));
  EXPECT_NE(a.fingerprint(0), a.fingerprint(1));
  EXPECT_NE(a.fingerprint(1), a.fingerprint(2));
  // Structure still dominates: different graphs differ at the same epoch.
  const Csr c = build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_NE(a.fingerprint(3), c.fingerprint(3));
}

// The salt-mixing contract (docs/sharding.md), the epoch contract's twin:
// the sharded tier keys its result cache on mix_fingerprint(fp, layout
// hash), so results computed under one partition layout are never served
// after a re-shard of the same graph.
TEST(Csr, FingerprintSaltMixing) {
  const Csr a = build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::uint64_t fp = a.fingerprint();
  // Mixing is deterministic and separates salts (and the unsalted key).
  EXPECT_EQ(mix_fingerprint(fp, 4), mix_fingerprint(fp, 4));
  EXPECT_NE(mix_fingerprint(fp, 4), mix_fingerprint(fp, 8));
  EXPECT_NE(mix_fingerprint(fp, 4), fp);
  // Zero is a real salt, not an identity: even salt 0 moves the key.
  EXPECT_NE(mix_fingerprint(fp, 0), fp);
  // Structure still dominates: different graphs differ under the same salt.
  const Csr c = build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_NE(mix_fingerprint(fp, 4), mix_fingerprint(c.fingerprint(), 4));
  // Salt and epoch mixing compose without aliasing each other.
  EXPECT_NE(mix_fingerprint(a.fingerprint(1), 4),
            mix_fingerprint(a.fingerprint(2), 4));
}

class IoRoundTrip : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return (std::filesystem::temp_directory_path() /
            (std::string("xbfs_io_test_") + name))
        .string();
  }
  void TearDown() override {
    for (const auto& p : created_) std::filesystem::remove(p);
  }
  std::vector<std::string> created_;
};

TEST_F(IoRoundTrip, TextEdgeList) {
  const std::string p = path("edges.txt");
  created_.push_back(p);
  const std::vector<Edge> edges = {{0, 3}, {2, 1}, {4, 4}};
  write_edge_list_text(p, edges);
  vid_t n = 0;
  const std::vector<Edge> back = read_edge_list_text(p, &n);
  EXPECT_EQ(back, edges);
  EXPECT_EQ(n, 5u);
}

TEST_F(IoRoundTrip, TextParserSkipsComments) {
  const std::string p = path("comments.txt");
  created_.push_back(p);
  {
    std::FILE* f = std::fopen(p.c_str(), "w");
    std::fputs("# SNAP-style header\n% matrix-market style\n1 2\n\n3 4\n", f);
    std::fclose(f);
  }
  const std::vector<Edge> back = read_edge_list_text(p);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], (Edge{1, 2}));
  EXPECT_EQ(back[1], (Edge{3, 4}));
}

TEST_F(IoRoundTrip, BinaryEdgeList) {
  const std::string p = path("edges.bin");
  created_.push_back(p);
  const std::vector<Edge> edges = {{10, 20}, {30, 40}, {0, 0}};
  write_edge_list_binary(p, 41, edges);
  vid_t n = 0;
  EXPECT_EQ(read_edge_list_binary(p, &n), edges);
  EXPECT_EQ(n, 41u);
}

TEST_F(IoRoundTrip, CsrBinary) {
  const std::string p = path("graph.csr");
  created_.push_back(p);
  const Csr g = build_csr(6, {{0, 1}, {1, 2}, {2, 3}, {4, 5}});
  write_csr_binary(p, g);
  const Csr back = read_csr_binary(p);
  EXPECT_EQ(back.offsets(), g.offsets());
  EXPECT_EQ(back.cols(), g.cols());
}

TEST_F(IoRoundTrip, BadMagicIsRejected) {
  const std::string p = path("bad.bin");
  created_.push_back(p);
  {
    std::FILE* f = std::fopen(p.c_str(), "wb");
    const char junk[32] = "not a graph";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(read_edge_list_binary(p), std::runtime_error);
  EXPECT_THROW(read_csr_binary(p), std::runtime_error);
}

TEST_F(IoRoundTrip, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_text("/nonexistent/nowhere.txt"),
               std::runtime_error);
}

TEST(Stats, DegreeStatsOnStar) {
  // Star: center degree n-1, leaves degree 1.
  std::vector<Edge> edges;
  for (vid_t v = 1; v < 10; ++v) edges.push_back({0, v});
  const Csr g = build_csr(10, std::move(edges));
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max_degree, 9u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 18.0 / 10.0);
  EXPECT_EQ(s.isolated, 0u);
}

TEST(Stats, FrontierRatioSumsToReachedFraction) {
  const Csr g = build_csr(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});  // path + iso
  const std::vector<double> r = frontier_edge_ratio(g, 0);
  double total = 0;
  for (double x : r) total += x;
  // Path of 5 vertices: all 8 directed entries belong to reached vertices.
  EXPECT_DOUBLE_EQ(total, 1.0);
  EXPECT_EQ(r.size(), 5u);  // levels 0..4
}

TEST(Stats, FrontierSizesMatchPathStructure) {
  const Csr g = build_csr(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto sizes = frontier_sizes(g, 0);
  ASSERT_EQ(sizes.size(), 4u);
  for (const auto s : sizes) EXPECT_EQ(s, 1u);
}

TEST(Stats, BoxSummaryQuartiles) {
  BoxSummary b = box_summary({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.median, 3);
  EXPECT_DOUBLE_EQ(b.max, 5);
  EXPECT_DOUBLE_EQ(b.q1, 2);
  EXPECT_DOUBLE_EQ(b.q3, 4);
  EXPECT_EQ(b.count, 5u);
  EXPECT_EQ(box_summary({}).count, 0u);
}

}  // namespace
}  // namespace xbfs::graph
