// Failure-injection tests: resource exhaustion, invalid launches, corrupted
// inputs — every failure path must surface as a typed error, never as
// silent corruption.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/xbfs.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/device_csr.h"
#include "graph/io.h"
#include "graph/reference.h"
#include "hipsim/hipsim.h"

namespace xbfs {
namespace {

TEST(FailureInjection, DeviceMemoryExhaustionThrowsBadAlloc) {
  sim::DeviceProfile p = sim::DeviceProfile::test_profile();
  p.device_mem_bytes = 1 << 20;  // 1 MB device
  sim::Device dev(p, sim::SimOptions{.num_workers = 1});
  auto ok = dev.alloc<std::uint8_t>(1 << 19);  // fits
  EXPECT_EQ(ok.size(), std::size_t{1} << 19);
  EXPECT_THROW(dev.alloc<std::uint8_t>(1 << 20), std::bad_alloc);
}

TEST(FailureInjection, LdsExhaustionThrows) {
  sim::SimOptions o;
  o.num_workers = 1;
  o.lds_bytes = 256;
  sim::Device dev(sim::DeviceProfile::test_profile(), o);
  EXPECT_THROW(
      dev.launch("lds_hog", sim::LaunchConfig{1, 64, 1.0},
                 [](sim::BlockCtx& blk) { blk.shmem().alloc<double>(1024); }),
      std::runtime_error);
}

TEST(FailureInjection, InvalidLaunchConfigurationThrows) {
  sim::Device dev(sim::DeviceProfile::test_profile(),
                  sim::SimOptions{.num_workers = 1});
  auto noop = [](sim::BlockCtx&) {};
  EXPECT_THROW(dev.launch("bad", sim::LaunchConfig{0, 64, 1.0}, noop),
               std::invalid_argument);
  EXPECT_THROW(dev.launch("bad", sim::LaunchConfig{1, 0, 1.0}, noop),
               std::invalid_argument);
  EXPECT_THROW(
      dev.launch("bad",
                 sim::LaunchConfig{1, dev.profile().max_block_threads + 1,
                                   1.0},
                 noop),
      std::invalid_argument);
}

TEST(FailureInjection, CorruptedCsrIsRejectedByValidation) {
  // Non-monotone offsets.
  {
    std::vector<graph::eid_t> offsets = {0, 3, 1, 4};
    std::vector<graph::vid_t> cols = {0, 1, 2, 0};
    const graph::Csr g(std::move(offsets), std::move(cols));
    EXPECT_FALSE(g.validate().empty());
  }
  // Out-of-range neighbor.
  {
    std::vector<graph::eid_t> offsets = {0, 2};
    std::vector<graph::vid_t> cols = {0, 9};
    const graph::Csr g(std::move(offsets), std::move(cols));
    EXPECT_FALSE(g.validate().empty());
  }
}

TEST(FailureInjection, TruncatedBinaryFilesThrow) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "xbfs_truncated.bin").string();
  // Write a valid file, then truncate it mid-payload.
  graph::write_edge_list_binary(path, 10,
                                {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  fs::resize_file(path, fs::file_size(path) - 6);
  EXPECT_THROW(graph::read_edge_list_binary(path), std::runtime_error);
  fs::remove(path);
}

TEST(FailureInjection, MalformedTextEdgeListThrows) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "xbfs_malformed.txt").string();
  {
    std::ofstream out(path);
    out << "1 2\nthis is not an edge\n3 4\n";
  }
  EXPECT_THROW(graph::read_edge_list_text(path), std::runtime_error);
  fs::remove(path);
}

TEST(FailureInjection, ValidatorCatchesSimulatedKernelBug) {
  // Simulate a buggy traversal result (the kind a broken enqueue would
  // produce: a level-2 vertex claimed at level 1) and confirm the
  // validation harness the tests rely on rejects it.
  const graph::Csr g =
      graph::build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto levels = graph::reference_bfs(g, 0);
  levels[2] = 1;  // corrupt
  EXPECT_FALSE(graph::validate_bfs_levels(g, 0, levels).empty());
}

TEST(FailureInjection, UnknownDatasetNameThrows) {
  EXPECT_THROW(graph::dataset_from_name("R99"), std::invalid_argument);
}

}  // namespace
}  // namespace xbfs
