// Batched multi-source BFS: splitting arbitrary source lists into <=64-way
// sweeps, the dedup/clamp contract of group_sources, and byte-identical
// agreement between the batched path, the single-source XBFS runner and the
// host reference — the invariant the serving engine's correctness rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "algos/multi_bfs.h"
#include "core/xbfs.h"
#include "graph/builder.h"
#include "graph/device_csr.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs::algos {
namespace {

sim::Device make_device() {
  return sim::Device(sim::DeviceProfile::mi250x_gcd(),
                     sim::SimOptions{.num_workers = 2});
}

graph::Csr undirected_rmat(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

graph::Csr chain(graph::vid_t n) {
  std::vector<graph::Edge> e;
  for (graph::vid_t v = 0; v + 1 < n; ++v) e.push_back({v, v + 1});
  return graph::build_csr(n, std::move(e));
}

// --- multi_source_bfs_batched ----------------------------------------------

TEST(MultiBfsBatched, SplitsMoreThan64SourcesIntoMultipleSweeps) {
  const graph::Csr g = undirected_rmat(10, 21);
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const auto giant = graph::largest_component_vertices(g);

  std::vector<graph::vid_t> sources;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100; ++i) {
    sources.push_back(giant[rng() % giant.size()]);
  }
  // 100 sources exceed one sweep's hard 64-bit width; the direct API
  // rejects them while the batched API splits into ceil(100/64) sweeps.
  EXPECT_THROW(multi_source_bfs(dev, dg, sources), std::invalid_argument);
  const MultiBfsResult r = multi_source_bfs_batched(dev, dg, sources);
  ASSERT_EQ(r.levels.size(), sources.size());
  // Spot-check across the sweep boundary (indices 63, 64) and the ends.
  for (std::size_t si : {0ul, 63ul, 64ul, 99ul}) {
    EXPECT_EQ(r.levels[si], graph::reference_bfs(g, sources[si]))
        << "source index " << si;
  }
  EXPECT_GT(r.total_ms, 0.0);
}

TEST(MultiBfsBatched, ExactMultiplesOf64) {
  const graph::Csr g = undirected_rmat(9, 22);
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const auto giant = graph::largest_component_vertices(g);
  std::vector<graph::vid_t> sources;
  for (int i = 0; i < 128; ++i) {
    sources.push_back(giant[(i * 131) % giant.size()]);
  }
  const MultiBfsResult r = multi_source_bfs_batched(dev, dg, sources);
  ASSERT_EQ(r.levels.size(), 128u);
  for (std::size_t si : {0ul, 64ul, 127ul}) {
    EXPECT_EQ(r.levels[si], graph::reference_bfs(g, sources[si]));
  }
}

TEST(MultiBfsBatched, RejectsEmptyInput) {
  const graph::Csr g = chain(8);
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  EXPECT_THROW(multi_source_bfs_batched(dev, dg, {}), std::invalid_argument);
}

TEST(MultiBfsBatched, UnreachableSourcesStayIsolated) {
  // Two disconnected chains: a BFS from one never reaches the other.
  std::vector<graph::Edge> e;
  for (graph::vid_t v = 0; v + 1 < 10; ++v) e.push_back({v, v + 1});
  for (graph::vid_t v = 10; v + 1 < 20; ++v) e.push_back({v, v + 1});
  const graph::Csr g = graph::build_csr(20, std::move(e));
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);

  const std::vector<graph::vid_t> sources = {0, 15};
  const MultiBfsResult r = multi_source_bfs_batched(dev, dg, sources);
  ASSERT_EQ(r.levels.size(), 2u);
  for (graph::vid_t v = 0; v < 10; ++v) {
    EXPECT_GE(r.levels[0][v], 0) << v;
    EXPECT_EQ(r.levels[1][v], -1) << v;
  }
  for (graph::vid_t v = 10; v < 20; ++v) {
    EXPECT_EQ(r.levels[0][v], -1) << v;
    EXPECT_GE(r.levels[1][v], 0) << v;
  }
  EXPECT_EQ(r.levels[0], graph::reference_bfs(g, 0));
  EXPECT_EQ(r.levels[1], graph::reference_bfs(g, 15));
}

TEST(MultiBfsBatched, DuplicateSourcesEachGetTheirOwnLevels) {
  const graph::Csr g = undirected_rmat(9, 23);
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t hot = giant[0];
  const std::vector<graph::vid_t> sources = {hot, giant[1], hot, hot,
                                             giant[2], giant[1]};
  const MultiBfsResult r = multi_source_bfs_batched(dev, dg, sources);
  ASSERT_EQ(r.levels.size(), sources.size());
  const auto ref_hot = graph::reference_bfs(g, hot);
  EXPECT_EQ(r.levels[0], ref_hot);
  EXPECT_EQ(r.levels[2], ref_hot);
  EXPECT_EQ(r.levels[3], ref_hot);
  EXPECT_EQ(r.levels[1], r.levels[5]);
  EXPECT_EQ(r.levels[4], graph::reference_bfs(g, giant[2]));
}

// --- agreement with the single-source runner --------------------------------

TEST(MultiBfsBatched, ByteIdenticalToXbfsOnRmat) {
  const graph::Csr g = undirected_rmat(11, 24);
  sim::Device dev = make_device();
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const auto giant = graph::largest_component_vertices(g);

  std::vector<graph::vid_t> sources;
  for (int i = 0; i < 70; ++i) {
    sources.push_back(giant[(i * 613) % giant.size()]);
  }
  const MultiBfsResult batched = multi_source_bfs_batched(dev, dg, sources);

  core::Xbfs xbfs(dev, dg);
  for (std::size_t si : {0ul, 1ul, 33ul, 64ul, 69ul}) {
    const core::BfsResult single = xbfs.run(sources[si]);
    ASSERT_EQ(batched.levels[si], single.levels) << "source " << sources[si];
  }
}

TEST(MultiBfsBatched, ByteIdenticalToXbfsOnChain) {
  // A deep, pencil-thin graph: the worst case for frontier heuristics and
  // a stress test for level-at-a-time agreement.
  const graph::Csr g = chain(512);
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);

  const std::vector<graph::vid_t> sources = {0, 255, 511, 0, 100};
  const MultiBfsResult batched = multi_source_bfs_batched(dev, dg, sources);

  core::Xbfs xbfs(dev, dg);
  for (std::size_t si = 0; si < sources.size(); ++si) {
    const core::BfsResult single = xbfs.run(sources[si]);
    ASSERT_EQ(batched.levels[si], single.levels) << "source " << sources[si];
    ASSERT_EQ(batched.levels[si], graph::reference_bfs(g, sources[si]));
  }
}

// --- group_sources contract --------------------------------------------------

TEST(GroupSources, DeduplicatesRepeatedSources) {
  const graph::Csr g = chain(64);
  const std::vector<graph::vid_t> sources = {5, 9, 5, 5, 40, 9, 5};
  const auto grouped = group_sources(g, sources, 4);
  std::vector<graph::vid_t> sorted = grouped;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<graph::vid_t>{5, 9, 40}));
}

TEST(GroupSources, AllDuplicatesCollapseToOne) {
  const graph::Csr g = chain(16);
  const auto grouped = group_sources(g, {3, 3, 3, 3, 3}, 64);
  EXPECT_EQ(grouped, (std::vector<graph::vid_t>{3}));
}

TEST(GroupSources, ClampsOversizedGroupSize) {
  // group_size > 64 can never be dispatched in one sweep; the call must
  // clamp rather than build impossible groups (and must not crash).
  const graph::Csr g = undirected_rmat(9, 25);
  const auto giant = graph::largest_component_vertices(g);
  std::vector<graph::vid_t> sources;
  for (std::size_t i = 0; i < 96 && i < giant.size(); ++i) {
    sources.push_back(giant[i]);
  }
  auto distinct = sources;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  for (unsigned gs : {1000u, 65u, 0u}) {
    const auto grouped = group_sources(g, sources, gs);
    ASSERT_EQ(grouped.size(), distinct.size()) << "group_size " << gs;
    auto sorted = grouped;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, distinct) << "group_size " << gs;
  }
}

TEST(GroupSources, PreservesFirstOccurrenceOrderWhenTrivial) {
  // group_size == 1 (after clamp) keeps the deduped input order: there is
  // nothing to group.
  const graph::Csr g = chain(32);
  const auto grouped = group_sources(g, {20, 4, 20, 8, 4}, 1);
  EXPECT_EQ(grouped, (std::vector<graph::vid_t>{20, 4, 8}));
}

}  // namespace
}  // namespace xbfs::algos
