// TraversalEngine conformance suite: every engine in the repository —
// the adaptive XBFS runner, the three device baselines, the host CPU
// engines — is exercised through the base-class interface and must produce
// levels bit-identical to the host reference.  This interchangeability is
// what the serving engine's degradation ladder relies on: any rung can
// stand in for any other without clients noticing anything but latency.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baseline/cpu_bfs.h"
#include "baseline/gunrock_like.h"
#include "baseline/hier_queue.h"
#include "baseline/simple_scan.h"
#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs {
namespace {

graph::Csr toy_graph(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

/// Everything needed to build the full engine roster against one graph.
struct EngineRig {
  graph::Csr g;
  sim::Device dev;
  graph::DeviceCsr dg;
  std::vector<std::unique_ptr<core::TraversalEngine>> engines;

  explicit EngineRig(unsigned scale, std::uint64_t seed)
      : g(toy_graph(scale, seed)),
        dev(sim::DeviceProfile::mi250x_gcd(),
            sim::SimOptions{.num_workers = 1, .profiling = false}),
        dg(graph::DeviceCsr::upload(dev, g)) {
    dev.warmup();
    engines.push_back(std::make_unique<core::Xbfs>(dev, dg));
    engines.push_back(std::make_unique<baseline::SimpleScanBfs>(dev, dg));
    engines.push_back(std::make_unique<baseline::HierQueueBfs>(dev, dg));
    engines.push_back(std::make_unique<baseline::GunrockLikeBfs>(dev, dg));
    engines.push_back(std::make_unique<baseline::CpuBfsEngine>(
        g, baseline::CpuBfsEngine::Mode::Serial));
    engines.push_back(std::make_unique<baseline::CpuBfsEngine>(
        g, baseline::CpuBfsEngine::Mode::Parallel, 2));
  }
};

TEST(TraversalEngine, EveryEngineMatchesTheHostReference) {
  EngineRig rig(/*scale=*/9, /*seed=*/101);
  const auto giant = graph::largest_component_vertices(rig.g);
  ASSERT_FALSE(giant.empty());
  const graph::vid_t sources[] = {giant.front(), giant[giant.size() / 2], 0};

  for (const graph::vid_t src : sources) {
    const std::vector<std::int32_t> want = graph::reference_bfs(rig.g, src);
    std::int32_t max_level = 0;
    for (const std::int32_t lv : want) max_level = std::max(max_level, lv);
    for (const auto& e : rig.engines) {
      const core::BfsResult r = e->run(src);
      EXPECT_EQ(r.levels, want) << e->name() << " diverges from reference"
                                << " at source " << src;
      // One depth convention across every engine (and the serving sweep
      // path): number of BFS levels run = deepest reached level + 1.
      EXPECT_EQ(r.depth, static_cast<std::uint32_t>(max_level) + 1)
          << e->name() << " depth convention diverges at source " << src;
    }
  }
}

TEST(TraversalEngine, RepeatedRunsReuseBuffersCorrectly) {
  EngineRig rig(/*scale=*/8, /*seed=*/102);
  const auto giant = graph::largest_component_vertices(rig.g);
  ASSERT_GE(giant.size(), 2u);
  // Back-to-back runs from different sources through the same engine
  // object: no state may leak from the first traversal into the second.
  for (const auto& e : rig.engines) {
    const core::BfsResult a = e->run(giant[0]);
    const core::BfsResult b = e->run(giant[1]);
    EXPECT_EQ(a.levels, graph::reference_bfs(rig.g, giant[0])) << e->name();
    EXPECT_EQ(b.levels, graph::reference_bfs(rig.g, giant[1])) << e->name();
  }
}

TEST(TraversalEngine, NamesAreStableAndDistinct) {
  EngineRig rig(/*scale=*/8, /*seed=*/103);
  std::vector<std::string> names;
  for (const auto& e : rig.engines) names.emplace_back(e->name());
  const std::vector<std::string> want = {"xbfs",       "simple-scan",
                                         "hier-queue", "gunrock-like",
                                         "cpu-serial", "cpu-parallel"};
  EXPECT_EQ(names, want);
}

TEST(TraversalEngine, CapabilitiesReflectWhereAndHowTheEngineRuns) {
  EngineRig rig(/*scale=*/8, /*seed=*/104);
  // Device engines are faultable; host engines are not.  Only the adaptive
  // runner picks strategies per level.
  const core::EngineCapabilities xbfs_caps = rig.engines[0]->capabilities();
  EXPECT_TRUE(xbfs_caps.on_device);
  EXPECT_TRUE(xbfs_caps.adaptive);
  EXPECT_FALSE(xbfs_caps.builds_parents);
  for (std::size_t i = 1; i < 4; ++i) {
    const core::EngineCapabilities c = rig.engines[i]->capabilities();
    EXPECT_TRUE(c.on_device) << rig.engines[i]->name();
    EXPECT_FALSE(c.adaptive) << rig.engines[i]->name();
  }
  for (std::size_t i = 4; i < rig.engines.size(); ++i) {
    EXPECT_FALSE(rig.engines[i]->capabilities().on_device)
        << rig.engines[i]->name();
  }
}

TEST(TraversalEngine, ForcedStrategyAndParentsShowUpInCapabilities) {
  const graph::Csr g = toy_graph(8, 105);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 1, .profiling = false});
  dev.warmup();
  const auto dg = graph::DeviceCsr::upload(dev, g);

  core::XbfsConfig cfg;
  cfg.forced_strategy = static_cast<int>(core::Strategy::SingleScan);
  cfg.build_parents = true;
  core::Xbfs forced(dev, dg, cfg);
  const core::EngineCapabilities caps = forced.capabilities();
  EXPECT_FALSE(caps.adaptive);
  EXPECT_TRUE(caps.builds_parents);

  const auto giant = graph::largest_component_vertices(g);
  const core::BfsResult r = forced.run(giant[0]);
  EXPECT_EQ(r.levels, graph::reference_bfs(g, giant[0]));
  ASSERT_EQ(r.parent.size(), g.num_vertices());
}

TEST(TraversalEngine, HostEngineResultCarriesDepthAndThroughputFields) {
  const graph::Csr g = toy_graph(9, 106);
  const auto giant = graph::largest_component_vertices(g);
  baseline::CpuBfsEngine cpu(g, baseline::CpuBfsEngine::Mode::Serial);
  const core::BfsResult r = cpu.run(giant[0]);

  std::int32_t max_level = 0;
  for (const std::int32_t lv : r.levels) max_level = std::max(max_level, lv);
  EXPECT_EQ(r.depth, static_cast<std::uint32_t>(max_level) + 1);
  EXPECT_GT(r.edges_traversed, 0u);
  EXPECT_GE(r.gteps, 0.0);
}

}  // namespace
}  // namespace xbfs
