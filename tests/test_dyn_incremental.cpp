// Dynamic-graph subsystem tests: DeltaCsr overlay semantics, GraphStore
// snapshot versioning / update-log replay, and the property that
// dyn::IncrementalBfs levels always match a fresh reference BFS on the
// updated graph — whether a run was served by incremental repair or by a
// full recompute.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "dyn/delta_ref.h"
#include "dyn/graph_store.h"
#include "dyn/incremental_bfs.h"
#include "graph/builder.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs::dyn {
namespace {

using graph::vid_t;

graph::Csr path5() {
  return graph::build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
}

// --- DeltaCsr overlay semantics -------------------------------------------

TEST(DeltaCsr, InsertDeleteRevive) {
  DeltaCsr g(path5());
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 3));

  EdgeBatch b;
  b.insert(0, 3);
  b.erase(1, 2);
  const ApplyStats st = g.apply(b);
  EXPECT_EQ(st.inserts_applied, 1u);
  EXPECT_EQ(st.deletes_applied, 1u);
  EXPECT_EQ(st.noops, 0u);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(3, 0));  // undirected
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.num_edges(), path5().num_edges());  // -2 tomb +2 extra
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(0), 2u);

  // Re-inserting a tombstoned base edge revives it in place.
  EdgeBatch revive;
  revive.insert(1, 2);
  const ApplyStats rst = g.apply(revive);
  EXPECT_EQ(rst.inserts_applied, 1u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.tombstone_entries(), 0u);
}

TEST(DeltaCsr, NoopsAreCountedNotApplied) {
  DeltaCsr g(path5());
  EdgeBatch b;
  b.insert(0, 1);   // already present
  b.erase(0, 4);    // not present
  b.insert(2, 2);   // self-loop
  b.erase(9, 1);    // out of range
  const ApplyStats st = g.apply(b);
  EXPECT_EQ(st.inserts_applied, 0u);
  EXPECT_EQ(st.deletes_applied, 0u);
  EXPECT_EQ(st.noops, 4u);
  EXPECT_EQ(g.num_edges(), path5().num_edges());
}

TEST(DeltaCsr, EveryBatchBumpsTheEpoch) {
  DeltaCsr g(path5());
  EXPECT_EQ(g.epoch(), 0u);
  EdgeBatch noop;
  noop.insert(0, 1);
  g.apply(noop);
  EXPECT_EQ(g.epoch(), 1u);  // even an all-noop batch is a new epoch
  EdgeBatch real;
  real.insert(0, 3);
  g.apply(real);
  EXPECT_EQ(g.epoch(), 2u);
}

TEST(DeltaCsr, FingerprintChangesOnApplyAndMixesEpoch) {
  DeltaCsr g(path5());
  const std::uint64_t fp0 = g.fingerprint();
  EdgeBatch b;
  b.insert(0, 3);
  g.apply(b);
  const std::uint64_t fp1 = g.fingerprint();
  EXPECT_NE(fp0, fp1);
  // Undo the structural change; the epoch still advanced, so the
  // fingerprint must not return to fp0 (cache keys never alias epochs).
  EdgeBatch undo;
  undo.erase(0, 3);
  g.apply(undo);
  EXPECT_NE(g.fingerprint(), fp0);
  EXPECT_NE(g.fingerprint(), fp1);
}

TEST(DeltaCsr, CompactPreservesGraphAndEpoch) {
  DeltaCsr g(path5());
  EdgeBatch b;
  b.insert(0, 3);
  b.insert(1, 4);
  b.erase(2, 3);
  g.apply(b);
  const auto before = reference_bfs(g, 0);
  const std::uint64_t epoch = g.epoch();
  EXPECT_GT(g.overlay_density(), 0.0);

  g.compact();
  EXPECT_EQ(g.overlay_density(), 0.0);
  EXPECT_EQ(g.epoch(), epoch);
  EXPECT_EQ(g.base_version(), 1u);
  EXPECT_EQ(reference_bfs(g, 0), before);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(DeltaCsr, MaterializeMatchesBuilder) {
  DeltaCsr g(path5());
  EdgeBatch b;
  b.insert(0, 4);
  b.erase(1, 2);
  g.apply(b);
  const graph::Csr m = g.materialize();
  const graph::Csr expect =
      graph::build_csr(5, {{0, 1}, {2, 3}, {3, 4}, {0, 4}});
  EXPECT_EQ(m.offsets(), expect.offsets());
  EXPECT_EQ(m.cols(), expect.cols());
}

TEST(DeltaCsr, RejectsUnsortedBaseAdjacency) {
  // Binary-search membership needs strictly increasing neighbor lists.
  const graph::Csr bad({0, 2, 4}, {1, 1, 0, 0});  // duplicate neighbors
  EXPECT_THROW(DeltaCsr{bad}, std::invalid_argument);
}

// --- GraphStore snapshots + update log ------------------------------------

TEST(GraphStore, SnapshotsAreImmutableUnderWrites) {
  GraphStore store(path5());
  const Snapshot s0 = store.snapshot();
  EXPECT_EQ(s0.epoch, 0u);

  EdgeBatch b;
  b.erase(0, 1);
  store.apply(b);
  const Snapshot s1 = store.snapshot();

  // The old snapshot still sees the pre-update graph.
  EXPECT_TRUE(s0.graph->has_edge(0, 1));
  EXPECT_FALSE(s1.graph->has_edge(0, 1));
  EXPECT_EQ(s1.epoch, 1u);
  EXPECT_NE(s0.fingerprint, s1.fingerprint);
}

TEST(GraphStore, OpsBetweenReplaysTheGap) {
  GraphStore store(path5());
  EdgeBatch b1, b2;
  b1.insert(0, 3);
  b2.erase(3, 4);
  store.apply(b1);
  store.apply(b2);

  const auto gap = store.ops_between(0, 2);
  ASSERT_TRUE(gap.has_value());
  ASSERT_EQ(gap->size(), 2u);
  EXPECT_TRUE(gap->ops[0].insert);
  EXPECT_FALSE(gap->ops[1].insert);

  const auto tail = store.ops_between(1, 2);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), 1u);

  const auto empty = store.ops_between(2, 2);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  EXPECT_FALSE(store.ops_between(3, 2).has_value());  // backwards
}

TEST(GraphStore, OpsBetweenDistinguishesBadRangeFromTruncation) {
  GraphStore store(path5());
  EdgeBatch b;
  b.insert(0, 3);
  store.apply(b);

  // Invalid ranges are caller errors, not log truncation.
  bool truncated = true;
  EXPECT_FALSE(store.ops_between(2, 1, &truncated).has_value());
  EXPECT_FALSE(truncated);
  truncated = true;
  EXPECT_FALSE(store.ops_between(0, 99, &truncated).has_value());
  EXPECT_FALSE(truncated);
  // A satisfiable range leaves the flag false as well.
  truncated = true;
  EXPECT_TRUE(store.ops_between(0, 1, &truncated).has_value());
  EXPECT_FALSE(truncated);
}

TEST(GraphStore, TrimmedLogRefusesToReplay) {
  GraphStore store(path5(), {}, /*log_capacity=*/2);
  for (int i = 0; i < 4; ++i) {
    EdgeBatch b;
    b.insert(0, 3);  // alternates noop/insert; epoch bumps regardless
    b.erase(0, 3);
    store.apply(b);
  }
  // Epochs 1..2 fell off the two-entry log: the nullopt is reported as
  // truncation, distinct from a caller-error range.
  bool truncated = false;
  EXPECT_FALSE(store.ops_between(0, 4, &truncated).has_value());
  EXPECT_TRUE(truncated);
  truncated = true;
  EXPECT_TRUE(store.ops_between(2, 4, &truncated).has_value());
  EXPECT_FALSE(truncated);
}

TEST(GraphStore, CompactsPastDensityThreshold) {
  core::XbfsConfig cfg;
  cfg.dyn_compact_threshold = 0.25;
  GraphStore store(path5(), cfg);
  EdgeBatch big;
  big.insert(0, 2);
  big.insert(0, 3);
  big.insert(1, 3);
  store.apply(big);  // 6 directed overlay entries vs 8 base: density 0.75
  EXPECT_EQ(store.stats().compactions, 1u);
  const Snapshot s = store.snapshot();
  EXPECT_EQ(s.graph->overlay_density(), 0.0);
  EXPECT_EQ(s.graph->base_version(), 1u);
  EXPECT_TRUE(s.graph->has_edge(1, 3));
}

// --- IncrementalBfs -------------------------------------------------------

struct EngineFixture {
  sim::Device dev{sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2}};
};

void expect_matches_reference(const GraphStore& store, IncrementalBfs& eng,
                              vid_t src, const char* tag) {
  const Snapshot snap = store.snapshot();
  const core::BfsResult got = eng.run(src);
  const std::vector<std::int32_t> want = reference_bfs(*snap.graph, src);
  ASSERT_EQ(got.levels, want) << tag << " (epoch " << snap.epoch << ")";
  EXPECT_TRUE(validate_levels(*snap.graph, src, got.levels).empty()) << tag;
}

TEST(DynIncremental, RepairMatchesReferenceOnRandomChurn) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  p.seed = 42;
  const graph::Csr base = graph::rmat_csr(p);
  const vid_t n = base.num_vertices();

  EngineFixture fx;
  GraphStore store(base);
  core::XbfsConfig cfg;
  cfg.report_runs = false;
  IncrementalBfs eng(fx.dev, store, cfg);

  std::mt19937_64 rng(7);
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  const vid_t src = 1;

  expect_matches_reference(store, eng, src, "cold");

  for (int round = 0; round < 6; ++round) {
    EdgeBatch b;
    // ~20 random ops: delete existing edges, insert missing ones.
    const Snapshot cur = store.snapshot();
    for (int i = 0; i < 20; ++i) {
      const vid_t u = pick(rng);
      const vid_t v = pick(rng);
      if (u == v) continue;
      if (cur.graph->has_edge(u, v)) {
        b.erase(u, v);
      } else {
        b.insert(u, v);
      }
    }
    store.apply(b);
    expect_matches_reference(store, eng, src, "churn round");
  }

  const DynEngineStats st = eng.stats();
  EXPECT_EQ(st.runs, 7u);
  EXPECT_GT(st.repairs, 0u) << "property run never exercised repair";
  EXPECT_GT(st.recomputes, 0u) << "cold run must recompute";
}

TEST(DynIncremental, DeleteOnlyRepairMatchesReference) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  p.seed = 11;
  const graph::Csr base = graph::rmat_csr(p);

  EngineFixture fx;
  GraphStore store(base);
  core::XbfsConfig cfg;
  cfg.report_runs = false;
  IncrementalBfs eng(fx.dev, store, cfg);
  const vid_t src = 0;
  eng.run(src);

  std::mt19937_64 rng(3);
  std::uniform_int_distribution<vid_t> pick(0, base.num_vertices() - 1);
  for (int round = 0; round < 4; ++round) {
    EdgeBatch b;
    const Snapshot cur = store.snapshot();
    int found = 0;
    while (found < 8) {
      const vid_t u = pick(rng);
      if (cur.graph->degree(u) == 0) continue;
      std::vector<vid_t> nb;
      cur.graph->for_each_neighbor(u, [&](vid_t w) { nb.push_back(w); });
      b.erase(u, nb[found % nb.size()]);
      ++found;
    }
    store.apply(b);
    expect_matches_reference(store, eng, src, "delete-only round");
  }
  EXPECT_GT(eng.stats().repairs, 0u);
}

TEST(DynIncremental, BridgeDeletionDisconnectsComponent) {
  // 0-1-2  3-4-5 joined by bridge 2-3: deleting it must drop 3,4,5 to -1.
  const graph::Csr g =
      graph::build_csr(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  EngineFixture fx;
  GraphStore store(g);
  core::XbfsConfig cfg;
  cfg.report_runs = false;
  cfg.dyn_repair_ratio = 1.0;  // keep the repair path even when D is large
  IncrementalBfs eng(fx.dev, store, cfg);
  eng.run(0);

  EdgeBatch b;
  b.erase(2, 3);
  store.apply(b);
  const core::BfsResult r = eng.run(0);
  EXPECT_EQ(r.levels, (std::vector<std::int32_t>{0, 1, 2, -1, -1, -1}));
  EXPECT_GT(eng.stats().repairs, 0u);
}

TEST(DynIncremental, InsertReachesTheUnreached) {
  // Component {0,1} + isolated {2,3}: inserting 1-2 pulls both in.
  const graph::Csr g = graph::build_csr(4, {{0, 1}, {2, 3}});
  EngineFixture fx;
  GraphStore store(g);
  core::XbfsConfig cfg;
  cfg.report_runs = false;
  IncrementalBfs eng(fx.dev, store, cfg);
  const core::BfsResult cold = eng.run(0);
  EXPECT_EQ(cold.levels, (std::vector<std::int32_t>{0, 1, -1, -1}));

  EdgeBatch b;
  b.insert(1, 2);
  store.apply(b);
  const core::BfsResult warm = eng.run(0);
  EXPECT_EQ(warm.levels, (std::vector<std::int32_t>{0, 1, 2, 3}));
  EXPECT_GT(eng.stats().repairs, 0u);
}

TEST(DynIncremental, RatioBoundFallsBackToRecompute) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  p.seed = 5;
  EngineFixture fx;
  GraphStore store(graph::rmat_csr(p));
  core::XbfsConfig cfg;
  cfg.report_runs = false;
  cfg.dyn_repair_ratio = 1e-9;  // any non-empty footprint exceeds this
  IncrementalBfs eng(fx.dev, store, cfg);
  eng.run(0);

  EdgeBatch b;
  const Snapshot cur = store.snapshot();
  for (vid_t u = 0; u < cur.graph->num_vertices(); ++u) {
    if (cur.graph->degree(u) == 0) continue;
    cur.graph->for_each_neighbor(u, [&](vid_t w) {
      if (b.empty()) b.erase(u, w);
    });
    if (!b.empty()) break;
  }
  ASSERT_FALSE(b.empty());
  store.apply(b);
  expect_matches_reference(store, eng, 0, "ratio fallback");
  const DynEngineStats st = eng.stats();
  EXPECT_EQ(st.repairs, 0u);
  EXPECT_GT(st.fallbacks_ratio + st.recomputes, 1u);
}

TEST(DynIncremental, HistoryGapFallsBackToRecompute) {
  EngineFixture fx;
  GraphStore store(path5(), {}, /*log_capacity=*/1);
  core::XbfsConfig cfg;
  cfg.report_runs = false;
  IncrementalBfs eng(fx.dev, store, cfg);
  eng.run(0);
  for (int i = 0; i < 3; ++i) {
    EdgeBatch b;
    b.insert(0, 3);
    b.erase(0, 3);
    store.apply(b);
  }
  expect_matches_reference(store, eng, 0, "log gap");
  EXPECT_GT(eng.stats().fallbacks_log, 0u);
  EXPECT_EQ(eng.stats().repairs, 0u);
}

TEST(DynIncremental, SmallBatchRepairBeatsRecompute) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 9;
  const graph::Csr base = graph::rmat_csr(p);

  EngineFixture fx;
  GraphStore store(base);
  core::XbfsConfig cfg;
  cfg.report_runs = false;
  IncrementalBfs eng(fx.dev, store, cfg);
  const vid_t src = 0;
  eng.run(src);  // cold recompute, seeds the history

  // A small batch: well under 1% of |E|.
  EdgeBatch b;
  const Snapshot cur = store.snapshot();
  int deleted = 0;
  for (vid_t u = 0; u < cur.graph->num_vertices() && deleted < 4; ++u) {
    if (cur.graph->degree(u) < 3) continue;
    vid_t first = static_cast<vid_t>(-1);
    cur.graph->for_each_neighbor(u, [&](vid_t w) {
      if (first == static_cast<vid_t>(-1)) first = w;
    });
    b.erase(u, first);
    ++deleted;
  }
  store.apply(b);

  expect_matches_reference(store, eng, src, "repair leg");
  DynEngineStats st = eng.stats();
  ASSERT_EQ(st.repairs, 1u);
  const double repair_ms = st.repair_ms;

  // Force the recompute leg on the same epoch: identical final levels,
  // modelled on the same deterministic simulator.
  eng.clear_history();
  expect_matches_reference(store, eng, src, "recompute leg");
  st = eng.stats();
  ASSERT_EQ(st.recomputes, 2u);
  const double recompute_ms = st.recompute_ms / 2.0;  // mean of two runs

  EXPECT_LT(repair_ms, recompute_ms)
      << "incremental repair should beat full recompute on a small batch";
}

TEST(DynIncremental, StatsReadableWhileRunning) {
  EngineFixture fx;
  GraphStore store(path5());
  core::XbfsConfig cfg;
  cfg.report_runs = false;
  IncrementalBfs eng(fx.dev, store, cfg);
  std::thread reader([&] {
    for (int i = 0; i < 50; ++i) (void)eng.stats();
  });
  for (int i = 0; i < 5; ++i) eng.run(0);
  reader.join();
  EXPECT_EQ(eng.stats().runs, 5u);
}

}  // namespace
}  // namespace xbfs::dyn
