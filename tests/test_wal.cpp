// WAL codec and segment-writer property tests (docs/durability.md).
//
// The recovery contract rests on three codec properties exercised here:
// encode/decode is an exact round trip for arbitrary batches, any
// single-bit flip anywhere in a framed record is rejected (CRC-32 plus
// frame checks), and a short read ending at *every* byte boundary inside
// the final record truncates that record — never yields a phantom or a
// corrupted decode.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "store/wal.h"

namespace xbfs::store {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    const auto p = std::filesystem::temp_directory_path() /
                   (std::string("xbfs_wal_") + name + "_" +
                    std::to_string(::getpid()));
    created_.push_back(p.string());
    return p.string();
  }
  void TearDown() override {
    for (const auto& p : created_) std::filesystem::remove(p);
  }
  std::vector<std::string> created_;
};

WalRecord random_record(std::mt19937_64& rng, std::uint64_t epoch) {
  WalRecord rec;
  rec.epoch = epoch;
  rec.fingerprint = rng();
  rec.prev_fingerprint = rng();
  rec.flags = (rng() & 1) ? WalRecord::kFlagCompacted : 0;
  const std::size_t ops = rng() % 17;  // includes empty batches
  for (std::size_t i = 0; i < ops; ++i) {
    const auto u = static_cast<graph::vid_t>(rng() % 1000);
    const auto v = static_cast<graph::vid_t>(rng() % 1000);
    if (rng() & 1) {
      rec.batch.insert(u, v);
    } else {
      rec.batch.erase(u, v);
    }
  }
  return rec;
}

void expect_equal(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.prev_fingerprint, b.prev_fingerprint);
  EXPECT_EQ(a.flags, b.flags);
  ASSERT_EQ(a.batch.size(), b.batch.size());
  for (std::size_t i = 0; i < a.batch.size(); ++i) {
    EXPECT_EQ(a.batch.ops[i].u, b.batch.ops[i].u);
    EXPECT_EQ(a.batch.ops[i].v, b.batch.ops[i].v);
    EXPECT_EQ(a.batch.ops[i].insert, b.batch.ops[i].insert);
  }
}

TEST(WalCodec, Crc32MatchesIeeeCheckValue) {
  // The standard CRC-32 check vector; a table or polynomial mistake would
  // silently accept every record it also mis-wrote.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Seed chaining: one pass == two chained passes.
  const std::uint32_t whole = crc32("abcdef", 6);
  EXPECT_EQ(crc32("def", 3, crc32("abc", 3)), whole);
}

TEST(WalCodec, RoundTripProperty) {
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    const WalRecord rec = random_record(rng, static_cast<std::uint64_t>(trial));
    std::vector<std::uint8_t> buf;
    encode_record(rec, &buf);

    WalRecord back;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_record(buf.data(), buf.size(), &back, &consumed),
              DecodeResult::Ok);
    EXPECT_EQ(consumed, buf.size());
    expect_equal(rec, back);
  }
}

TEST(WalCodec, ConcatenatedRecordsDecodeInOrder) {
  std::mt19937_64 rng(7);
  std::vector<WalRecord> recs;
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 16; ++i) {
    recs.push_back(random_record(rng, static_cast<std::uint64_t>(i + 1)));
    encode_record(recs.back(), &buf);
  }
  std::size_t off = 0;
  for (const WalRecord& want : recs) {
    WalRecord got;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_record(buf.data() + off, buf.size() - off, &got,
                            &consumed),
              DecodeResult::Ok);
    expect_equal(want, got);
    off += consumed;
  }
  EXPECT_EQ(off, buf.size());
}

TEST(WalCodec, EverySingleBitFlipIsRejected) {
  std::mt19937_64 rng(99);
  const WalRecord rec = random_record(rng, 42);
  std::vector<std::uint8_t> clean;
  encode_record(rec, &clean);

  for (std::size_t bit = 0; bit < clean.size() * 8; ++bit) {
    std::vector<std::uint8_t> flipped = clean;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    WalRecord out;
    std::size_t consumed = 0;
    // A flip in the magic/length/CRC breaks framing; a flip in the payload
    // breaks the CRC (which detects all single-bit errors).  A flip that
    // inflates the length field may look like a torn record (NeedMore) —
    // what must never happen is a clean decode.
    EXPECT_NE(decode_record(flipped.data(), flipped.size(), &out, &consumed),
              DecodeResult::Ok)
        << "bit " << bit << " of " << clean.size() * 8;
  }
}

TEST(WalCodec, ShortReadAtEveryByteBoundaryTruncatesNotCorrupts) {
  std::mt19937_64 rng(5);
  const WalRecord rec = random_record(rng, 9);
  std::vector<std::uint8_t> buf;
  encode_record(rec, &buf);

  for (std::size_t n = 0; n < buf.size(); ++n) {
    WalRecord out;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_record(buf.data(), n, &out, &consumed),
              DecodeResult::NeedMore)
        << "prefix of " << n << " bytes";
  }
}

TEST_F(WalTest, WriterRoundTripThroughFile) {
  const std::string file = path("roundtrip");
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(file, &w).ok());

  std::mt19937_64 rng(11);
  std::vector<WalRecord> recs;
  for (int i = 0; i < 24; ++i) {
    recs.push_back(random_record(rng, static_cast<std::uint64_t>(i + 1)));
    ASSERT_TRUE(w.append(recs.back()).ok());
  }
  w.close();

  WalReadResult back;
  ASSERT_TRUE(read_wal(file, &back).ok());
  EXPECT_FALSE(back.torn_tail);
  EXPECT_EQ(back.valid_bytes, back.total_bytes);
  ASSERT_EQ(back.records.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    expect_equal(recs[i], back.records[i]);
  }
}

TEST_F(WalTest, ShortReadSweepOverFinalFileRecord) {
  // End-to-end satellite property: truncate a real segment at EVERY byte
  // boundary inside its final record; recovery must always see the first
  // N-1 records, flag a torn tail, and put valid_bytes at the N-1 point.
  const std::string file = path("tornsweep");
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(file, &w).ok());
  std::mt19937_64 rng(13);
  std::vector<WalRecord> recs;
  for (int i = 0; i < 4; ++i) {
    recs.push_back(random_record(rng, static_cast<std::uint64_t>(i + 1)));
    ASSERT_TRUE(w.append(recs.back()).ok());
  }
  const std::uint64_t full = w.bytes();
  w.close();

  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(file, &bytes).ok());
  ASSERT_EQ(bytes.size(), full);
  // Find where the final record starts: decode the first three.
  std::size_t prefix = kWalHeaderBytes;
  for (int i = 0; i < 3; ++i) {
    WalRecord out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_record(bytes.data() + prefix, bytes.size() - prefix,
                            &out, &consumed),
              DecodeResult::Ok);
    prefix += consumed;
  }

  const std::string torn = path("torncopy");
  for (std::size_t cut = prefix; cut < bytes.size(); ++cut) {
    {
      std::FILE* f = std::fopen(torn.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      if (cut > 0) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, f), cut);
      }
      std::fclose(f);
    }
    WalReadResult rr;
    ASSERT_TRUE(read_wal(torn, &rr).ok()) << "cut at " << cut;
    ASSERT_EQ(rr.records.size(), 3u) << "cut at " << cut;
    EXPECT_EQ(rr.torn_tail, cut != prefix) << "cut at " << cut;
    EXPECT_EQ(rr.valid_bytes, prefix) << "cut at " << cut;
    for (std::size_t i = 0; i < 3; ++i) expect_equal(recs[i], rr.records[i]);
  }
}

TEST_F(WalTest, OpenExistingDropsTheTornTail) {
  const std::string file = path("reopen");
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(file, &w).ok());
  std::mt19937_64 rng(17);
  const WalRecord r1 = random_record(rng, 1);
  const WalRecord r2 = random_record(rng, 2);
  ASSERT_TRUE(w.append(r1).ok());
  const std::uint64_t after_first = w.bytes();
  ASSERT_TRUE(w.append(r2).ok());
  w.close();

  // Reopen at the post-r1 truncation point (as recovery would after a torn
  // r2) and append a replacement: r2 must be gone, r3 in its place.
  WalWriter re;
  ASSERT_TRUE(WalWriter::open_existing(file, after_first, &re).ok());
  EXPECT_EQ(re.bytes(), after_first);
  const WalRecord r3 = random_record(rng, 2);
  ASSERT_TRUE(re.append(r3).ok());
  re.close();

  WalReadResult rr;
  ASSERT_TRUE(read_wal(file, &rr).ok());
  ASSERT_EQ(rr.records.size(), 2u);
  expect_equal(r1, rr.records[0]);
  expect_equal(r3, rr.records[1]);
  EXPECT_FALSE(rr.torn_tail);
}

TEST_F(WalTest, GarbageHeaderIsCorruptionNotTornTail) {
  const std::string file = path("garbage");
  {
    std::FILE* f = std::fopen(file.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a wal segment";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  WalReadResult rr;
  const xbfs::Status s = read_wal(file, &rr);
  EXPECT_TRUE(s == xbfs::StatusCode::DataCorruption) << s.to_string();

  WalReadResult missing;
  EXPECT_FALSE(read_wal(path("never_written"), &missing).ok());
}

}  // namespace
}  // namespace xbfs::store
