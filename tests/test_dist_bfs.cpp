// Tests for the distributed multi-GCD layer: partitioning, the fabric cost
// model, and end-to-end distributed BFS correctness across GCD counts,
// graphs and alpha settings.
#include <gtest/gtest.h>

#include "dist/dist_bfs.h"
#include "dist/interconnect.h"
#include "dist/partition.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs::dist {
namespace {

TEST(Partition1D, RangesCoverAndAreBalanced) {
  const Partition1D part(1000, 7);
  graph::vid_t covered = 0;
  for (unsigned p = 0; p < 7; ++p) {
    EXPECT_EQ(part.begin(p), covered);
    covered = part.end(p);
    EXPECT_LE(part.owned(p), 1000u / 7 + 1);
    EXPECT_GE(part.owned(p), 1000u / 7);
  }
  EXPECT_EQ(covered, 1000u);
}

TEST(Partition1D, OwnerIsConsistentWithRanges) {
  const Partition1D part(12345, 8);
  for (graph::vid_t v = 0; v < 12345; v += 7) {
    const unsigned p = part.owner(v);
    EXPECT_GE(v, part.begin(p));
    EXPECT_LT(v, part.end(p));
  }
  EXPECT_EQ(part.owner(0), 0u);
  EXPECT_EQ(part.owner(12344), 7u);
}

TEST(Partition1D, SinglePartOwnsEverything) {
  const Partition1D part(100, 1);
  EXPECT_EQ(part.owned(0), 100u);
  EXPECT_EQ(part.owner(99), 0u);
}

TEST(Partition1D, PartsExceedingVerticesYieldEmptyRanges) {
  // More parts than vertices: ranges stay contiguous and sorted, the extra
  // parts own nothing, and owner() still agrees with the ranges.
  const Partition1D part(3, 8);
  graph::vid_t covered = 0;
  for (unsigned p = 0; p < 8; ++p) {
    EXPECT_EQ(part.begin(p), covered);
    covered = part.end(p);
    EXPECT_LE(part.owned(p), 1u);
  }
  EXPECT_EQ(covered, 3u);
  for (graph::vid_t v = 0; v < 3; ++v) {
    const unsigned p = part.owner(v);
    EXPECT_GE(v, part.begin(p));
    EXPECT_LT(v, part.end(p));
  }
}

TEST(Partition1D, EmptyGraphHasOnlyEmptyRanges) {
  const Partition1D part(0, 4);
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_EQ(part.begin(p), 0u);
    EXPECT_EQ(part.owned(p), 0u);
  }
}

TEST(Partition1D, SingleVertexPartsOwnExactlyTheirIndex) {
  const Partition1D part(5, 5);
  for (graph::vid_t v = 0; v < 5; ++v) {
    EXPECT_EQ(part.owned(v), 1u);
    EXPECT_EQ(part.owner(v), v);
  }
}

TEST(Partition1D, OwnerAgreesWithRangesAcrossUnevenBoundaries) {
  // 10001 over 7 parts: every boundary is uneven, so the owner() jump
  // estimate must correct in both directions.  Check every vertex.
  const Partition1D part(10001, 7);
  unsigned expected = 0;
  for (graph::vid_t v = 0; v < 10001; ++v) {
    while (v >= part.end(expected)) ++expected;
    ASSERT_EQ(part.owner(v), expected) << "v=" << v;
  }
  EXPECT_EQ(expected, 6u);
}

TEST(Partition1D, LayoutHashIsStableAndSeparatesLayouts) {
  const Partition1D a(10000, 4);
  EXPECT_EQ(a.layout_hash(), Partition1D(10000, 4).layout_hash());
  EXPECT_NE(a.layout_hash(), Partition1D(10000, 8).layout_hash());
  EXPECT_NE(a.layout_hash(), Partition1D(10001, 4).layout_hash());
}

TEST(ExtractLocalRows, RebasedOffsetsAndGlobalColumns) {
  const graph::Csr g = graph::build_csr(6, {{0, 5}, {2, 3}, {4, 5}, {1, 4}});
  const Partition1D part(6, 2);  // [0,3) and [3,6)
  const LocalRows lo = extract_local_rows(g, part, 0);
  const LocalRows hi = extract_local_rows(g, part, 1);
  EXPECT_EQ(lo.num_rows, 3u);
  EXPECT_EQ(hi.first_vertex, 3u);
  EXPECT_EQ(lo.offsets.front(), 0u);
  EXPECT_EQ(lo.owned_edges + hi.owned_edges, g.num_edges());
  // Row 0 of the high part is global vertex 3, neighbor 2.
  EXPECT_EQ(hi.cols[hi.offsets[0]], 2u);
}

TEST(FabricModel, CollectiveCostsScaleSanely) {
  const FabricModel f = FabricModel::frontier();
  EXPECT_DOUBLE_EQ(f.allreduce_us(1, 1 << 20), 0.0);
  EXPECT_GT(f.allreduce_us(2, 1 << 20), 0.0);
  // More devices move more total data per device (ring (g-1)/g factor).
  EXPECT_GT(f.allgather_us(8, 1 << 20), f.allgather_us(2, 1 << 20));
  // Crossing the node boundary drops to Slingshot bandwidth.
  EXPECT_GT(f.allgather_us(16, 1 << 24) / f.allgather_us(8, 1 << 24), 1.9);
  EXPECT_GT(f.allreduce_scalar_us(8), f.allreduce_scalar_us(2));
}

void expect_dist_matches_reference(const graph::Csr& g, unsigned gcds,
                                   double alpha = 0.1) {
  DistConfig cfg;
  cfg.gcds = gcds;
  cfg.alpha = alpha;
  cfg.device_options.num_workers = 1;
  DistBfs bfs(g, cfg);
  const auto giant = graph::largest_component_vertices(g);
  for (graph::vid_t src : {giant.front(), giant[giant.size() / 2]}) {
    const DistBfsResult r = bfs.run(src);
    const auto ref = graph::reference_bfs(g, src);
    ASSERT_EQ(r.levels.size(), ref.size());
    for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(r.levels[v], ref[v])
          << "gcds=" << gcds << " src=" << src << " v=" << v;
    }
    EXPECT_GT(r.total_ms, 0.0);
    if (gcds > 1) EXPECT_GT(r.comm_ms, 0.0);
    EXPECT_LE(r.comm_ms, r.total_ms);
  }
}

class DistBfsParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(DistBfsParam, MatchesReferenceOnRmat) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 7;
  expect_dist_matches_reference(graph::rmat_csr(p), GetParam());
}

TEST_P(DistBfsParam, MatchesReferenceOnLongDiameter) {
  expect_dist_matches_reference(graph::layered_citation(6000, 60, 4, 3),
                                GetParam());
}

TEST_P(DistBfsParam, MatchesReferenceTopDownOnly) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 8;
  expect_dist_matches_reference(graph::rmat_csr(p), GetParam(),
                                /*alpha=*/2.0);
}

TEST_P(DistBfsParam, MatchesReferenceBottomUpHeavy) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 16;
  p.seed = 9;
  expect_dist_matches_reference(graph::rmat_csr(p), GetParam(),
                                /*alpha=*/0.005);
}

INSTANTIATE_TEST_SUITE_P(GcdCounts, DistBfsParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "gcds" + std::to_string(info.param);
                         });

TEST(DistBfs, BottomUpLevelsAvoidCandidateExchange) {
  // At the ratio peak the bottom-up direction needs one collective instead
  // of two: per-level comm must be lower than a forced top-down run's.
  graph::RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  p.seed = 4;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);

  DistConfig adaptive;
  adaptive.gcds = 4;
  adaptive.device_options.num_workers = 1;
  DistConfig topdown = adaptive;
  topdown.alpha = 2.0;  // never bottom-up

  DistBfs a(g, adaptive), t(g, topdown);
  const DistBfsResult ra = a.run(giant.front());
  const DistBfsResult rt = t.run(giant.front());
  bool saw_bottom_up = false;
  for (const auto& st : ra.level_stats) saw_bottom_up |= st.bottom_up;
  EXPECT_TRUE(saw_bottom_up);
  EXPECT_LT(ra.comm_ms, rt.comm_ms);
  EXPECT_EQ(ra.levels, rt.levels);
}

TEST(DistBfs, DisconnectedSourceTerminates) {
  const graph::Csr g = graph::build_csr(100, {{1, 2}, {2, 3}});
  DistConfig cfg;
  cfg.gcds = 4;
  cfg.device_options.num_workers = 1;
  DistBfs bfs(g, cfg);
  const DistBfsResult r = bfs.run(0);
  EXPECT_EQ(r.levels[0], 0);
  EXPECT_EQ(r.levels[1], -1);
  EXPECT_EQ(r.depth, 1u);
}

TEST(DistBfs, RepeatedRunsAreIndependent) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 2;
  const graph::Csr g = graph::rmat_csr(p);
  DistConfig cfg;
  cfg.gcds = 2;
  cfg.device_options.num_workers = 1;
  DistBfs bfs(g, cfg);
  const auto giant = graph::largest_component_vertices(g);
  const auto first = bfs.run(giant[0]).levels;
  bfs.run(giant[giant.size() / 2]);
  EXPECT_EQ(bfs.run(giant[0]).levels, first);
}

}  // namespace
}  // namespace xbfs::dist
