// Flight-recorder tests: seqlock ring semantics (ordering, wrap,
// truncation, torn-slot discard under concurrent writers), dump schema,
// trigger rate-limiting and context providers.  Local recorder instances
// throughout — the process-global one belongs to the serving stack.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hipsim/schedcheck.h"
#include "json_mini.h"
#include "obs/flight_recorder.h"

namespace xbfs {
namespace {

using obs::FlightEvent;
using obs::FlightRecorder;

std::string dump_to_string(const FlightRecorder& fr, const char* reason) {
  std::ostringstream os;
  fr.dump(os, reason);
  return os.str();
}

TEST(FlightRecorder, DisabledRecordIsANoop) {
  FlightRecorder fr;
  fr.record("serve", "attempt_failed", "detail", 1, 2, 3);
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.snapshot().empty());
}

TEST(FlightRecorder, RecordsInCausalOrderWithPayload) {
  FlightRecorder fr;
  fr.enable();
  fr.record("serve", "admitted", "source=7", 1, 0);
  fr.record("sim", "kernel_fault", {}, 1, 2);
  fr.record("dyn", "update", {}, 0, 9, 64);

  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_STREQ(events[0].cat, "serve");
  EXPECT_STREQ(events[0].name, "admitted");
  EXPECT_STREQ(events[0].detail, "source=7");
  EXPECT_EQ(events[1].a, 1u);
  EXPECT_EQ(events[1].b, 2u);
  EXPECT_EQ(events[2].c, 64u);
  EXPECT_LE(events[0].wall_us, events[2].wall_us);
}

TEST(FlightRecorder, LongStringsTruncateInsteadOfAllocating) {
  FlightRecorder fr;
  fr.enable();
  const std::string big(512, 'x');
  fr.record(big.c_str(), big.c_str(), big);
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  // Fixed-size char arrays, always NUL-terminated.
  EXPECT_LT(std::string(events[0].cat).size(), sizeof(FlightEvent{}.cat));
  EXPECT_LT(std::string(events[0].name).size(), sizeof(FlightEvent{}.name));
  EXPECT_LT(std::string(events[0].detail).size(),
            sizeof(FlightEvent{}.detail));
  EXPECT_EQ(std::string(events[0].name).find_first_not_of('x'),
            std::string::npos);
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestEvents) {
  FlightRecorder fr;
  fr.enable("", /*capacity=*/8);
  ASSERT_EQ(fr.capacity(), 8u);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    fr.record("t", "e", {}, i);
  }
  EXPECT_EQ(fr.recorded(), 20u);
  EXPECT_EQ(fr.dropped(), 12u);
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are exactly the 8 newest, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13 + i);
    EXPECT_EQ(events[i].a, 13 + i);
  }
}

TEST(FlightRecorder, ConcurrentWritersNeverProduceTornSlots) {
  FlightRecorder fr;
  fr.enable("", /*capacity=*/64);  // small ring: writers lap constantly
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fr, t] {
      for (int i = 0; i < kPerThread; ++i) {
        fr.record("serve", "spin", {}, static_cast<std::uint64_t>(t),
                  static_cast<std::uint64_t>(i));
      }
    });
  }
  // Readers race the writers: every snapshot must be internally consistent.
  for (int i = 0; i < 50; ++i) {
    const auto events = fr.snapshot();
    std::uint64_t prev = 0;
    for (const auto& e : events) {
      EXPECT_GT(e.seq, prev);  // strictly increasing, no duplicates
      prev = e.seq;
      EXPECT_STREQ(e.cat, "serve");  // payload matches its seq claim
      EXPECT_STREQ(e.name, "spin");
      EXPECT_LT(e.a, static_cast<std::uint64_t>(kThreads));
    }
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fr.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(FlightRecorder, DumpEmitsSchemaEventsAndContext) {
  FlightRecorder fr;
  fr.enable();
  fr.record("serve", "attempt_failed", "FaultInjected", 42, 1);
  const std::uint64_t tok =
      fr.register_context("server", [] { return std::string("{\"q\":3}"); });
  fr.register_context("broken", []() -> std::string {
    throw std::runtime_error("provider died");
  });

  const auto doc = testjson::parse(dump_to_string(fr, "unit-test"));
  EXPECT_EQ(doc->at("schema").str, "xbfs-flight");
  EXPECT_EQ(doc->at("reason").str, "unit-test");
  const auto& events = doc->at("events");
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events.at(0).at("name").str, "attempt_failed");
  EXPECT_EQ(events.at(0).at("a").num, 42.0);
  // Provider output is embedded raw; a throwing provider degrades to null
  // instead of poisoning the dump.
  EXPECT_EQ(doc->at("context").at("server").at("q").num, 3.0);
  EXPECT_EQ(doc->at("context").at("broken").type,
            testjson::Value::Type::Null);

  fr.unregister_context(tok);
  const auto doc2 = testjson::parse(dump_to_string(fr, "again"));
  EXPECT_FALSE(doc2->at("context").has("server"));
}

TEST(FlightRecorder, TriggerRateLimitsAndWritesTheFile) {
  const std::string path =
      ::testing::TempDir() + "/xbfs_flight_trigger_test.json";
  std::remove(path.c_str());

  FlightRecorder fr;
  fr.enable(path, 64);
  fr.record("serve", "budget_exhausted", {}, 7);

  EXPECT_TRUE(fr.trigger("first"));  // the first trigger always fires
  EXPECT_FALSE(fr.trigger("storm"));  // inside the 200 ms gap: suppressed
  EXPECT_EQ(fr.dumps(), 1u);

  fr.set_min_dump_gap_ms(0.0);
  EXPECT_TRUE(fr.trigger("second"));
  EXPECT_EQ(fr.dumps(), 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = testjson::parse(ss.str());
  EXPECT_EQ(doc->at("schema").str, "xbfs-flight");
  EXPECT_EQ(doc->at("reason").str, "second");  // latest dump wins the path
  // The dump records itself in the ring: flight/dump events for both.
  std::size_t dump_events = 0;
  for (const auto& e : doc->at("events").arr) {
    if (e->at("cat").str == "flight" && e->at("name").str == "dump")
      ++dump_events;
  }
  EXPECT_EQ(dump_events, 2u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, TriggerWithoutPathReportsNothingWritten) {
  FlightRecorder fr;
  fr.enable();  // recording on, no dump path
  fr.record("serve", "x");
  EXPECT_FALSE(fr.trigger("nowhere"));
  EXPECT_EQ(fr.dumps(), 0u);
}

TEST(FlightRecorder, ClearForgetsEventsAndDumpPacing) {
  FlightRecorder fr;
  fr.enable("", 16);
  for (int i = 0; i < 10; ++i) fr.record("t", "e");
  fr.clear();
  EXPECT_TRUE(fr.snapshot().empty());
  fr.record("t", "after");
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "after");
}

// SchedCheck fixed-seed matrix (docs/modelcheck.md): the seqlock's
// writer/reader protocol under *chosen* interleavings.  The free-running
// ConcurrentWriters test above relies on the OS stumbling into bad
// schedules; here the checker preempts at the record()/snapshot() phase
// chk_points (claim, invalidate, payload, publish / check, copy, recheck)
// and every explored snapshot must still be coherent.
TEST(FlightRecorder, SeqlockVerifiesUnderScheduleExplorationSeedMatrix) {
  sim::SchedCheck chk;
  for (const std::uint64_t seed : {0xF1ull, 0xF2ull, 0xF3ull}) {
    sim::SchedCheckConfig cfg;
    cfg.schedules = 12;
    cfg.preemptions = 4;
    cfg.seed = seed;
    const auto res = chk.explore_with(
        cfg, "flight-seqlock", [&](sim::Schedule& s) -> std::uint64_t {
          FlightRecorder fr;
          fr.enable("", /*capacity=*/8);  // tiny ring: writers lap readers
          s.run_tasks(3, [&](std::size_t task) {
            if (task < 2) {
              for (int i = 0; i < 6; ++i) {
                fr.record("chk", "evt", {}, task,
                          static_cast<std::uint64_t>(i));
              }
              return;
            }
            for (int round = 0; round < 4; ++round) {
              const auto events = fr.snapshot();
              std::uint64_t prev = 0;
              for (const auto& e : events) {
                if (e.seq <= prev) s.fail("snapshot seq not increasing");
                prev = e.seq;
                if (std::string(e.cat) != "chk" ||
                    std::string(e.name) != "evt" || e.a > 1) {
                  s.fail("torn slot escaped the seqlock re-check");
                }
              }
            }
          });
          if (fr.recorded() != 12) s.fail("writer lost a record()");
          return 0;  // ring contents are schedule-dependent by design
        });
    EXPECT_TRUE(res.ok()) << "seed 0x" << std::hex << seed;
    EXPECT_GT(res.preemptions, 0u) << "seed 0x" << std::hex << seed;
  }
}

}  // namespace
}  // namespace xbfs
