// Tests for the baseline BFS implementations: the Gunrock-like
// edge-frontier filter, the status-scan-per-level baseline, and the CPU
// implementations — all validated against the serial reference.
#include <gtest/gtest.h>

#include "baseline/async_sssp.h"
#include "baseline/cpu_bfs.h"
#include "baseline/gunrock_like.h"
#include "baseline/hier_queue.h"
#include "baseline/simple_scan.h"
#include "graph/device_csr.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs {
namespace {

graph::Csr test_graph(std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

void expect_matches_reference(const graph::Csr& g,
                              const std::vector<std::int32_t>& got,
                              graph::vid_t src) {
  const auto ref = graph::reference_bfs(g, src);
  ASSERT_EQ(got.size(), ref.size());
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(got[v], ref[v]) << "src=" << src << " v=" << v;
  }
}

TEST(GunrockLike, MatchesReferenceOnRmat) {
  const graph::Csr g = test_graph(21);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::GunrockLikeBfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  for (graph::vid_t src : {giant.front(), giant[giant.size() / 3]}) {
    const core::BfsResult r = bfs.run(src);
    expect_matches_reference(g, r.levels, src);
    EXPECT_GT(r.gteps, 0.0);
  }
}

TEST(GunrockLike, MatchesReferenceOnLongDiameter) {
  const graph::Csr g = graph::layered_citation(6000, 80, 4, 5);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::GunrockLikeBfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  const core::BfsResult r = bfs.run(giant.front());
  expect_matches_reference(g, r.levels, giant.front());
  EXPECT_GT(r.depth, 15u);
}

TEST(GunrockLike, EdgeFrontierCarriesDuplicateOverhead) {
  // The design flaw XBFS fixes: the advance phase enqueues every unvisited
  // neighbor occurrence, so the edge frontier exceeds the vertex count of
  // the next level on dense graphs.
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 32;
  p.seed = 3;
  const graph::Csr g = graph::rmat_csr(p);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 1});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::GunrockLikeBfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  dev.profiler().clear();
  const core::BfsResult r = bfs.run(giant.front());
  // Compare total filter input (edge-frontier entries) against the number
  // of reached vertices: the overhead factor must be substantial.
  double advance_writes = 0;
  for (const auto& rec : dev.profiler().matching("gunrock_advance")) {
    advance_writes += static_cast<double>(rec.counters.mem_writes);
  }
  std::uint64_t reached = 0;
  for (auto l : r.levels) {
    if (l >= 0) ++reached;
  }
  EXPECT_GT(advance_writes, 2.0 * static_cast<double>(reached));
}

TEST(SimpleScan, MatchesReferenceOnRmat) {
  const graph::Csr g = test_graph(22);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::SimpleScanBfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  const core::BfsResult r = bfs.run(giant.front());
  expect_matches_reference(g, r.levels, giant.front());
}

TEST(SimpleScan, PaysFullStatusScanEveryLevel) {
  // O(|V|) per level even when the frontier is one vertex: the overhead
  // XBFS's scan-free strategy eliminates (paper Sec. II).
  const graph::Csr g = graph::layered_citation(8000, 120, 4, 7);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 1});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::SimpleScanBfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  dev.profiler().clear();
  const core::BfsResult r = bfs.run(giant.front());
  const auto scans = dev.profiler().matching("scanbfs_scan_expand");
  ASSERT_EQ(scans.size(), static_cast<std::size_t>(r.depth));
  for (const auto& rec : scans) {
    // Every level reads at least the whole status array.
    EXPECT_GE(rec.counters.bytes_read, std::uint64_t{g.num_vertices()} * 4);
  }
}

TEST(HierQueue, MatchesReferenceOnRmat) {
  const graph::Csr g = test_graph(25);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::HierQueueBfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  for (graph::vid_t src : {giant.front(), giant[giant.size() / 2]}) {
    expect_matches_reference(g, bfs.run(src).levels, src);
  }
}

TEST(HierQueue, TinyBlockQueueOverflowsCorrectly) {
  // Force the overflow path: a capacity-4 block queue on a dense graph.
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 16;
  p.seed = 6;
  const graph::Csr g = graph::rmat_csr(p);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::HierQueueConfig cfg;
  cfg.block_queue_capacity = 4;
  baseline::HierQueueBfs bfs(dev, dg, cfg);
  const auto giant = graph::largest_component_vertices(g);
  expect_matches_reference(g, bfs.run(giant.front()).levels, giant.front());
}

TEST(AsyncSssp, MatchesReferenceOnRmat) {
  const graph::Csr g = test_graph(26);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::AsyncSsspBfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  const core::BfsResult r = bfs.run(giant.front());
  expect_matches_reference(g, r.levels, giant.front());
  EXPECT_GT(bfs.last_relaxations(), 0u);
}

TEST(AsyncSssp, MatchesReferenceOnLongDiameter) {
  const graph::Csr g = graph::layered_citation(5000, 60, 4, 6);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::AsyncSsspBfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  expect_matches_reference(g, bfs.run(giant.front()).levels, giant.front());
}

TEST(AsyncSssp, PerformsRedundantRelaxations) {
  // The SIMD-X observation the paper cites: the asynchronous formulation
  // re-relaxes edges whose source distance later improves.  With unit
  // weights the redundancy is mild but strictly positive: relaxations must
  // exceed the directed edge count of the reached region (which is exactly
  // what one level-synchronous pass would do).
  const graph::Csr g = test_graph(27);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::AsyncSsspBfs bfs(dev, dg);
  const auto giant = graph::largest_component_vertices(g);
  const core::BfsResult r = bfs.run(giant.front());
  const std::uint64_t directed_reached = 2 * r.edges_traversed;
  EXPECT_GT(bfs.last_relaxations(), directed_reached);
}

TEST(CpuBfs, SerialMatchesReferenceAndTimes) {
  const graph::Csr g = test_graph(23);
  const auto giant = graph::largest_component_vertices(g);
  const auto r = baseline::cpu_bfs_serial(g, giant.front());
  expect_matches_reference(g, r.levels, giant.front());
  EXPECT_GT(r.wall_ms, 0.0);
  EXPECT_GT(r.edges_traversed, 0u);
}

TEST(CpuBfs, ParallelMatchesSerialAcrossThreadCounts) {
  const graph::Csr g = test_graph(24);
  const auto giant = graph::largest_component_vertices(g);
  const auto serial = baseline::cpu_bfs_serial(g, giant.front());
  for (unsigned threads : {1u, 2u, 4u}) {
    const auto par = baseline::cpu_bfs_parallel(g, giant.front(), threads);
    ASSERT_EQ(par.levels, serial.levels) << threads << " threads";
  }
}

TEST(CpuBfs, ParallelHandlesDisconnectedGraph) {
  const graph::Csr g = graph::build_csr(10, {{0, 1}, {1, 2}, {5, 6}});
  const auto r = baseline::cpu_bfs_parallel(g, 0, 2);
  EXPECT_EQ(r.levels[2], 2);
  EXPECT_EQ(r.levels[5], graph::kUnreached);
  EXPECT_EQ(r.levels[9], graph::kUnreached);
}

}  // namespace
}  // namespace xbfs
