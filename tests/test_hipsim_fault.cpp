// Fault-injector tests: XBFS_FAULTS spec parsing, deterministic seeded
// decisions, and each hook — kernel launches that throw, memcpy transfers
// that raise the corruption flag, pool workers that stall or die without
// losing work, latency spikes on the modelled clock — plus the guarantee
// the whole resilience story rests on: any single corrupted levels entry is
// caught by the Graph500 validator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/g500_validate.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/device.h"
#include "hipsim/fault.h"
#include "hipsim/thread_pool.h"

namespace xbfs::sim {
namespace {

/// Every test leaves the process-wide injector off, no matter what the
/// ambient XBFS_FAULTS environment (the chaos CI job sets it) asked for.
class HipsimFault : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().disable(); }
  void TearDown() override { FaultInjector::global().disable(); }
};

TEST_F(HipsimFault, EnvSpecParsesEveryKey) {
  const FaultConfig c = FaultConfig::from_env_string(
      "kernel=0.25,memcpy=0.5,stall=0.125,death=0.0625,spike=0.2,"
      "stall_ms=3.5,spike_us=400,seed=99");
  EXPECT_DOUBLE_EQ(c.kernel_fault_rate, 0.25);
  EXPECT_DOUBLE_EQ(c.memcpy_corruption_rate, 0.5);
  EXPECT_DOUBLE_EQ(c.worker_stall_rate, 0.125);
  EXPECT_DOUBLE_EQ(c.worker_death_rate, 0.0625);
  EXPECT_DOUBLE_EQ(c.latency_spike_rate, 0.2);
  EXPECT_DOUBLE_EQ(c.stall_ms, 3.5);
  EXPECT_DOUBLE_EQ(c.latency_spike_us, 400.0);
  EXPECT_EQ(c.seed, 99u);
  EXPECT_TRUE(c.any());
}

TEST_F(HipsimFault, EnvSpecIgnoresUnknownKeysAndKeepsDefaults) {
  const FaultConfig c =
      FaultConfig::from_env_string("bogus=1,kernel=0.5,also_bogus=2");
  EXPECT_DOUBLE_EQ(c.kernel_fault_rate, 0.5);
  EXPECT_DOUBLE_EQ(c.memcpy_corruption_rate, 0.0);
  EXPECT_DOUBLE_EQ(c.stall_ms, 1.0);

  const FaultConfig empty = FaultConfig::from_env_string("");
  EXPECT_FALSE(empty.any());
}

TEST_F(HipsimFault, DecisionsAreDeterministicInSeedAndSequence) {
  FaultConfig cfg;
  cfg.kernel_fault_rate = 0.3;
  cfg.memcpy_corruption_rate = 0.3;
  cfg.seed = 1234;

  FaultInjector a, b;
  a.configure(cfg);
  b.configure(cfg);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.should_inject(FaultKind::KernelFault),
              b.should_inject(FaultKind::KernelFault));
    EXPECT_EQ(a.should_inject(FaultKind::MemcpyCorruption),
              b.should_inject(FaultKind::MemcpyCorruption));
  }
  EXPECT_EQ(a.injected(FaultKind::KernelFault),
            b.injected(FaultKind::KernelFault));

  // A different seed produces a different decision stream (with 200 draws
  // at 30%, identical streams are astronomically unlikely).
  cfg.seed = 4321;
  FaultInjector c;
  c.configure(cfg);
  bool any_diff = false;
  FaultInjector a2;
  cfg.seed = 1234;
  a2.configure(cfg);
  for (int i = 0; i < 200; ++i) {
    any_diff |= (a2.should_inject(FaultKind::KernelFault) !=
                 c.should_inject(FaultKind::KernelFault));
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(HipsimFault, RateZeroNeverFiresAndRateOneAlwaysFires) {
  FaultConfig cfg;
  cfg.kernel_fault_rate = 1.0;
  cfg.memcpy_corruption_rate = 0.0;
  // worker_stall_rate left 0 so any() is driven by the kernel rate alone.
  FaultInjector inj;
  inj.configure(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(inj.should_inject(FaultKind::KernelFault));
    EXPECT_FALSE(inj.should_inject(FaultKind::MemcpyCorruption));
  }
  EXPECT_EQ(inj.injected(FaultKind::KernelFault), 100u);
  EXPECT_EQ(inj.decisions(FaultKind::MemcpyCorruption), 100u);
  EXPECT_EQ(inj.injected(FaultKind::MemcpyCorruption), 0u);
  EXPECT_EQ(inj.total_injected(), 100u);
}

TEST_F(HipsimFault, KernelLaunchThrowsFaultInjected) {
  Device dev(DeviceProfile::mi250x_gcd(),
             SimOptions{.num_workers = 1, .profiling = false});
  dev.warmup();

  FaultConfig cfg;
  cfg.kernel_fault_rate = 1.0;
  FaultInjector::global().configure(cfg);

  LaunchConfig lc;
  lc.grid_blocks = 1;
  lc.block_threads = 64;
  try {
    dev.launch("victim", lc, [](BlockCtx&) {});
    FAIL() << "injected kernel fault did not throw";
  } catch (const FaultInjected& e) {
    EXPECT_EQ(e.kind(), FaultKind::KernelFault);
    EXPECT_NE(std::string(e.what()).find("victim"), std::string::npos);
  }

  // Disabled again: the same launch succeeds.
  FaultInjector::global().disable();
  EXPECT_NO_THROW(dev.launch("victim", lc, [](BlockCtx&) {}));
}

TEST_F(HipsimFault, MemcpyCorruptionRaisesTheDeviceFlagOnce) {
  Device dev(DeviceProfile::mi250x_gcd(),
             SimOptions{.num_workers = 1, .profiling = false});
  dev.memcpy_h2d(4096);
  EXPECT_FALSE(dev.take_pending_corruption());  // clean without injection

  FaultConfig cfg;
  cfg.memcpy_corruption_rate = 1.0;
  FaultInjector::global().configure(cfg);
  dev.memcpy_d2h(4096);
  FaultInjector::global().disable();

  EXPECT_EQ(dev.corrupted_copies(), 1u);
  EXPECT_TRUE(dev.take_pending_corruption());
  EXPECT_FALSE(dev.take_pending_corruption());  // take() clears the flag
}

TEST_F(HipsimFault, LatencySpikeInflatesTheModelledClockOnly) {
  Device dev(DeviceProfile::mi250x_gcd(),
             SimOptions{.num_workers = 1, .profiling = false});
  dev.warmup();
  LaunchConfig lc;
  lc.grid_blocks = 1;
  lc.block_threads = 64;
  const double clean_us = dev.launch("k", lc, [](BlockCtx&) {}).time_us;

  FaultConfig cfg;
  cfg.latency_spike_rate = 1.0;
  cfg.latency_spike_us = 500.0;
  FaultInjector::global().configure(cfg);
  const double spiked_us = dev.launch("k", lc, [](BlockCtx&) {}).time_us;
  FaultInjector::global().disable();

  EXPECT_NEAR(spiked_us - clean_us, 500.0, 1.0);
}

TEST_F(HipsimFault, StalledAndDeadWorkersNeverLoseWork) {
  for (const bool death : {false, true}) {
    FaultConfig cfg;
    if (death) {
      cfg.worker_death_rate = 1.0;  // every non-caller worker skips the job
    } else {
      cfg.worker_stall_rate = 1.0;
      cfg.stall_ms = 0.1;
    }
    FaultInjector::global().configure(cfg);

    ThreadPool pool(4);
    constexpr std::uint64_t kItems = 1000;
    std::vector<std::atomic<int>> hits(kItems);
    pool.parallel_for(kItems, [&](unsigned, std::uint64_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    FaultInjector::global().disable();

    std::uint64_t total = 0;
    for (const auto& h : hits) total += h.load();
    EXPECT_EQ(total, kItems) << (death ? "death" : "stall");
  }
}

TEST_F(HipsimFault, BackToBackJobsSurviveStragglersWithoutCrossTalk) {
  // Regression: a stalled worker used to sleep *before* registering in
  // the pool's in_flight count, so parallel_for could return — letting
  // the caller destroy its fn and the next call reset the job — while
  // the sleeper woke into stale state (dangling fn, torn count/cursor,
  // double-processed indices).  Tiny jobs dispatched back-to-back under
  // a high stall/death rate make that window fire reliably.
  FaultConfig cfg;
  cfg.worker_stall_rate = 0.5;
  cfg.stall_ms = 0.2;
  cfg.worker_death_rate = 0.1;
  cfg.seed = 11;
  FaultInjector::global().configure(cfg);

  ThreadPool pool(4);
  for (int job = 0; job < 200; ++job) {
    const std::uint64_t items = 1 + static_cast<std::uint64_t>(job % 7);
    std::vector<std::atomic<int>> hits(items);
    pool.parallel_for(items, [&](unsigned, std::uint64_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint64_t i = 0; i < items; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "job " << job << " item " << i;
    }
  }
  FaultInjector::global().disable();
}

TEST_F(HipsimFault, CorruptLevelsAlwaysProducesADetectableCorruption) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  p.seed = 5;
  const graph::Csr g = graph::rmat_csr(p);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant[0];
  const std::vector<std::int32_t> truth = graph::reference_bfs(g, src);
  ASSERT_TRUE(graph::validate_levels_graph500(g, src, truth).empty());

  FaultConfig cfg;
  cfg.memcpy_corruption_rate = 1.0;
  cfg.seed = 77;
  FaultInjector inj;
  inj.configure(cfg);
  // Different internal draws pick different victim entries; every single
  // one must break the (unique) exact-distance labeling.
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<std::int32_t> poisoned = truth;
    inj.corrupt_levels(poisoned);
    EXPECT_NE(poisoned, truth) << "trial " << trial;
    EXPECT_FALSE(graph::validate_levels_graph500(g, src, poisoned).empty())
        << "undetected corruption in trial " << trial;
  }
}

}  // namespace
}  // namespace xbfs::sim
