// Integration across the six Table II stand-ins: adaptive XBFS correctness
// on every dataset class, schedule sanity (where bottom-up should and
// should not fire) and cross-implementation agreement (XBFS vs bitmap mode
// vs distributed).
#include <gtest/gtest.h>

#include "core/xbfs.h"
#include "dist/dist_bfs.h"
#include "graph/datasets.h"
#include "graph/device_csr.h"
#include "graph/reference.h"

namespace xbfs {
namespace {

constexpr unsigned kDivisor = 256;  // keep every stand-in test-sized

class DatasetIntegration
    : public ::testing::TestWithParam<graph::DatasetId> {};

TEST_P(DatasetIntegration, AdaptiveXbfsMatchesReference) {
  const graph::Csr g = graph::make_dataset(GetParam(), kDivisor, 1);
  ASSERT_TRUE(g.validate().empty());
  const auto giant = graph::largest_component_vertices(g);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  for (graph::vid_t src : {giant.front(), giant[giant.size() / 2]}) {
    const core::BfsResult r = bfs.run(src);
    const std::string err = graph::validate_bfs_levels(g, src, r.levels);
    ASSERT_TRUE(err.empty()) << err;
  }
}

TEST_P(DatasetIntegration, BitmapModeAgreesWithPlainMode) {
  const graph::Csr g = graph::make_dataset(GetParam(), kDivisor, 2);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant.front();

  core::BfsResult results[2];
  for (int m = 0; m < 2; ++m) {
    sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                    sim::SimOptions{.num_workers = 1});
    dev.warmup();
    auto dg = graph::DeviceCsr::upload(dev, g);
    core::XbfsConfig cfg;
    cfg.bottomup_bitmap = (m == 1);
    core::Xbfs bfs(dev, dg, cfg);
    results[m] = bfs.run(src);
  }
  ASSERT_EQ(results[0].levels, results[1].levels);
  ASSERT_EQ(results[0].depth, results[1].depth);
  for (std::size_t lvl = 0; lvl < results[0].level_stats.size(); ++lvl) {
    EXPECT_EQ(results[0].level_stats[lvl].frontier_count,
              results[1].level_stats[lvl].frontier_count)
        << lvl;
    EXPECT_EQ(results[0].level_stats[lvl].strategy,
              results[1].level_stats[lvl].strategy)
        << lvl;
  }
}

TEST_P(DatasetIntegration, DistributedAgreesWithSingleDevice) {
  const graph::Csr g = graph::make_dataset(GetParam(), kDivisor, 3);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant.front();

  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 1});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  const core::BfsResult single = bfs.run(src);

  dist::DistConfig dcfg;
  dcfg.gcds = 4;
  dcfg.device_options.num_workers = 1;
  dist::DistBfs dist_bfs(g, dcfg);
  const dist::DistBfsResult multi = dist_bfs.run(src);
  ASSERT_EQ(single.levels, multi.levels);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetIntegration,
    ::testing::Values(graph::DatasetId::LJ, graph::DatasetId::UP,
                      graph::DatasetId::OR, graph::DatasetId::DB,
                      graph::DatasetId::R23, graph::DatasetId::R25),
    [](const ::testing::TestParamInfo<graph::DatasetId>& info) {
      return graph::dataset_meta(info.param).short_name;
    });

TEST(DatasetSchedules, DenseRmatUsesBottomUpSparsePatentMostlyTopDown) {
  auto schedule = [&](graph::DatasetId id) {
    const graph::Csr g = graph::make_dataset(id, kDivisor, 5);
    const auto giant = graph::largest_component_vertices(g);
    sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                    sim::SimOptions{.num_workers = 2});
    dev.warmup();
    auto dg = graph::DeviceCsr::upload(dev, g);
    core::Xbfs bfs(dev, dg);
    return bfs.run(giant.front());
  };
  // Dense Orkut stand-in: one level carries most edge mass -> bottom-up.
  const core::BfsResult orkut = schedule(graph::DatasetId::OR);
  bool orkut_bottom_up = false;
  for (const auto& st : orkut.level_stats) {
    orkut_bottom_up |= st.strategy == core::Strategy::BottomUp;
  }
  EXPECT_TRUE(orkut_bottom_up);
  // Long-diameter patent stand-in: most levels stay top-down.
  const core::BfsResult patent = schedule(graph::DatasetId::UP);
  unsigned bu_levels = 0;
  for (const auto& st : patent.level_stats) {
    bu_levels += st.strategy == core::Strategy::BottomUp;
  }
  EXPECT_LT(bu_levels, patent.depth / 2);
  EXPECT_GT(patent.depth, orkut.depth);
}

}  // namespace
}  // namespace xbfs
