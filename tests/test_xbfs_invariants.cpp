// System-level invariants of the XBFS runner that cut across modules:
// bit-exact determinism in profile mode, telemetry that must agree with
// host-computed ground truth, and a throughput calibration band that
// guards the timing model against regressions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "graph/stats.h"

namespace xbfs {
namespace {

graph::Csr test_graph(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 16;
  p.seed = seed;
  return graph::rmat_csr(p);
}

TEST(XbfsInvariants, ProfileModeIsBitDeterministic) {
  const graph::Csr g = test_graph(11, 41);
  const auto giant = graph::largest_component_vertices(g);
  auto run_once = [&]() {
    sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                    sim::SimOptions{.num_workers = 1});
    dev.warmup();
    auto dg = graph::DeviceCsr::upload(dev, g);
    core::Xbfs bfs(dev, dg);
    dev.profiler().clear();
    const core::BfsResult r = bfs.run(giant[0]);
    return std::make_pair(r, dev.profiler().records());
  };
  const auto [r1, p1] = run_once();
  const auto [r2, p2] = run_once();
  EXPECT_EQ(r1.levels, r2.levels);
  EXPECT_DOUBLE_EQ(r1.total_ms, r2.total_ms);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i].kernel, p2[i].kernel) << i;
    ASSERT_EQ(p1[i].counters.fetch_bytes, p2[i].counters.fetch_bytes) << i;
    ASSERT_EQ(p1[i].counters.l2_hits, p2[i].counters.l2_hits) << i;
    ASSERT_EQ(p1[i].counters.lane_slots, p2[i].counters.lane_slots) << i;
    ASSERT_DOUBLE_EQ(p1[i].timing.total_us, p2[i].timing.total_us) << i;
  }
}

TEST(XbfsInvariants, TelemetryRatiosMatchHostGroundTruth) {
  // The adaptive controller's per-level ratio is derived from device-side
  // edge counters; it must agree exactly (profile mode has no benign-race
  // overcounting) with the strategy-independent host computation.
  const graph::Csr g = test_graph(12, 42);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant[0];

  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 1});
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  const core::BfsResult r = bfs.run(src);

  const std::vector<double> ref_ratio = graph::frontier_edge_ratio(g, src);
  ASSERT_EQ(r.level_stats.size(), ref_ratio.size());
  for (std::size_t lvl = 0; lvl < ref_ratio.size(); ++lvl) {
    EXPECT_NEAR(r.level_stats[lvl].ratio, ref_ratio[lvl], 1e-12)
        << "level " << lvl << " ("
        << core::strategy_name(r.level_stats[lvl].strategy) << ")";
  }

  // Frontier sizes must match the host trace, too.
  const auto ref_sizes = graph::frontier_sizes(g, src);
  for (std::size_t lvl = 0; lvl < ref_sizes.size(); ++lvl) {
    EXPECT_EQ(r.level_stats[lvl].frontier_count, ref_sizes[lvl])
        << "level " << lvl;
  }
}

TEST(XbfsInvariants, TelemetryRatiosHoldUnderLookaheadAndBitmap) {
  const graph::Csr g = test_graph(11, 43);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant[0];
  const std::vector<double> ref_ratio = graph::frontier_edge_ratio(g, src);

  for (const bool bitmap : {false, true}) {
    sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                    sim::SimOptions{.num_workers = 1});
    dev.warmup();
    auto dg = graph::DeviceCsr::upload(dev, g);
    core::XbfsConfig cfg;
    cfg.bottomup_bitmap = bitmap;
    cfg.alpha = 0.05;  // exercise bottom-up + look-ahead carries
    core::Xbfs bfs(dev, dg, cfg);
    const core::BfsResult r = bfs.run(src);
    ASSERT_EQ(r.level_stats.size(), ref_ratio.size()) << "bitmap " << bitmap;
    for (std::size_t lvl = 0; lvl < ref_ratio.size(); ++lvl) {
      EXPECT_NEAR(r.level_stats[lvl].ratio, ref_ratio[lvl], 1e-12)
          << "bitmap " << bitmap << " level " << lvl;
    }
  }
}

TEST(XbfsInvariants, ModeledThroughputStaysInCalibrationBand) {
  // Guard against timing-model regressions: a dense RMAT at scale 16 on
  // the full MI250X profile must land in a broad but meaningful GTEPS band
  // (the model's absolute scale, not just its orderings).
  const graph::Csr g = test_graph(16, 44);
  const auto giant = graph::largest_component_vertices(g);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd());
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  const core::BfsResult r = bfs.run(giant[0]);
  EXPECT_GT(r.gteps, 0.5);
  EXPECT_LT(r.gteps, 60.0);
  // Per-level overheads at this size keep it far from the bandwidth bound.
  EXPECT_LT(r.total_ms, 10.0);
  EXPECT_GT(r.total_ms, 0.05);
}

TEST(XbfsInvariants, LargerGraphsGetCloserToBandwidthBound) {
  // Fixed overheads amortize with scale: GTEPS must increase from scale 14
  // to scale 18 on the same profile (the effect EXPERIMENTS.md documents).
  double gteps[2] = {0, 0};
  const unsigned scales[2] = {14, 18};
  for (int i = 0; i < 2; ++i) {
    const graph::Csr g = test_graph(scales[i], 45);
    const auto giant = graph::largest_component_vertices(g);
    sim::Device dev(sim::DeviceProfile::mi250x_gcd());
    dev.warmup();
    auto dg = graph::DeviceCsr::upload(dev, g);
    core::Xbfs bfs(dev, dg);
    gteps[i] = bfs.run(giant[0]).gteps;
  }
  EXPECT_GT(gteps[1], 2.0 * gteps[0]);
}

}  // namespace
}  // namespace xbfs
