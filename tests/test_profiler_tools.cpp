// Tests for the profiler tooling (aggregation, CSV export), the
// hipEvent-style timestamps, and the schedule-CSV reporting.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/xbfs.h"
#include "hipsim/hipsim.h"

namespace xbfs::sim {
namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) out.push_back(field);
  return out;
}

std::vector<std::string> csv_lines(const std::string& text) {
  std::vector<std::string> out;
  std::string line;
  std::istringstream is(text);
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

Device make_device() {
  return Device(DeviceProfile::test_profile(), SimOptions{.num_workers = 1});
}

void launch_named(Device& dev, const char* name, std::size_t stores) {
  DeviceBuffer<std::uint32_t> scratch = dev.alloc<std::uint32_t>(stores);
  auto s = scratch.span();
  dev.launch(name, LaunchConfig{1, 64, 1.0}, [=](BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(stores, [&](std::uint64_t i) {
      ctx.store(s, i, static_cast<std::uint32_t>(i));
    });
  });
}

TEST(ProfilerTools, AggregateByKernelSumsLaunches) {
  Device dev = make_device();
  launch_named(dev, "alpha", 4096);
  launch_named(dev, "beta", 64);
  launch_named(dev, "alpha", 4096);
  const auto totals = dev.profiler().aggregate_by_kernel();
  ASSERT_EQ(totals.size(), 2u);
  // Sorted by descending runtime; alpha ran twice with more work.
  EXPECT_EQ(totals[0].kernel, "alpha");
  EXPECT_EQ(totals[0].launches, 2u);
  EXPECT_EQ(totals[1].kernel, "beta");
  EXPECT_EQ(totals[1].launches, 1u);
  EXPECT_GT(totals[0].runtime_ms, totals[1].runtime_ms);
}

TEST(ProfilerTools, CsvHasHeaderAndOneRowPerLaunch) {
  Device dev = make_device();
  dev.profiler().set_context(3, "phase-x");
  launch_named(dev, "kernel_a", 64);
  launch_named(dev, "kernel_b", 64);
  std::ostringstream os;
  dev.profiler().write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kernel,level,tag,runtime_ms"), std::string::npos);
  EXPECT_NE(csv.find("kernel_a,3,phase-x,"), std::string::npos);
  // header + 2 rows
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(ProfilerTools, EveryCsvRowHasAsManyFieldsAsTheHeader) {
  Device dev = make_device();
  dev.profiler().set_context(1, "tag,with,commas stays one run");
  launch_named(dev, "kernel_a", 256);
  launch_named(dev, "kernel_b", 64);
  std::ostringstream os;
  dev.profiler().write_csv(os);
  const auto lines = csv_lines(os.str());
  ASSERT_EQ(lines.size(), 3u);
  const auto header = split_csv_line(lines[0]);
  EXPECT_EQ(header.size(), 12u);
  EXPECT_EQ(header.front(), "kernel");
  EXPECT_EQ(header.back(), "active_lanes");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(split_csv_line(lines[i]).size(), header.size())
        << "row " << i << ": " << lines[i];
  }
}

TEST(ProfilerTools, ClearResetsRecordsAndContext) {
  Device dev = make_device();
  dev.profiler().set_context(7, "stale-tag");
  launch_named(dev, "kernel_a", 64);
  ASSERT_EQ(dev.profiler().records().size(), 1u);

  dev.profiler().clear();
  EXPECT_TRUE(dev.profiler().records().empty());
  // A fresh run must not inherit the previous run's level/tag.
  EXPECT_EQ(dev.profiler().level(), -1);
  EXPECT_TRUE(dev.profiler().tag().empty());

  launch_named(dev, "kernel_b", 64);
  ASSERT_EQ(dev.profiler().records().size(), 1u);
  EXPECT_EQ(dev.profiler().records()[0].level, -1);
  EXPECT_TRUE(dev.profiler().records()[0].tag.empty());
}

TEST(ScheduleCsv, RowsRoundTripLevelStats) {
  core::BfsResult r;
  r.total_ms = 3.5;
  r.gteps = 0.5;
  r.edges_traversed = 100;
  r.depth = 2;
  core::LevelStats a;
  a.level = 0;
  a.strategy = core::Strategy::ScanFree;
  a.frontier_count = 1;
  a.frontier_edges = 4;
  a.ratio = 0.04;
  a.time_ms = 1.25;
  a.fetch_kb = 2.5;
  core::LevelStats b;
  b.level = 1;
  b.strategy = core::Strategy::SingleScan;
  b.skipped_generation = true;
  b.frontier_count = 4;
  b.frontier_edges = 16;
  b.ratio = 0.16;
  b.time_ms = 2.25;
  b.fetch_kb = 7.5;
  r.level_stats = {a, b};

  std::ostringstream os;
  core::write_schedule_csv(os, r);
  const auto lines = csv_lines(os.str());
  ASSERT_EQ(lines.size(), 3u);  // header + one row per level
  const auto header = split_csv_line(lines[0]);
  ASSERT_EQ(header.size(), 8u);
  EXPECT_EQ(lines[0],
            "level,strategy,nfg,frontier,edges,ratio,time_ms,fetch_kb");

  for (std::size_t i = 0; i < r.level_stats.size(); ++i) {
    const core::LevelStats& st = r.level_stats[i];
    const auto row = split_csv_line(lines[i + 1]);
    ASSERT_EQ(row.size(), header.size());
    EXPECT_EQ(row[0], std::to_string(st.level));
    EXPECT_EQ(row[1], core::strategy_name(st.strategy));
    EXPECT_EQ(row[2], st.skipped_generation ? "1" : "0");
    EXPECT_EQ(row[3], std::to_string(st.frontier_count));
    EXPECT_EQ(row[4], std::to_string(st.frontier_edges));
    EXPECT_DOUBLE_EQ(std::stod(row[5]), st.ratio);
    EXPECT_DOUBLE_EQ(std::stod(row[6]), st.time_ms);
    EXPECT_DOUBLE_EQ(std::stod(row[7]), st.fetch_kb);
  }
}

TEST(Events, ElapsedMeasuresModelledStreamTime) {
  Device dev = make_device();
  Event start, stop;
  start.record(dev.stream(0));
  launch_named(dev, "work", 100000);
  stop.record(dev.stream(0));
  EXPECT_TRUE(start.recorded());
  EXPECT_GT(Event::elapsed_ms(start, stop), 0.0);
  EXPECT_DOUBLE_EQ(Event::elapsed_ms(stop, start),
                   -Event::elapsed_ms(start, stop));
}

TEST(Events, RecordCapturesStreamNotDevice) {
  Device dev = make_device();
  Stream& other = dev.create_stream("other");
  launch_named(dev, "work", 100000);  // advances stream 0 only
  Event e;
  e.record(other);
  EXPECT_DOUBLE_EQ(e.t_us(), 0.0);
}

}  // namespace
}  // namespace xbfs::sim
