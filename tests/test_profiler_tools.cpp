// Tests for the profiler tooling (aggregation, CSV export) and the
// hipEvent-style timestamps.
#include <gtest/gtest.h>

#include <sstream>

#include "hipsim/hipsim.h"

namespace xbfs::sim {
namespace {

Device make_device() {
  return Device(DeviceProfile::test_profile(), SimOptions{.num_workers = 1});
}

void launch_named(Device& dev, const char* name, std::size_t stores) {
  DeviceBuffer<std::uint32_t> scratch = dev.alloc<std::uint32_t>(stores);
  auto s = scratch.span();
  dev.launch(name, LaunchConfig{1, 64, 1.0}, [=](BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(stores, [&](std::uint64_t i) {
      ctx.store(s, i, static_cast<std::uint32_t>(i));
    });
  });
}

TEST(ProfilerTools, AggregateByKernelSumsLaunches) {
  Device dev = make_device();
  launch_named(dev, "alpha", 4096);
  launch_named(dev, "beta", 64);
  launch_named(dev, "alpha", 4096);
  const auto totals = dev.profiler().aggregate_by_kernel();
  ASSERT_EQ(totals.size(), 2u);
  // Sorted by descending runtime; alpha ran twice with more work.
  EXPECT_EQ(totals[0].kernel, "alpha");
  EXPECT_EQ(totals[0].launches, 2u);
  EXPECT_EQ(totals[1].kernel, "beta");
  EXPECT_EQ(totals[1].launches, 1u);
  EXPECT_GT(totals[0].runtime_ms, totals[1].runtime_ms);
}

TEST(ProfilerTools, CsvHasHeaderAndOneRowPerLaunch) {
  Device dev = make_device();
  dev.profiler().set_context(3, "phase-x");
  launch_named(dev, "kernel_a", 64);
  launch_named(dev, "kernel_b", 64);
  std::ostringstream os;
  dev.profiler().write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kernel,level,tag,runtime_ms"), std::string::npos);
  EXPECT_NE(csv.find("kernel_a,3,phase-x,"), std::string::npos);
  // header + 2 rows
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Events, ElapsedMeasuresModelledStreamTime) {
  Device dev = make_device();
  Event start, stop;
  start.record(dev.stream(0));
  launch_named(dev, "work", 100000);
  stop.record(dev.stream(0));
  EXPECT_TRUE(start.recorded());
  EXPECT_GT(Event::elapsed_ms(start, stop), 0.0);
  EXPECT_DOUBLE_EQ(Event::elapsed_ms(stop, start),
                   -Event::elapsed_ms(start, stop));
}

TEST(Events, RecordCapturesStreamNotDevice) {
  Device dev = make_device();
  Stream& other = dev.create_stream("other");
  launch_named(dev, "work", 100000);  // advances stream 0 only
  Event e;
  e.record(other);
  EXPECT_DOUBLE_EQ(e.t_us(), 0.0);
}

}  // namespace
}  // namespace xbfs::sim
