// SLO / error-budget engine tests: spec parsing, sliding-window burn-rate
// arithmetic, lifetime budget accounting, per-GCD lane attribution, window
// expiry and the prefer_cheap() signal the degradation ladder consults.
// All clocks are explicit (record/snapshot take now_ms), so every assertion
// is deterministic.
#include <gtest/gtest.h>

#include <string>

#include "obs/slo.h"

namespace xbfs {
namespace {

using obs::SloConfig;
using obs::SloScope;
using obs::SloSnapshot;

SloConfig tight_config() {
  SloConfig cfg;
  cfg.availability = 0.9;  // allows 10% violations: easy burn arithmetic
  cfg.latency_ms = 0.0;
  cfg.window_ms = 1000.0;
  cfg.buckets = 10;  // 100 ms buckets
  cfg.burn_fast = 2.0;
  return cfg;
}

TEST(SloConfig, ParsesSpecAndIgnoresGarbage) {
  const SloConfig cfg = SloConfig::parse(
      "availability=0.95,latency_ms=50,window_ms=5000,buckets=4,"
      "burn_fast=3,unknown=1,malformed");
  EXPECT_DOUBLE_EQ(cfg.availability, 0.95);
  EXPECT_DOUBLE_EQ(cfg.latency_ms, 50.0);
  EXPECT_DOUBLE_EQ(cfg.window_ms, 5000.0);
  EXPECT_EQ(cfg.buckets, 4u);
  EXPECT_DOUBLE_EQ(cfg.burn_fast, 3.0);

  // Out-of-domain values keep the defaults.
  const SloConfig bad =
      SloConfig::parse("availability=1.5,window_ms=-1,buckets=0");
  EXPECT_DOUBLE_EQ(bad.availability, SloConfig{}.availability);
  EXPECT_DOUBLE_EQ(bad.window_ms, SloConfig{}.window_ms);
  EXPECT_EQ(bad.buckets, SloConfig{}.buckets);
}

TEST(SloScope, AllGoodTrafficBurnsNothing) {
  SloScope s("t", tight_config(), 2);
  for (int i = 0; i < 100; ++i) s.record(i % 2, true, 1.0, 10.0 * i);
  const SloSnapshot snap = s.snapshot(1000.0);
  EXPECT_EQ(snap.total_good, 100u);
  EXPECT_EQ(snap.total_bad, 0u);
  EXPECT_DOUBLE_EQ(snap.window.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(snap.budget_remaining, 1.0);
  EXPECT_FALSE(snap.budget_exhausted);
  EXPECT_FALSE(s.prefer_cheap(1000.0));
}

TEST(SloScope, BurnRateIsViolationFractionOverAllowance) {
  SloScope s("t", tight_config(), 1);
  // 10 outcomes in the window, 1 bad: violation fraction 0.1, allowance
  // 0.1 -> burn exactly 1.0 (spending the budget exactly at the line).
  for (int i = 0; i < 9; ++i) s.record(0, true, 1.0, 50.0);
  s.record(0, false, 0.0, 50.0);
  const SloSnapshot snap = s.snapshot(100.0);
  EXPECT_NEAR(snap.window.burn_rate, 1.0, 1e-9);
  EXPECT_NEAR(snap.window.availability, 0.9, 1e-9);
  // Lifetime: allowed violations = 0.1 * 10 = 1, spent 1 -> budget gone.
  EXPECT_NEAR(snap.budget_remaining, 0.0, 1e-9);
  EXPECT_TRUE(snap.budget_exhausted);
}

TEST(SloScope, LatencyObjectiveCountsSlowCompletionsAgainstBudget) {
  SloConfig cfg = tight_config();
  cfg.latency_ms = 10.0;
  SloScope s("t", cfg, 1);
  for (int i = 0; i < 8; ++i) s.record(0, true, 1.0, 50.0);
  s.record(0, true, 50.0, 50.0);  // completed but over the objective
  s.record(0, true, 10.0, 50.0);  // exactly at the objective: not slow
  const SloSnapshot snap = s.snapshot(100.0);
  EXPECT_EQ(snap.total_slow, 1u);
  EXPECT_EQ(snap.total_good, 9u);
  EXPECT_NEAR(snap.window.burn_rate, 1.0, 1e-9);  // 1 of 10 over allowance .1
}

TEST(SloScope, WindowForgetsButLifetimeRemembers) {
  SloScope s("t", tight_config(), 1);
  for (int i = 0; i < 5; ++i) s.record(0, false, 0.0, 50.0);
  // Inside the window the incident is visible...
  EXPECT_GT(s.snapshot(500.0).window.burn_rate, 1.0);
  // ...two windows later the sliding window is clean but the lifetime
  // budget stays spent.
  const SloSnapshot later = s.snapshot(3000.0);
  EXPECT_DOUBLE_EQ(later.window.burn_rate, 0.0);
  EXPECT_EQ(later.total_bad, 5u);
  EXPECT_TRUE(later.budget_exhausted);
}

TEST(SloScope, PerGcdLanesAttributeSeparately) {
  SloScope s("t", tight_config(), 2);
  for (int i = 0; i < 10; ++i) s.record(0, true, 1.0, 50.0);
  for (int i = 0; i < 10; ++i) s.record(1, i != 0, 1.0, 50.0);  // 1 bad
  // Lane >= num_gcds: aggregate only (cache hits, expiries).
  s.record(7, true, 0.0, 50.0);

  const SloSnapshot snap = s.snapshot(100.0);
  ASSERT_EQ(snap.per_gcd.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.per_gcd[0].burn_rate, 0.0);
  EXPECT_GT(snap.per_gcd[1].burn_rate, 0.0);
  EXPECT_EQ(snap.per_gcd[0].good + snap.per_gcd[1].good +
                snap.per_gcd[1].bad,
            20u);
  EXPECT_EQ(snap.window.good + snap.window.bad, 21u);  // aggregate saw all
}

TEST(SloScope, EnsureGcdsGrowsLanesInPlace) {
  SloScope s("t", tight_config(), 1);
  s.record(0, true, 1.0, 50.0);
  s.ensure_gcds(3);
  s.record(2, false, 0.0, 50.0);
  const SloSnapshot snap = s.snapshot(100.0);
  ASSERT_EQ(snap.per_gcd.size(), 3u);
  EXPECT_EQ(snap.per_gcd[0].good, 1u);
  EXPECT_EQ(snap.per_gcd[2].bad, 1u);
}

TEST(SloScope, PreferCheapOnFastBurnOrExhaustedBudget) {
  SloScope s("t", tight_config(), 1);  // burn_fast = 2.0
  // 3 bad of 10 -> burn 3.0 >= 2.0: the ladder should start cheap.
  for (int i = 0; i < 7; ++i) s.record(0, true, 1.0, 50.0);
  for (int i = 0; i < 3; ++i) s.record(0, false, 0.0, 50.0);
  EXPECT_TRUE(s.prefer_cheap(100.0));
  // After the window slides past the incident the burn signal clears, but
  // the lifetime budget (allowed 1 of 10, spent 3) stays exhausted.
  EXPECT_TRUE(s.prefer_cheap(5000.0));
  // A scope with a forgiving history does not prefer cheap.
  SloScope calm("calm", tight_config(), 1);
  for (int i = 0; i < 100; ++i) calm.record(0, true, 1.0, 50.0);
  EXPECT_FALSE(calm.prefer_cheap(100.0));
}

TEST(SloEngine, ScopesAreCreateOrGetAndFindable) {
  obs::SloEngine eng;
  EXPECT_FALSE(eng.enabled());
  eng.configure("availability=0.95,window_ms=2000");
  EXPECT_TRUE(eng.enabled());
  EXPECT_EQ(eng.find("serve"), nullptr);

  SloScope& a = eng.scope("serve", 1);
  SloScope& b = eng.scope("serve", 4);  // same scope, lanes grown
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(eng.find("serve"), &a);
  EXPECT_DOUBLE_EQ(a.config().availability, 0.95);
  ASSERT_EQ(a.snapshot(0.0).per_gcd.size(), 4u);

  const auto names = eng.scope_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "serve");
}

}  // namespace
}  // namespace xbfs
