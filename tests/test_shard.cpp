// Tests for the sharded serving tier's storage and sweep layers: the
// frontier wire codec, the shard layout (1D partition + 2D grid), the
// budget-checked ShardedStore, and the plan-driven distributed sweep.
#include <gtest/gtest.h>

#include <numeric>
#include <queue>

#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "shard/frontier_codec.h"
#include "shard/layout.h"
#include "shard/shard_bfs.h"
#include "shard/sharded_store.h"

namespace xbfs::shard {
namespace {

// --- frontier codec ---------------------------------------------------------

TEST(FrontierCodec, VarintRoundTrip) {
  std::vector<std::uint8_t> buf;
  const std::uint64_t values[] = {0,   1,    127,        128,
                                  129, 4000, 1ull << 40, ~0ull};
  for (const std::uint64_t v : values) put_varint(buf, v);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = p + buf.size();
  for (const std::uint64_t v : values) {
    std::uint64_t out = 0;
    p = get_varint(p, end, &out);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(p, end);
}

TEST(FrontierCodec, VarintRejectsTruncatedAndOverlong) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1ull << 40);
  std::uint64_t out = 0;
  // Truncated: stop one byte short of the terminator.
  EXPECT_EQ(get_varint(buf.data(), buf.data() + buf.size() - 1, &out),
            nullptr);
  // Overlong: eleven continuation bytes never terminate within 64 bits.
  const std::vector<std::uint8_t> overlong(11, 0x80);
  EXPECT_EQ(get_varint(overlong.data(), overlong.data() + overlong.size(),
                       &out),
            nullptr);
}

TEST(FrontierCodec, SparseFrontierUsesDeltaVarintAndRoundTrips) {
  std::vector<std::uint64_t> words(64, 0);
  const std::uint64_t positions[] = {3, 64, 777, 2048, 4095};
  for (const std::uint64_t pos : positions) {
    words[pos / 64] |= std::uint64_t{1} << (pos % 64);
  }
  const EncodedFrontier enc = encode_frontier(words.data(), 0, words.size());
  EXPECT_EQ(enc.format, FrontierFormat::DeltaVarint);
  EXPECT_EQ(enc.set_bits, 5u);
  EXPECT_LT(enc.wire_bytes(), enc.raw_bytes());

  std::vector<std::uint64_t> out(64, 0);
  EXPECT_EQ(decode_frontier_or(enc, out.data()), 5u);
  EXPECT_EQ(out, words);
}

TEST(FrontierCodec, DenseFrontierFallsBackToBitmap) {
  std::vector<std::uint64_t> words(8, ~std::uint64_t{0});
  const EncodedFrontier enc = encode_frontier(words.data(), 0, words.size());
  EXPECT_EQ(enc.format, FrontierFormat::Bitmap);
  EXPECT_EQ(enc.set_bits, 8u * 64u);
  std::vector<std::uint64_t> out(8, 0);
  EXPECT_EQ(decode_frontier_or(enc, out.data()), 8u * 64u);
  EXPECT_EQ(out, words);
}

TEST(FrontierCodec, EmptyFrontierEncodesAndAppliesNothing) {
  std::vector<std::uint64_t> words(4, 0);
  const EncodedFrontier enc = encode_frontier(words.data(), 0, words.size());
  EXPECT_EQ(enc.set_bits, 0u);
  std::vector<std::uint64_t> out(4, 0xdeadbeefull);
  EXPECT_EQ(decode_frontier_or(enc, out.data()), 0u);
  EXPECT_EQ(out[0], 0xdeadbeefull);
}

TEST(FrontierCodec, WordRangeSlicesLandAtGlobalPositions) {
  std::vector<std::uint64_t> words(16, 0);
  words[5] = 0b1011;
  words[7] = std::uint64_t{1} << 63;
  const EncodedFrontier enc = encode_frontier(words.data(), 5, 3);
  std::vector<std::uint64_t> out(16, 0);
  decode_frontier_or(enc, out.data());
  EXPECT_EQ(out[5], 0b1011ull);
  EXPECT_EQ(out[7], std::uint64_t{1} << 63);
  EXPECT_EQ(out[6], 0ull);
}

TEST(FrontierCodec, ReanchoredSliceDecodesAtNewBase) {
  // The broadcast path encodes a rebased slice (word_begin = 0) and then
  // re-anchors it by patching word_begin: payload positions are
  // slice-relative in both formats, so only the base moves.
  std::vector<std::uint64_t> slice(3, 0);
  slice[0] = 0b101;
  slice[2] = 0b10;
  for (const bool dense : {false, true}) {
    std::vector<std::uint64_t> s = slice;
    if (dense) s[1] = ~std::uint64_t{0};  // force the bitmap format
    EncodedFrontier enc = encode_frontier(s.data(), 0, s.size());
    enc.word_begin = 9;
    std::vector<std::uint64_t> out(16, 0);
    decode_frontier_or(enc, out.data());
    EXPECT_EQ(out[9], s[0]);
    EXPECT_EQ(out[10], s[1]);
    EXPECT_EQ(out[11], s[2]);
  }
}

TEST(FrontierCodec, DecodeOrsIntoExistingBits) {
  std::vector<std::uint64_t> words(2, 0);
  words[0] = 0b100;
  const EncodedFrontier enc = encode_frontier(words.data(), 0, 2);
  std::vector<std::uint64_t> out(2, 0);
  out[0] = 0b001;
  decode_frontier_or(enc, out.data());
  EXPECT_EQ(out[0], 0b101ull);
}

// --- layout -----------------------------------------------------------------

TEST(ShardLayout, GridIsNearSquareFactorization) {
  for (const unsigned shards : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 17u}) {
    const ShardLayout lay(10000, shards);
    EXPECT_EQ(lay.grid_rows() * lay.grid_cols(), shards);
    EXPECT_GE(lay.grid_rows(), lay.grid_cols());
    // cols is the largest divisor <= sqrt(shards).
    EXPECT_LE(lay.grid_cols() * lay.grid_cols(), shards);
  }
  EXPECT_EQ(ShardLayout(100, 4).grid_cols(), 2u);
  EXPECT_EQ(ShardLayout(100, 17).grid_cols(), 1u);  // prime: flat row
}

TEST(ShardLayout, LayoutHashSeparatesShardCounts) {
  const std::uint64_t h4 = ShardLayout(10000, 4).layout_hash();
  const std::uint64_t h8 = ShardLayout(10000, 8).layout_hash();
  const std::uint64_t h4b = ShardLayout(10000, 4).layout_hash();
  EXPECT_NE(h4, h8);
  EXPECT_EQ(h4, h4b);
  EXPECT_NE(ShardLayout(10001, 4).layout_hash(), h4);
}

// --- sharded store ----------------------------------------------------------

ShardStoreConfig small_cfg(unsigned shards, unsigned replicas = 1) {
  ShardStoreConfig cfg;
  cfg.shards = shards;
  cfg.replicas = replicas;
  cfg.device_options.num_workers = 1;
  return cfg;
}

TEST(ShardedStore, BudgetRejectionNamesMinimumShardCount) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 3;
  const graph::Csr g = graph::rmat_csr(p);
  ShardStoreConfig cfg = small_cfg(2);
  // A budget below the 2-way worst slice but above the 8-way one.
  cfg.device_budget_bytes = ShardedStore::estimate_replica_bytes(g, 8);
  ASSERT_LT(cfg.device_budget_bytes, ShardedStore::estimate_replica_bytes(g, 2));
  try {
    ShardedStore store(g, cfg);
    FAIL() << "expected budget rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("re-shard to >= "),
              std::string::npos);
  }
}

TEST(ShardedStore, MemoryReportShowsOversubscription) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 5;
  const graph::Csr g = graph::rmat_csr(p);
  ShardStoreConfig cfg = small_cfg(4);
  cfg.device_budget_bytes =
      ShardedStore::estimate_replica_bytes(g, 4) * 5 / 4;
  const ShardedStore store(g, cfg);
  const ShardMemoryReport rep = store.memory_report();
  EXPECT_TRUE(rep.fits);
  // The whole graph would not fit one budget-sized device: that is the
  // point of sharding it.
  EXPECT_GT(rep.oversubscription, 2.0);
  EXPECT_GT(rep.single_device_bytes, rep.budget_bytes);
  EXPECT_LE(rep.max_shard_bytes, rep.budget_bytes);
  EXPECT_GT(rep.min_shards, 1u);
}

TEST(ShardedStore, KillAndReviveTrackHealthyReplicas) {
  const graph::Csr g = graph::build_csr(64, {{0, 1}, {1, 2}, {2, 3}});
  const ShardStoreConfig cfg = small_cfg(2, 2);
  ShardedStore store(g, cfg);
  EXPECT_EQ(store.num_slots(), 4u);
  EXPECT_EQ(store.healthy_replicas(0), 2u);
  store.kill_replica(0, 1);
  EXPECT_FALSE(store.alive(0, 1));
  EXPECT_EQ(store.healthy_replicas(0), 1u);
  EXPECT_EQ(store.healthy_replicas(1), 2u);
  store.revive_replica(0, 1);
  EXPECT_EQ(store.healthy_replicas(0), 2u);
}

TEST(ShardedStore, FingerprintSaltChangesOnReshard) {
  const graph::Csr g = graph::build_csr(256, {{0, 1}, {100, 200}});
  const ShardedStore s4(g, small_cfg(4));
  const ShardedStore s8(g, small_cfg(8));
  EXPECT_NE(s4.fingerprint_salt(), s8.fingerprint_salt());
  // Same layout, same salt: a rebuilt store keeps its cache keys.
  const ShardedStore s4b(g, small_cfg(4));
  EXPECT_EQ(s4.fingerprint_salt(), s4b.fingerprint_salt());
}

TEST(ShardedStore, ConfigValidationRejectsNonsense) {
  const graph::Csr g = graph::build_csr(8, {{0, 1}});
  ShardStoreConfig cfg = small_cfg(0);
  EXPECT_THROW(ShardedStore(g, cfg), std::invalid_argument);
  cfg = small_cfg(2);
  cfg.replicas = 0;
  EXPECT_THROW(ShardedStore(g, cfg), std::invalid_argument);
}

// --- the sweep --------------------------------------------------------------

std::vector<int> full_plan(const ShardedStore& store) {
  return std::vector<int>(store.shards(), 0);
}

/// Reference BFS over the subgraph induced by dropping every vertex whose
/// owner shard is lost — the contract ShardSweep::run documents.
std::vector<std::int32_t> reference_bfs_without(
    const graph::Csr& g, graph::vid_t src, const ShardLayout& lay,
    const std::vector<int>& plan) {
  std::vector<std::int32_t> levels(g.num_vertices(), -1);
  if (plan[lay.owner(src)] == ShardSweep::kLost) return levels;
  std::queue<graph::vid_t> q;
  levels[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const graph::vid_t v = q.front();
    q.pop();
    for (graph::eid_t e = g.offsets()[v]; e < g.offsets()[v + 1]; ++e) {
      const graph::vid_t w = g.cols()[e];
      if (levels[w] != -1) continue;
      if (plan[lay.owner(w)] == ShardSweep::kLost) continue;
      levels[w] = levels[v] + 1;
      q.push(w);
    }
  }
  return levels;
}

void expect_sweep_matches_reference(const graph::Csr& g, unsigned shards,
                                    double alpha = 0.1) {
  ShardStoreConfig cfg = small_cfg(shards);
  ShardedStore store(g, cfg);
  ShardSweepConfig scfg;
  scfg.alpha = alpha;
  ShardSweep sweep(store, scfg);
  const auto giant = graph::largest_component_vertices(g);
  for (graph::vid_t src : {giant.front(), giant[giant.size() / 2]}) {
    const ShardSweepResult r = sweep.run(src, full_plan(store));
    const auto ref = graph::reference_bfs(g, src);
    ASSERT_EQ(r.levels.size(), ref.size());
    for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(r.levels[v], ref[v])
          << "shards=" << shards << " src=" << src << " v=" << v;
    }
    EXPECT_FALSE(r.partial);
    EXPECT_EQ(r.shards_live, shards);
    EXPECT_GT(r.total_ms, 0.0);
    if (shards > 1) {
      EXPECT_GT(r.comm_ms, 0.0);
      EXPECT_GT(r.wire_bytes, 0u);
      EXPECT_GE(r.raw_bytes, r.wire_bytes / 4);  // wire has per-msg headers
    }
  }
}

class ShardSweepParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardSweepParam, MatchesReferenceOnRmat) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 7;
  expect_sweep_matches_reference(graph::rmat_csr(p), GetParam());
}

TEST_P(ShardSweepParam, MatchesReferenceOnLongDiameter) {
  expect_sweep_matches_reference(graph::layered_citation(4000, 50, 4, 3),
                                 GetParam());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardSweepParam,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "shards" + std::to_string(info.param);
                         });

TEST(ShardSweep, LostShardEqualsVertexDeletedSubgraph) {
  graph::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 11;
  const graph::Csr g = graph::rmat_csr(p);
  ShardedStore store(g, small_cfg(4));
  ShardSweep sweep(store, {});
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant.front();
  const unsigned owner = store.layout().owner(src);

  std::vector<int> plan = full_plan(store);
  const unsigned lost = owner == 3 ? 0 : 3;
  plan[lost] = ShardSweep::kLost;

  const ShardSweepResult r = sweep.run(src, plan);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.shards_lost, 1u);
  EXPECT_EQ(r.shards_live, 3u);
  const auto ref = reference_bfs_without(g, src, store.layout(), plan);
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(r.levels[v], ref[v]) << "v=" << v;
  }
  // The lost range really is all unreached.
  for (graph::vid_t v = store.layout().begin(lost);
       v < store.layout().end(lost); ++v) {
    ASSERT_EQ(r.levels[v], -1);
  }
}

TEST(ShardSweep, LostSourceShardThrows) {
  const graph::Csr g = graph::build_csr(64, {{0, 1}, {1, 2}});
  ShardedStore store(g, small_cfg(4));
  ShardSweep sweep(store, {});
  std::vector<int> plan = full_plan(store);
  plan[store.layout().owner(0)] = ShardSweep::kLost;
  EXPECT_THROW(sweep.run(0, plan), std::invalid_argument);
}

TEST(ShardSweep, MalformedPlanThrows) {
  const graph::Csr g = graph::build_csr(64, {{0, 1}});
  ShardedStore store(g, small_cfg(2));
  ShardSweep sweep(store, {});
  EXPECT_THROW(sweep.run(0, {0}), std::invalid_argument);       // wrong size
  EXPECT_THROW(sweep.run(0, {0, 7}), std::invalid_argument);    // bad replica
}

TEST(ShardSweep, RunsOnNonZeroReplicas) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  p.seed = 13;
  const graph::Csr g = graph::rmat_csr(p);
  ShardedStore store(g, small_cfg(2, 2));
  ShardSweep sweep(store, {});
  const auto giant = graph::largest_component_vertices(g);
  const std::vector<int> plan = {1, 0};  // mixed replica row
  const ShardSweepResult r = sweep.run(giant.front(), plan);
  const auto ref = graph::reference_bfs(g, giant.front());
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(r.levels[v], ref[v]);
  }
}

TEST(ShardSweep, TwoPhasePromotionOnlyOnTopDownLevels) {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 17;
  const graph::Csr g = graph::rmat_csr(p);
  ShardedStore store(g, small_cfg(4));  // grid 2x2: promotion is on the table
  EXPECT_EQ(store.layout().grid_cols(), 2u);
  ShardSweep sweep(store, {});
  const auto giant = graph::largest_component_vertices(g);
  const ShardSweepResult r = sweep.run(giant.front(), full_plan(store));
  for (const ShardLevelStats& st : r.level_stats) {
    if (st.bottom_up) EXPECT_FALSE(st.two_phase);
  }
}

TEST(ShardSweep, CompressedExchangeBeatsRawBitmapsOnSparseLevels) {
  // Deep, narrow frontiers: nearly every exchanged slice is sparse, so the
  // delta-varint wire total must come in far below the raw bitmap total.
  const graph::Csr g = graph::layered_citation(6000, 60, 4, 3);
  ShardedStore store(g, small_cfg(4));
  ShardSweepConfig cfg;
  cfg.alpha = 2.0;  // top-down only: both exchange kinds every level
  ShardSweep sweep(store, cfg);
  const auto giant = graph::largest_component_vertices(g);
  const ShardSweepResult r = sweep.run(giant.front(), full_plan(store));
  EXPECT_GT(r.raw_bytes, 0u);
  EXPECT_LT(r.wire_bytes, r.raw_bytes / 2);
}

}  // namespace
}  // namespace xbfs::shard
