// Unit tests for the analytic timing model and the device-profile cost
// relationships the paper's optimizations rely on (expensive AMD syncs,
// first-launch warm-up, register-spill multiplier, imbalance clamping).
#include <gtest/gtest.h>

#include "hipsim/hipsim.h"

namespace xbfs::sim {
namespace {

TEST(TimingModel, EmptyKernelIsLaunchOverheadOnly) {
  const DeviceProfile p = DeviceProfile::test_profile();
  const TimingBreakdown t = kernel_time(p, KernelCounters{}, 1.0);
  EXPECT_DOUBLE_EQ(t.total_us, p.kernel_launch_us);
  EXPECT_DOUBLE_EQ(t.mem_unit_busy_pct(), 0.0);
}

TEST(TimingModel, BandwidthBoundKernel) {
  const DeviceProfile p = DeviceProfile::test_profile();
  KernelCounters c;
  c.fetch_bytes = static_cast<std::uint64_t>(p.hbm_bytes_per_us * 1000);
  const TimingBreakdown t = kernel_time(p, c, 1.0);
  EXPECT_NEAR(t.t_hbm_us, 1000.0, 1e-9);
  EXPECT_NEAR(t.total_us, p.kernel_launch_us + 1000.0, 1e-9);
  EXPECT_GT(t.mem_unit_busy_pct(), 95.0);
}

TEST(TimingModel, WritebackCountsTowardHbmTime) {
  const DeviceProfile p = DeviceProfile::test_profile();
  KernelCounters fetch_only, with_wb;
  fetch_only.fetch_bytes = 1 << 20;
  with_wb.fetch_bytes = 1 << 20;
  with_wb.writeback_bytes = 1 << 20;
  EXPECT_GT(kernel_time(p, with_wb, 1.0).t_hbm_us,
            kernel_time(p, fetch_only, 1.0).t_hbm_us);
}

TEST(TimingModel, SpillFactorScalesWholeKernelTime) {
  const DeviceProfile p = DeviceProfile::test_profile();
  KernelCounters c;
  c.lane_slots = static_cast<std::uint64_t>(p.lane_slots_per_us * 100);
  c.fetch_bytes = static_cast<std::uint64_t>(p.hbm_bytes_per_us * 500);
  const TimingBreakdown base = kernel_time(p, c, 1.0, 1.0);
  const TimingBreakdown spilled = kernel_time(p, c, 1.0, 10.0);
  // The knob models measured compiler effects on the whole kernel, so it
  // must bite even when the kernel is memory-bound.
  EXPECT_NEAR(spilled.total_us - p.kernel_launch_us,
              (base.total_us - p.kernel_launch_us) * 10.0, 1e-6);
}

TEST(TimingModel, AtomicBoundKernel) {
  const DeviceProfile p = DeviceProfile::test_profile();
  KernelCounters c;
  c.atomics = static_cast<std::uint64_t>(p.atomics_per_us * 500);
  const TimingBreakdown t = kernel_time(p, c, 1.0);
  EXPECT_NEAR(t.t_atomic_us, 500.0, 1e-9);
  EXPECT_NEAR(t.bottleneck_us, 500.0, 1e-9);
}

TEST(TimingModel, LatencyTermDominatesDependentChains) {
  DeviceProfile p = DeviceProfile::test_profile();
  KernelCounters c;
  // Many hits, tiny payload: bandwidth terms are negligible but the
  // latency-over-MLP term is not.
  c.l2_hits = 10'000'000;
  c.l2_hit_bytes = c.l2_hits * 4;
  const TimingBreakdown t = kernel_time(p, c, 1.0);
  EXPECT_GT(t.t_latency_us, t.t_l2_us);
  EXPECT_DOUBLE_EQ(t.bottleneck_us, t.t_latency_us);
}

TEST(TimingModel, ImbalanceIsClamped) {
  const DeviceProfile p = DeviceProfile::test_profile();
  KernelCounters c;
  c.fetch_bytes = 1 << 20;
  EXPECT_DOUBLE_EQ(kernel_time(p, c, 0.1).imbalance, 1.0);
  EXPECT_DOUBLE_EQ(kernel_time(p, c, 100.0).imbalance, 8.0);
  EXPECT_DOUBLE_EQ(kernel_time(p, c, 3.0).imbalance, 3.0);
}

TEST(TimingModel, MemUnitBusyNeverExceeds100) {
  const DeviceProfile p = DeviceProfile::test_profile();
  KernelCounters c;
  c.fetch_bytes = 123456789;
  const TimingBreakdown t = kernel_time(p, c, 1.0);
  EXPECT_LE(t.mem_unit_busy_pct(), 100.0);
  EXPECT_GE(t.mem_unit_busy_pct(), 0.0);
}

TEST(DeviceProfiles, AmdSyncCostExceedsNvidia) {
  // The premise of the stream-consolidation optimization (Sec. IV-B).
  EXPECT_GT(DeviceProfile::mi250x_gcd().device_sync_us,
            DeviceProfile::p6000().device_sync_us);
  EXPECT_GT(DeviceProfile::mi250x_gcd().stream_join_us,
            DeviceProfile::p6000().stream_join_us);
}

TEST(DeviceProfiles, Wavefront64OnAmdAnd32OnNvidia) {
  EXPECT_EQ(DeviceProfile::mi250x_gcd().wavefront_size, 64u);
  EXPECT_EQ(DeviceProfile::p6000().wavefront_size, 32u);
}

TEST(DeviceProfiles, Mi250xMatchesPublishedSpecs) {
  const DeviceProfile p = DeviceProfile::mi250x_gcd();
  EXPECT_EQ(p.num_cus, 110u);
  EXPECT_DOUBLE_EQ(p.hbm_bytes_per_us, 1.6e6);      // 1.6 TB/s per GCD
  EXPECT_EQ(p.l2_bytes, 8ull * 1024 * 1024);        // 8 MB L2
  EXPECT_EQ(p.device_mem_bytes, 64ull << 30);       // 64 GB HBM2E per GCD
}

}  // namespace
}  // namespace xbfs::sim
