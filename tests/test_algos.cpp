// Tests for the downstream-algorithm library: concurrent multi-source BFS,
// betweenness centrality and SCC detection — each validated against a
// serial host reference.
#include <gtest/gtest.h>

#include <random>

#include "algos/bc.h"
#include "algos/multi_bfs.h"
#include "algos/scc.h"
#include "graph/device_csr.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"

namespace xbfs::algos {
namespace {

sim::Device make_device() {
  return sim::Device(sim::DeviceProfile::mi250x_gcd(),
                     sim::SimOptions{.num_workers = 2});
}

graph::Csr undirected_rmat(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

// --- multi-source BFS -------------------------------------------------------

TEST(MultiBfs, MatchesPerSourceReference) {
  const graph::Csr g = undirected_rmat(10, 3);
  sim::Device dev = make_device();
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const auto giant = graph::largest_component_vertices(g);
  std::vector<graph::vid_t> sources;
  for (std::size_t i = 0; i < 8; ++i) {
    sources.push_back(giant[i * giant.size() / 8]);
  }
  const MultiBfsResult r = multi_source_bfs(dev, dg, sources);
  ASSERT_EQ(r.levels.size(), sources.size());
  for (std::size_t si = 0; si < sources.size(); ++si) {
    const auto ref = graph::reference_bfs(g, sources[si]);
    ASSERT_EQ(r.levels[si], ref) << "source " << sources[si];
  }
  EXPECT_GT(r.total_ms, 0.0);
}

TEST(MultiBfs, SingleSourceDegenerate) {
  const graph::Csr g = undirected_rmat(9, 4);
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const auto giant = graph::largest_component_vertices(g);
  const MultiBfsResult r = multi_source_bfs(dev, dg, {giant[0]});
  EXPECT_EQ(r.levels[0], graph::reference_bfs(g, giant[0]));
}

TEST(MultiBfs, SixtyFourSourcesAreAccepted) {
  const graph::Csr g = undirected_rmat(9, 5);
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const auto giant = graph::largest_component_vertices(g);
  std::vector<graph::vid_t> sources;
  std::mt19937_64 rng(1);
  for (int i = 0; i < 64; ++i) {
    sources.push_back(giant[rng() % giant.size()]);
  }
  const MultiBfsResult r = multi_source_bfs(dev, dg, sources);
  // Spot-check a handful against the reference.
  for (std::size_t si : {0ul, 13ul, 63ul}) {
    EXPECT_EQ(r.levels[si], graph::reference_bfs(g, sources[si]));
  }
}

TEST(MultiBfs, GroupSourcesIsAPermutationOfDistinctSources) {
  const graph::Csr g = undirected_rmat(10, 9);
  const auto giant = graph::largest_component_vertices(g);
  std::vector<graph::vid_t> sources;
  for (std::size_t i = 0; i < 24; ++i) {
    sources.push_back(giant[(i * 997) % giant.size()]);
  }
  // group_sources deduplicates, so compare against the distinct set.
  auto distinct = sources;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  const auto grouped = group_sources(g, sources, 8);
  ASSERT_EQ(grouped.size(), distinct.size());
  auto b = grouped;
  std::sort(b.begin(), b.end());
  EXPECT_EQ(b, distinct);
}

TEST(MultiBfs, GroupSourcesClustersNeighborhoods) {
  // Two far-apart cliques; mixed sources must be regrouped clique-first.
  std::vector<graph::Edge> e;
  for (graph::vid_t u = 0; u < 8; ++u) {
    for (graph::vid_t v = u + 1; v < 8; ++v) e.push_back({u, v});
  }
  for (graph::vid_t u = 100; u < 108; ++u) {
    for (graph::vid_t v = u + 1; v < 108; ++v) e.push_back({u, v});
  }
  e.push_back({7, 100});  // thin bridge
  const graph::Csr g = graph::build_csr(108, std::move(e));
  // Interleave sources from both cliques.
  const std::vector<graph::vid_t> mixed = {0, 101, 1, 102, 2, 103, 3, 104};
  const auto grouped = group_sources(g, mixed, 4);
  // The first group of four must be from one clique only.
  const bool first_low = grouped[0] < 50;
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(grouped[i] < 50, first_low) << i;
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_NE(grouped[i] < 50, first_low) << i;
  }
}

TEST(MultiBfs, RejectsBadSourceCounts) {
  const graph::Csr g = undirected_rmat(8, 6);
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  EXPECT_THROW(multi_source_bfs(dev, dg, {}), std::invalid_argument);
  std::vector<graph::vid_t> too_many(65, 0);
  EXPECT_THROW(multi_source_bfs(dev, dg, too_many), std::invalid_argument);
}

TEST(MultiBfs, SharedTraversalBeatsSequentialRuns) {
  // The iBFS pitch: one shared sweep is cheaper than 16 separate BFS.
  const graph::Csr g = undirected_rmat(12, 7);
  sim::Device dev = make_device();
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const auto giant = graph::largest_component_vertices(g);
  std::vector<graph::vid_t> sources;
  for (int i = 0; i < 16; ++i) {
    sources.push_back(giant[i * giant.size() / 16]);
  }
  const MultiBfsResult shared = multi_source_bfs(dev, dg, sources);
  double sequential_ms = 0;
  for (graph::vid_t src : sources) {
    sequential_ms += multi_source_bfs(dev, dg, {src}).total_ms;
  }
  EXPECT_LT(shared.total_ms, sequential_ms);
}

// --- betweenness centrality -------------------------------------------------

TEST(Betweenness, MatchesReferenceOnPath) {
  // Path 0-1-2-3-4: exact BC is well known.
  const graph::Csr g = graph::build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  std::vector<graph::vid_t> all = {0, 1, 2, 3, 4};
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const BcResult r = betweenness_centrality(dev, dg, all);
  const auto ref = betweenness_reference(g, all);
  for (graph::vid_t v = 0; v < 5; ++v) {
    EXPECT_NEAR(r.centrality[v], ref[v], 1e-9) << v;
  }
  // Middle vertex carries the most shortest paths.
  EXPECT_GT(r.centrality[2], r.centrality[1]);
  EXPECT_GT(r.centrality[1], r.centrality[0]);
}

TEST(Betweenness, StarCenterDominates) {
  std::vector<graph::Edge> e;
  for (graph::vid_t v = 1; v < 30; ++v) e.push_back({0, v});
  const graph::Csr g = graph::build_csr(30, std::move(e));
  std::vector<graph::vid_t> all(30);
  for (graph::vid_t v = 0; v < 30; ++v) all[v] = v;
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const BcResult r = betweenness_centrality(dev, dg, all);
  for (graph::vid_t v = 1; v < 30; ++v) {
    EXPECT_NEAR(r.centrality[v], 0.0, 1e-12);
  }
  // Center: 29*28 ordered pairs route through it.
  EXPECT_NEAR(r.centrality[0], 29.0 * 28.0, 1e-9);
}

TEST(Betweenness, MatchesReferenceOnRmatSample) {
  const graph::Csr g = undirected_rmat(9, 8);
  const auto giant = graph::largest_component_vertices(g);
  std::vector<graph::vid_t> sources;
  for (int i = 0; i < 6; ++i) sources.push_back(giant[i * 31 % giant.size()]);
  sim::Device dev = make_device();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const BcResult r = betweenness_centrality(dev, dg, sources);
  const auto ref = betweenness_reference(g, sources);
  double max_err = 0, max_val = 0;
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    max_err = std::max(max_err, std::abs(r.centrality[v] - ref[v]));
    max_val = std::max(max_val, ref[v]);
  }
  EXPECT_LT(max_err, 1e-6 * std::max(1.0, max_val));
}

// --- SCC ---------------------------------------------------------------------

graph::Csr directed_from(std::vector<graph::Edge> edges, graph::vid_t n) {
  graph::BuildOptions opt;
  opt.symmetrize = false;
  return graph::build_csr(n, std::move(edges), opt);
}

SccResult run_scc(const graph::Csr& g) {
  sim::Device dev = make_device();
  auto fwd = graph::DeviceCsr::upload(dev, g);
  const graph::Csr rg = graph::reverse_csr(g);
  auto bwd = graph::DeviceCsr::upload(dev, rg);
  return scc_fw_bw(dev, fwd, bwd);
}

TEST(Scc, HandCraftedComponents) {
  // Two 3-cycles joined by a one-way bridge, plus a tail vertex.
  const graph::Csr g = directed_from(
      {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}, {5, 6}}, 7);
  const SccResult r = run_scc(g);
  graph::vid_t ref_count = 0;
  const auto ref = scc_reference(g, &ref_count);
  EXPECT_EQ(ref_count, 3u);  // {0,1,2}, {3,4,5}, {6}
  EXPECT_TRUE(same_partition(r.component, ref));
  EXPECT_EQ(r.num_components, ref_count);
}

TEST(Scc, DagIsAllSingletons) {
  const graph::Csr g =
      directed_from({{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}, 5);
  const SccResult r = run_scc(g);
  EXPECT_EQ(r.num_components, 5u);
  EXPECT_GT(r.trimmed, 0u);  // trim-1 should eat the whole DAG
  graph::vid_t ref_count = 0;
  const auto ref = scc_reference(g, &ref_count);
  EXPECT_TRUE(same_partition(r.component, ref));
}

TEST(Scc, SingleBigCycle) {
  std::vector<graph::Edge> e;
  for (graph::vid_t v = 0; v < 50; ++v) e.push_back({v, (v + 1) % 50});
  const graph::Csr g = directed_from(std::move(e), 50);
  const SccResult r = run_scc(g);
  EXPECT_EQ(r.num_components, 1u);
  for (graph::vid_t v = 1; v < 50; ++v) {
    EXPECT_EQ(r.component[v], r.component[0]);
  }
}

TEST(Scc, RandomDirectedGraphsMatchTarjan) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const graph::vid_t n = 200 + trial * 100;
    std::vector<graph::Edge> edges;
    const unsigned m = n * 3;
    for (unsigned i = 0; i < m; ++i) {
      edges.push_back({static_cast<graph::vid_t>(rng() % n),
                       static_cast<graph::vid_t>(rng() % n)});
    }
    const graph::Csr g = directed_from(std::move(edges), n);
    const SccResult r = run_scc(g);
    graph::vid_t ref_count = 0;
    const auto ref = scc_reference(g, &ref_count);
    ASSERT_EQ(r.num_components, ref_count) << "trial " << trial;
    ASSERT_TRUE(same_partition(r.component, ref)) << "trial " << trial;
  }
}

TEST(Scc, ReferencePartitionChecker) {
  EXPECT_TRUE(same_partition({0, 0, 1}, {5, 5, 9}));
  EXPECT_FALSE(same_partition({0, 0, 1}, {5, 9, 9}));
  EXPECT_FALSE(same_partition({0, 1}, {0, 0}));
  EXPECT_FALSE(same_partition({0}, {0, 0}));
}

}  // namespace
}  // namespace xbfs::algos
