// Tests for the adaptive strategy controller: the alpha threshold, the
// growth-rate rule, queue availability, NFG transitions and forced mode.
#include <gtest/gtest.h>

#include "core/policy.h"

namespace xbfs::core {
namespace {

LevelInputs base_inputs() {
  LevelInputs in;
  in.level = 3;
  in.frontier_count = 1000;
  in.frontier_edges = 10000;
  in.prev_frontier_count = 800;
  in.total_edges = 1'000'000;
  in.queue_available = true;
  in.has_prev = true;
  in.prev_strategy = Strategy::ScanFree;
  return in;
}

TEST(Policy, RatioAboveAlphaPicksBottomUp) {
  XbfsConfig cfg;
  cfg.alpha = 0.1;
  AdaptivePolicy p(cfg);
  LevelInputs in = base_inputs();
  in.frontier_edges = 200'000;  // ratio 0.2
  const LevelDecision d = p.decide(in);
  EXPECT_EQ(d.strategy, Strategy::BottomUp);
  EXPECT_NEAR(d.ratio, 0.2, 1e-12);
}

TEST(Policy, RatioBelowAlphaStaysTopDown) {
  AdaptivePolicy p(XbfsConfig{});
  LevelInputs in = base_inputs();
  in.frontier_edges = 50'000;  // ratio 0.05 < 0.1
  EXPECT_NE(p.decide(in).strategy, Strategy::BottomUp);
}

TEST(Policy, AlphaBoundaryIsExclusive) {
  XbfsConfig cfg;
  cfg.alpha = 0.1;
  AdaptivePolicy p(cfg);
  LevelInputs in = base_inputs();
  in.frontier_edges = 100'000;  // ratio exactly 0.1
  EXPECT_NE(p.decide(in).strategy, Strategy::BottomUp);
}

TEST(Policy, MissingQueueForcesSingleScanWithGeneration) {
  AdaptivePolicy p(XbfsConfig{});
  LevelInputs in = base_inputs();
  in.queue_available = false;
  const LevelDecision d = p.decide(in);
  EXPECT_EQ(d.strategy, Strategy::SingleScan);
  EXPECT_FALSE(d.skip_generation);
}

TEST(Policy, PostBottomUpTransitionUsesNfg) {
  AdaptivePolicy p(XbfsConfig{});
  LevelInputs in = base_inputs();
  in.prev_strategy = Strategy::BottomUp;
  const LevelDecision d = p.decide(in);
  EXPECT_EQ(d.strategy, Strategy::SingleScan);
  EXPECT_TRUE(d.skip_generation);
}

TEST(Policy, PostBottomUpWithoutNfgFallsThroughToGrowthRule) {
  XbfsConfig cfg;
  cfg.enable_nfg = false;
  AdaptivePolicy p(cfg);
  LevelInputs in = base_inputs();
  in.prev_strategy = Strategy::BottomUp;
  in.frontier_count = 100;  // shrinking
  const LevelDecision d = p.decide(in);
  EXPECT_EQ(d.strategy, Strategy::ScanFree);
}

TEST(Policy, RapidGrowthPrefersSingleScan) {
  AdaptivePolicy p(XbfsConfig{});
  LevelInputs in = base_inputs();
  in.frontier_count = 100'000;  // 125x growth over prev 800
  const LevelDecision d = p.decide(in);
  EXPECT_EQ(d.strategy, Strategy::SingleScan);
  EXPECT_TRUE(d.skip_generation);  // queue is available
}

TEST(Policy, SlowGrowthPrefersScanFree) {
  AdaptivePolicy p(XbfsConfig{});
  LevelInputs in = base_inputs();
  in.frontier_count = 900;  // ~1.1x growth
  EXPECT_EQ(p.decide(in).strategy, Strategy::ScanFree);
}

TEST(Policy, GrowthThresholdKnob) {
  XbfsConfig cfg;
  cfg.growth_threshold = 1.05;
  AdaptivePolicy p(cfg);
  LevelInputs in = base_inputs();
  in.frontier_count = 900;  // 1.125x > 1.05
  EXPECT_EQ(p.decide(in).strategy, Strategy::SingleScan);
}

TEST(Policy, ForcedStrategyOverridesEverything) {
  for (Strategy s : {Strategy::ScanFree, Strategy::SingleScan,
                     Strategy::BottomUp}) {
    XbfsConfig cfg;
    cfg.forced_strategy = static_cast<int>(s);
    AdaptivePolicy p(cfg);
    LevelInputs in = base_inputs();
    in.frontier_edges = 900'000;  // would be bottom-up adaptively
    const LevelDecision d = p.decide(in);
    EXPECT_EQ(d.strategy, s);
    EXPECT_FALSE(d.skip_generation);  // profiling mode runs all kernels
  }
}

TEST(Policy, Level0SingleVertexIsScanFree) {
  // The canonical start: one source in the queue, negligible ratio.
  AdaptivePolicy p(XbfsConfig{});
  LevelInputs in;
  in.level = 0;
  in.frontier_count = 1;
  in.frontier_edges = 30;
  in.prev_frontier_count = 0;
  in.total_edges = 1'000'000;
  in.queue_available = true;
  in.has_prev = false;
  EXPECT_EQ(p.decide(in).strategy, Strategy::ScanFree);
}

TEST(Policy, AlphaAboveOneDisablesBottomUp) {
  XbfsConfig cfg;
  cfg.alpha = 1.1;
  AdaptivePolicy p(cfg);
  LevelInputs in = base_inputs();
  in.frontier_edges = in.total_edges;  // ratio 1.0
  EXPECT_NE(p.decide(in).strategy, Strategy::BottomUp);
}

TEST(Policy, ZeroTotalEdgesDoesNotDivideByZero) {
  AdaptivePolicy p(XbfsConfig{});
  LevelInputs in = base_inputs();
  in.total_edges = 0;
  in.frontier_edges = 0;
  const LevelDecision d = p.decide(in);
  EXPECT_EQ(d.ratio, 0.0);
}

}  // namespace
}  // namespace xbfs::core
