// Durable write path integration tests (docs/durability.md): fresh
// initialization, recover-vs-twin fingerprint equality across snapshot
// spills and WAL rotations, torn-tail truncation, fingerprint-chain and
// snapshot corruption refusal, injected disk faults rejecting updates
// without publishing, and the serve layer's recovery stats + stale-result
// fence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "dyn/graph_store.h"
#include "graph/builder.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/fault.h"
#include "serve/server.h"
#include "store/durability.h"
#include "store/manifest.h"
#include "store/recovery.h"
#include "store/wal.h"

namespace xbfs::store {
namespace {

using dyn::EdgeBatch;

graph::Csr small_rmat() {
  graph::RmatParams p;
  p.scale = 7;
  p.edge_factor = 6;
  p.seed = 99;
  return graph::rmat_csr(p);
}

class DurabilityTest : public ::testing::Test {
 protected:
  std::string dir(const char* name) {
    const auto p = std::filesystem::temp_directory_path() /
                   (std::string("xbfs_durability_") + name + "_" +
                    std::to_string(::getpid()));
    std::filesystem::remove_all(p);
    created_.push_back(p.string());
    return p.string();
  }
  void TearDown() override {
    sim::FaultInjector::global().disable();
    for (const auto& p : created_) std::filesystem::remove_all(p);
  }
  std::vector<std::string> created_;
};

EdgeBatch random_batch(std::mt19937_64& rng, graph::vid_t n,
                       std::size_t ops = 6) {
  EdgeBatch b;
  for (std::size_t i = 0; i < ops; ++i) {
    const auto u = static_cast<graph::vid_t>(rng() % n);
    const auto v = static_cast<graph::vid_t>(rng() % n);
    if (rng() % 3 == 0) {
      b.erase(u, v);
    } else {
      b.insert(u, v);
    }
  }
  return b;
}

std::string find_snapshot(const std::string& dir) {
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("snap-", 0) == 0) return e.path().string();
  }
  return {};
}

TEST_F(DurabilityTest, FreshOpenLaysDownAFullPair) {
  const std::string d = dir("fresh");
  DurableStore ds;
  ASSERT_TRUE(open_durable({d, 8}, small_rmat(), {}, 256, &ds).ok());
  ASSERT_NE(ds.store, nullptr);
  EXPECT_NE(ds.store->durability(), nullptr);

  // Epoch-0 snapshot + WAL + manifest exist before any update.
  EXPECT_TRUE(file_exists(d + "/" + kManifestName));
  EXPECT_FALSE(find_snapshot(d).empty());
  Manifest m;
  ASSERT_TRUE(read_manifest(d, &m).ok());
  EXPECT_EQ(m.snapshot_epoch, 0u);
  EXPECT_EQ(m.snapshot_fingerprint, ds.store->fingerprint());
  EXPECT_TRUE(file_exists(d + "/" + m.wal_file));

  std::mt19937_64 rng(1);
  for (int i = 0; i < 5; ++i) {
    dyn::ApplyStats st;
    ASSERT_TRUE(ds.store->try_apply(random_batch(rng, 128), &st).ok());
  }
  const dyn::DurabilityStats s = ds.durability->stats();
  EXPECT_EQ(s.wal_appends, 5u);
  EXPECT_EQ(s.wal_append_failures, 0u);
  EXPECT_EQ(s.last_durable_epoch, ds.store->epoch());
  EXPECT_EQ(s.last_durable_fingerprint, ds.store->fingerprint());
  EXPECT_GE(s.wal_bytes, kWalHeaderBytes);
}

TEST_F(DurabilityTest, RecoverMatchesNeverClosedTwin) {
  // Same batch stream through two durable stores; one is closed and
  // recovered mid-stream.  Snapshot_every=4 forces spills + rotations in
  // the middle of the stream, so recovery starts from a rotated pair.
  const std::string d1 = dir("recover");
  const std::string d2 = dir("twin");
  DurableStore a, twin;
  ASSERT_TRUE(open_durable({d1, 4}, small_rmat(), {}, 256, &a).ok());
  ASSERT_TRUE(open_durable({d2, 4}, small_rmat(), {}, 256, &twin).ok());

  std::mt19937_64 rng(2);
  std::vector<EdgeBatch> stream;
  for (int i = 0; i < 19; ++i) stream.push_back(random_batch(rng, 128));

  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(a.store->try_apply(stream[i], nullptr).ok());
  }
  for (const EdgeBatch& b : stream) {
    ASSERT_TRUE(twin.store->try_apply(b, nullptr).ok());
  }
  EXPECT_GE(a.durability->stats().snapshots_spilled, 2u);

  // "Close" the first store (drop it) and recover from its directory.
  a.store.reset();
  a.durability.reset();
  DurableStore r;
  ASSERT_TRUE(open_durable({d1, 4}, graph::Csr{}, {}, 256, &r).ok());
  const dyn::DurabilityStats rs = r.durability->stats();
  EXPECT_TRUE(rs.recovered);
  EXPECT_FALSE(rs.torn_tail_detected);
  EXPECT_EQ(rs.recovered_epoch, 11u);

  // Resume the stream on the recovered store; every epoch/fingerprint pair
  // must now match the twin that never restarted.
  for (std::size_t i = 11; i < stream.size(); ++i) {
    ASSERT_TRUE(r.store->try_apply(stream[i], nullptr).ok());
  }
  EXPECT_EQ(r.store->epoch(), twin.store->epoch());
  EXPECT_EQ(r.store->fingerprint(), twin.store->fingerprint());

  // The graphs agree structurally, not just by hash: reference BFS levels
  // from a handful of sources are identical.
  const dyn::Snapshot sr = r.store->snapshot();
  const dyn::Snapshot st = twin.store->snapshot();
  for (graph::vid_t src : {0u, 17u, 63u, 127u}) {
    EXPECT_EQ(graph::reference_bfs(sr.graph->materialize(), src),
              graph::reference_bfs(st.graph->materialize(), src))
        << "source " << src;
  }
}

TEST_F(DurabilityTest, TornTailIsTruncatedAndOverwritten) {
  const std::string d = dir("torn");
  DurableStore a;
  ASSERT_TRUE(open_durable({d, 0}, small_rmat(), {}, 256, &a).ok());
  std::mt19937_64 rng(3);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(a.store->try_apply(random_batch(rng, 128), nullptr).ok());
  }
  const std::uint64_t full_epoch = a.store->epoch();
  Manifest m;
  ASSERT_TRUE(read_manifest(d, &m).ok());
  a.store.reset();
  a.durability.reset();

  // Simulate a crash mid-append: a half-record of plausible bytes at the
  // tail (valid magic + length, payload cut short).
  {
    std::FILE* f = std::fopen((d + "/" + m.wal_file).c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint32_t magic = kWalRecordMagic;
    const std::uint32_t len = 1000;
    std::fwrite(&magic, 1, sizeof(magic), f);
    std::fwrite(&len, 1, sizeof(len), f);
    const char junk[] = "partial";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }

  DurableStore r;
  ASSERT_TRUE(open_durable({d, 0}, graph::Csr{}, {}, 256, &r).ok());
  const dyn::DurabilityStats rs = r.durability->stats();
  EXPECT_TRUE(rs.recovered);
  EXPECT_TRUE(rs.torn_tail_detected);
  EXPECT_GT(rs.wal_bytes_truncated, 0u);
  EXPECT_EQ(r.store->epoch(), full_epoch);

  // The truncation point is durable: a new append lands where the torn
  // bytes were and the segment reads back clean.
  ASSERT_TRUE(r.store->try_apply(random_batch(rng, 128), nullptr).ok());
  WalReadResult wr;
  ASSERT_TRUE(read_wal(d + "/" + m.wal_file, &wr).ok());
  EXPECT_FALSE(wr.torn_tail);
  EXPECT_EQ(wr.records.back().epoch, full_epoch + 1);
}

TEST_F(DurabilityTest, BrokenFingerprintChainRefusesRecovery) {
  const std::string d = dir("chain");
  DurableStore a;
  ASSERT_TRUE(open_durable({d, 0}, small_rmat(), {}, 256, &a).ok());
  std::mt19937_64 rng(4);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(a.store->try_apply(random_batch(rng, 128), nullptr).ok());
  }
  const std::uint64_t epoch = a.store->epoch();
  Manifest m;
  ASSERT_TRUE(read_manifest(d, &m).ok());
  a.store.reset();
  a.durability.reset();

  // Append a CRC-valid record whose chain link lies about history.
  WalReadResult wr;
  ASSERT_TRUE(read_wal(d + "/" + m.wal_file, &wr).ok());
  WalWriter w;
  ASSERT_TRUE(
      WalWriter::open_existing(d + "/" + m.wal_file, wr.valid_bytes, &w).ok());
  WalRecord bogus;
  bogus.epoch = epoch + 1;
  bogus.prev_fingerprint = 0xDEADBEEFu;  // not the store's fingerprint
  bogus.fingerprint = 0xFEEDFACEu;
  bogus.batch.insert(0, 1);
  ASSERT_TRUE(w.append(bogus).ok());
  w.close();

  DurableStore r;
  const xbfs::Status s = open_durable({d, 0}, graph::Csr{}, {}, 256, &r);
  EXPECT_TRUE(s == xbfs::StatusCode::DataCorruption) << s.to_string();
}

TEST_F(DurabilityTest, CorruptSnapshotRefusesRecovery) {
  const std::string d = dir("snapcorrupt");
  DurableStore a;
  ASSERT_TRUE(open_durable({d, 0}, small_rmat(), {}, 256, &a).ok());
  a.store.reset();
  a.durability.reset();

  const std::string snap = find_snapshot(d);
  ASSERT_FALSE(snap.empty());
  {
    // Flip one byte in the middle of the column data.
    std::FILE* f = std::fopen(snap.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_GT(size, 64);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }

  DurableStore r;
  const xbfs::Status s = open_durable({d, 0}, graph::Csr{}, {}, 256, &r);
  EXPECT_TRUE(s == xbfs::StatusCode::DataCorruption) << s.to_string();
}

TEST_F(DurabilityTest, GarbledManifestRefusesRecovery) {
  const std::string d = dir("manifest");
  DurableStore a;
  ASSERT_TRUE(open_durable({d, 0}, small_rmat(), {}, 256, &a).ok());
  a.store.reset();
  a.durability.reset();
  {
    std::FILE* f = std::fopen((d + "/" + kManifestName).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "xbfs-manifest v1\nsnapshot nope 0 zz\n";
    std::fwrite(junk, 1, sizeof(junk) - 1, f);
    std::fclose(f);
  }
  DurableStore r;
  const xbfs::Status s = open_durable({d, 0}, graph::Csr{}, {}, 256, &r);
  EXPECT_TRUE(s == xbfs::StatusCode::DataCorruption) << s.to_string();
}

TEST_F(DurabilityTest, FsyncFailureRejectsWithoutPublishing) {
  const std::string d = dir("fsyncfail");
  DurableStore a;
  ASSERT_TRUE(open_durable({d, 0}, small_rmat(), {}, 256, &a).ok());
  std::mt19937_64 rng(5);
  ASSERT_TRUE(a.store->try_apply(random_batch(rng, 128), nullptr).ok());
  const std::uint64_t epoch = a.store->epoch();
  const std::uint64_t fp = a.store->fingerprint();

  sim::FaultConfig fc;
  fc.fsync_fail_rate = 1.0;
  sim::FaultInjector::global().configure(fc);
  const xbfs::Status s = a.store->try_apply(random_batch(rng, 128), nullptr);
  EXPECT_FALSE(s.ok());
  sim::FaultInjector::global().disable();

  // Not durable => not visible: the store never moved.
  EXPECT_EQ(a.store->epoch(), epoch);
  EXPECT_EQ(a.store->fingerprint(), fp);
  EXPECT_GE(a.durability->stats().fsync_failures, 1u);

  // The rolled-back segment still accepts appends and recovers cleanly.
  ASSERT_TRUE(a.store->try_apply(random_batch(rng, 128), nullptr).ok());
  const std::uint64_t final_fp = a.store->fingerprint();
  a.store.reset();
  a.durability.reset();
  DurableStore r;
  ASSERT_TRUE(open_durable({d, 0}, graph::Csr{}, {}, 256, &r).ok());
  EXPECT_EQ(r.store->fingerprint(), final_fp);
}

TEST_F(DurabilityTest, TornWriteRollsBackAndRejects) {
  const std::string d = dir("tornwrite");
  DurableStore a;
  ASSERT_TRUE(open_durable({d, 0}, small_rmat(), {}, 256, &a).ok());
  std::mt19937_64 rng(6);
  ASSERT_TRUE(a.store->try_apply(random_batch(rng, 128), nullptr).ok());
  const std::uint64_t fp = a.store->fingerprint();

  sim::FaultConfig fc;
  fc.disk_torn_rate = 1.0;
  sim::FaultInjector::global().configure(fc);
  EXPECT_FALSE(a.store->try_apply(random_batch(rng, 128), nullptr).ok());
  sim::FaultInjector::global().disable();

  EXPECT_EQ(a.store->fingerprint(), fp);
  EXPECT_GE(a.durability->stats().wal_append_failures, 1u);
  ASSERT_TRUE(a.store->try_apply(random_batch(rng, 128), nullptr).ok());

  Manifest m;
  ASSERT_TRUE(read_manifest(d, &m).ok());
  WalReadResult wr;
  ASSERT_TRUE(read_wal(d + "/" + m.wal_file, &wr).ok());
  EXPECT_FALSE(wr.torn_tail);  // rollback kept the segment whole
}

// --- serve-layer wiring ----------------------------------------------------

serve::ServeConfig manual_config() {
  serve::ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.batch_window_ms = 0.0;
  cfg.xbfs.report_runs = false;
  return cfg;
}

TEST_F(DurabilityTest, ServerRequireDurabilityIsEnforced) {
  dyn::GraphStore volatile_store(small_rmat());
  serve::ServeConfig cfg = manual_config();
  cfg.require_durability = true;
  EXPECT_THROW(serve::Server(volatile_store, cfg), std::invalid_argument);

  const graph::Csr g = small_rmat();
  EXPECT_THROW(serve::Server(g, cfg), std::invalid_argument);

  DurableStore ds;
  ASSERT_TRUE(
      open_durable({dir("servedur"), 8}, small_rmat(), {}, 256, &ds).ok());
  serve::Server srv(*ds.store, cfg);
  const serve::ServerStats st = srv.stats();
  EXPECT_TRUE(st.durable);
  EXPECT_FALSE(st.recovered);
  srv.shutdown();
}

TEST_F(DurabilityTest, ServerRejectsStaleResultsAfterRecovery) {
  const std::string d = dir("servestale");
  std::uint64_t pre_crash_fp = 0;
  std::uint64_t durable_fp = 0;
  {
    DurableStore ds;
    ASSERT_TRUE(open_durable({d, 0}, small_rmat(), {}, 256, &ds).ok());
    serve::Server srv(*ds.store, manual_config());
    std::mt19937_64 rng(7);
    for (int i = 0; i < 3; ++i) {
      const serve::UpdateAdmission a =
          srv.submit_update(random_batch(rng, 128));
      ASSERT_TRUE(a.accepted) << a.status.to_string();
    }
    durable_fp = srv.graph_fingerprint();
    const serve::ServerStats st = srv.stats();
    EXPECT_EQ(st.wal_appends, 3u);
    EXPECT_EQ(st.last_durable_epoch, 3u);
    srv.shutdown();

    // An update the WAL refused: the caller's result fingerprint for it
    // never existed durably.
    sim::FaultConfig fc;
    fc.fsync_fail_rate = 1.0;
    sim::FaultInjector::global().configure(fc);
    dyn::ApplyStats ignored;
    EXPECT_FALSE(ds.store->try_apply(random_batch(rng, 128), &ignored).ok());
    sim::FaultInjector::global().disable();
    pre_crash_fp = 0x1234567890ABCDEFull;  // a fingerprint from lost history
  }

  DurableStore r;
  ASSERT_TRUE(open_durable({d, 0}, graph::Csr{}, {}, 256, &r).ok());
  serve::Server srv(*r.store, manual_config());
  const serve::ServerStats st = srv.stats();
  EXPECT_TRUE(st.durable);
  EXPECT_TRUE(st.recovered);
  EXPECT_EQ(st.recovery_replayed, 3u);

  // The recovered fingerprint is served; anything else is provably stale.
  EXPECT_EQ(srv.graph_fingerprint(), durable_fp);
  EXPECT_TRUE(srv.result_still_valid(durable_fp));
  EXPECT_FALSE(srv.result_still_valid(pre_crash_fp));
  EXPECT_EQ(srv.stats().recovery_stale_rejected, 1u);
  srv.shutdown();
}

TEST_F(DurabilityTest, ServerSurfacesDurabilityRejections) {
  DurableStore ds;
  ASSERT_TRUE(
      open_durable({dir("servereject"), 0}, small_rmat(), {}, 256, &ds).ok());
  serve::Server srv(*ds.store, manual_config());
  std::mt19937_64 rng(8);

  sim::FaultConfig fc;
  fc.fsync_fail_rate = 1.0;
  sim::FaultInjector::global().configure(fc);
  const serve::UpdateAdmission a = srv.submit_update(random_batch(rng, 128));
  sim::FaultInjector::global().disable();
  EXPECT_FALSE(a.accepted);
  EXPECT_FALSE(a.status.ok());

  const serve::UpdateAdmission ok = srv.submit_update(random_batch(rng, 128));
  EXPECT_TRUE(ok.accepted) << ok.status.to_string();

  const serve::ServerStats st = srv.stats();
  EXPECT_EQ(st.updates_rejected_durability, 1u);
  EXPECT_GE(st.wal_fsync_failures, 1u);
  EXPECT_EQ(st.updates_applied, 1u);
  srv.shutdown();
}

}  // namespace
}  // namespace xbfs::store
