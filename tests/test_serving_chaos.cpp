// Resilient-serving tests: the serving engine under injected faults.  The
// contract being verified is the acceptance bar of the resilience work —
// every admitted query completes with validated-correct levels while the
// fault injector is firing, degrading through retry -> engine ladder ->
// host CPU as needed — plus the circuit-breaker state machine itself.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/fault.h"
#include "serve/health.h"
#include "serve/server.h"

namespace xbfs::serve {
namespace {

graph::Csr toy_graph(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

/// Manual dispatch, zero batching window, zero retry backoff: each test
/// drives cycles explicitly and runs in milliseconds even when every
/// device attempt fails.
ServeConfig chaos_config() {
  ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.batch_window_ms = 0.0;
  cfg.retry_backoff_ms = 0.0;
  cfg.breaker_cooldown_ms = 0.1;
  return cfg;
}

/// Tests own the process-wide injector and always hand it back disabled,
/// whatever the ambient XBFS_FAULTS environment configured.
class ServingChaos : public ::testing::Test {
 protected:
  void SetUp() override { sim::FaultInjector::global().disable(); }
  void TearDown() override { sim::FaultInjector::global().disable(); }

  static void inject(double kernel, double memcpy, std::uint64_t seed) {
    sim::FaultConfig fc;
    fc.kernel_fault_rate = kernel;
    fc.memcpy_corruption_rate = memcpy;
    fc.seed = seed;
    sim::FaultInjector::global().configure(fc);
  }
};

TEST_F(ServingChaos, ModerateFaultsEveryQueryCompletesCorrect) {
  const graph::Csr g = toy_graph(9, 41);
  const auto giant = graph::largest_component_vertices(g);
  ASSERT_GE(giant.size(), 8u);

  inject(/*kernel=*/0.2, /*memcpy=*/0.1, /*seed=*/11);
  Server server(g, chaos_config());

  std::vector<Admission> pending;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < 8; ++i) {
      QueryOptions qo;
      qo.bypass_cache = true;  // force a traversal (and fault draws) each time
      Admission a = server.submit(giant[i], qo);
      ASSERT_TRUE(a.accepted);
      pending.push_back(std::move(a));
    }
    server.dispatch_once();
  }

  for (std::size_t i = 0; i < pending.size(); ++i) {
    const QueryResult r = pending[i].result.get();
    ASSERT_EQ(r.status, QueryStatus::Completed) << r.error.to_string();
    EXPECT_EQ(*r.levels, graph::reference_bfs(g, r.source));
    EXPECT_TRUE(r.validated);  // Auto validation is active under injection
    // attempts counts device dispatches; it is 0 only when an open breaker
    // sent the query straight to the host rung.
    EXPECT_TRUE(r.attempts >= 1 || r.engine == "cpu-serial")
        << r.engine << " attempts=" << r.attempts;
    EXPECT_FALSE(r.engine.empty());
  }

  const ServerStats st = server.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.completed, pending.size());
  EXPECT_GT(st.validated_results, 0u);
  server.shutdown();
}

TEST_F(ServingChaos, StragglerPenaltiesAccumulateAndTripTheBreaker) {
  const graph::Csr g = toy_graph(8, 47);
  const auto giant = graph::largest_component_vertices(g);
  ASSERT_GE(giant.size(), 6u);

  ServeConfig cfg = chaos_config();
  // Zero straggler budget: every completed device dispatch blows it.
  // Regression: the success report that follows a kept straggler result
  // used to reset the breaker's failure streak (0 -> 1 -> 0 each time),
  // so dispatch timeouts could never trip the default threshold of 3.
  cfg.dispatch_timeout_ms = 0.0;
  Server server(g, cfg);

  std::vector<Admission> pending;
  for (std::size_t i = 0; i < 6; ++i) {
    QueryOptions qo;
    qo.bypass_cache = true;  // force a fresh device dispatch per cycle
    Admission a = server.submit(giant[i], qo);
    ASSERT_TRUE(a.accepted);
    pending.push_back(std::move(a));
    server.dispatch_once();
  }
  for (auto& a : pending) {
    const QueryResult r = a.result.get();
    // Stragglers keep their results; only the health tracker is penalized.
    ASSERT_EQ(r.status, QueryStatus::Completed) << r.error.to_string();
    EXPECT_EQ(*r.levels, graph::reference_bfs(g, r.source));
  }

  const ServerStats st = server.stats();
  EXPECT_GE(st.dispatch_timeouts, 3u);
  EXPECT_GE(st.breaker_opens, 1u);
  server.shutdown();
}

TEST_F(ServingChaos, CertainCorruptionIsDetectedAndServedViaTheHost) {
  const graph::Csr g = toy_graph(9, 42);
  const auto giant = graph::largest_component_vertices(g);

  // Every device transfer corrupt: validation must reject every device
  // result and the host rung (immune to simulated faults) must serve.
  inject(/*kernel=*/0.0, /*memcpy=*/1.0, /*seed=*/12);
  Server server(g, chaos_config());

  std::vector<Admission> pending;
  for (std::size_t i = 0; i < 4; ++i) {
    Admission a = server.submit(giant[i]);
    ASSERT_TRUE(a.accepted);
    pending.push_back(std::move(a));
  }
  server.dispatch_once();

  for (auto& a : pending) {
    const QueryResult r = a.result.get();
    ASSERT_EQ(r.status, QueryStatus::Completed) << r.error.to_string();
    EXPECT_EQ(*r.levels, graph::reference_bfs(g, r.source));
    EXPECT_TRUE(r.validated);
    EXPECT_TRUE(r.degraded);
  }

  const ServerStats st = server.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.validation_failures, 0u);
  EXPECT_GT(st.host_fallbacks, 0u);
  EXPECT_GT(st.degraded_queries, 0u);
  server.shutdown();
}

TEST_F(ServingChaos, CertainKernelFaultsDegradeToTheHostAndOpenTheBreaker) {
  const graph::Csr g = toy_graph(9, 43);
  const auto giant = graph::largest_component_vertices(g);

  inject(/*kernel=*/1.0, /*memcpy=*/0.0, /*seed=*/13);
  Server server(g, chaos_config());

  Admission a = server.submit(giant[0]);
  ASSERT_TRUE(a.accepted);
  server.dispatch_once();
  const QueryResult r = a.result.get();

  ASSERT_EQ(r.status, QueryStatus::Completed) << r.error.to_string();
  EXPECT_EQ(*r.levels, graph::reference_bfs(g, giant[0]));
  EXPECT_EQ(r.engine, "cpu-serial");  // nothing device-side could finish
  EXPECT_TRUE(r.degraded);

  const ServerStats st = server.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.faults_seen, 0u);
  EXPECT_GT(st.retries, 0u);
  EXPECT_GT(st.host_fallbacks, 0u);
  EXPECT_GT(st.breaker_opens, 0u);
  server.shutdown();
}

TEST_F(ServingChaos, WithoutHostFallbackExhaustedQueriesResolveFailed) {
  const graph::Csr g = toy_graph(9, 44);
  const auto giant = graph::largest_component_vertices(g);

  ServeConfig cfg = chaos_config();
  cfg.host_fallback = false;
  inject(/*kernel=*/1.0, /*memcpy=*/0.0, /*seed=*/14);
  Server server(g, cfg);

  Admission a = server.submit(giant[0]);
  ASSERT_TRUE(a.accepted);
  server.dispatch_once();
  const QueryResult r = a.result.get();

  EXPECT_EQ(r.status, QueryStatus::Failed);
  EXPECT_FALSE(r.levels);
  EXPECT_FALSE(r.error.ok());
  // The terminal status names a resilience-path failure, not a mystery.
  const StatusCode c = r.error.code();
  EXPECT_TRUE(c == StatusCode::FaultInjected || c == StatusCode::Unavailable ||
              c == StatusCode::ResourceExhausted)
      << r.error.to_string();

  const ServerStats st = server.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.completed, 0u);
  server.shutdown();
}

TEST_F(ServingChaos, RecoveryAfterFaultsStopServesOnTheDeviceAgain) {
  const graph::Csr g = toy_graph(9, 45);
  const auto giant = graph::largest_component_vertices(g);

  inject(/*kernel=*/1.0, /*memcpy=*/0.0, /*seed=*/15);
  Server server(g, chaos_config());
  Admission first = server.submit(giant[0]);
  ASSERT_TRUE(first.accepted);
  server.dispatch_once();
  EXPECT_EQ(first.result.get().engine, "cpu-serial");

  // Storm over: the breaker's cooldown (0.1 ms) elapses, the half-open
  // probe succeeds, and traffic returns to the device ladder.
  sim::FaultInjector::global().disable();
  QueryOptions qo;
  qo.bypass_cache = true;
  QueryResult back;
  for (int tries = 0; tries < 50; ++tries) {
    Admission again = server.submit(giant[1], qo);
    ASSERT_TRUE(again.accepted);
    server.dispatch_once();
    back = again.result.get();
    ASSERT_EQ(back.status, QueryStatus::Completed);
    if (back.engine != "cpu-serial") break;
  }
  EXPECT_EQ(*back.levels, graph::reference_bfs(g, giant[1]));
  EXPECT_NE(back.engine, "cpu-serial") << "breaker never closed";

  const ServerStats st = server.stats();
  EXPECT_GT(st.breaker_closes, 0u);
  server.shutdown();
}

// --- circuit breaker state machine ------------------------------------------

TEST_F(ServingChaos, BreakerTripsCoolsProbesAndRecovers) {
  BreakerConfig bc;
  bc.failure_threshold = 3;
  bc.cooldown_ms = 5.0;
  HealthTracker h(/*num_slots=*/2, bc);

  double now = 0.0;
  EXPECT_TRUE(h.allow(0, now));
  EXPECT_EQ(h.state(0), BreakerState::Closed);

  // Two failures: still closed (threshold is 3).
  h.record_failure(0, now);
  h.record_failure(0, now);
  EXPECT_EQ(h.state(0), BreakerState::Closed);
  // A success resets the consecutive count.
  h.record_success(0);
  h.record_failure(0, now);
  h.record_failure(0, now);
  EXPECT_EQ(h.state(0), BreakerState::Closed);
  // Third consecutive failure trips it.
  h.record_failure(0, now);
  EXPECT_EQ(h.state(0), BreakerState::Open);
  EXPECT_FALSE(h.allow(0, now + 1.0e3));  // cooldown not elapsed (1 ms)

  // Cooldown elapsed: exactly one probe token is handed out.
  now = 6.0e3;  // 6 ms, past the 5 ms cooldown
  EXPECT_TRUE(h.allow(0, now));
  EXPECT_EQ(h.state(0), BreakerState::HalfOpen);
  EXPECT_FALSE(h.allow(0, now)) << "second probe granted while one is out";

  // Failed probe: straight back to Open, cooldown restarts.
  h.record_failure(0, now);
  EXPECT_EQ(h.state(0), BreakerState::Open);
  EXPECT_FALSE(h.allow(0, now + 1.0e3));

  // Next probe succeeds: fully Closed again.
  now = 12.5e3;
  EXPECT_TRUE(h.allow(0, now));
  h.record_success(0);
  EXPECT_EQ(h.state(0), BreakerState::Closed);
  EXPECT_TRUE(h.allow(0, now));

  const HealthTracker::Counters c = h.counters();
  EXPECT_EQ(c.opens, 2u);
  EXPECT_EQ(c.half_opens, 2u);
  EXPECT_EQ(c.closes, 1u);
}

TEST_F(ServingChaos, PickPrefersTheHomeSlotAndRoutesAroundOpenBreakers) {
  BreakerConfig bc;
  bc.failure_threshold = 1;
  bc.cooldown_ms = 1.0e6;  // effectively never cools down in this test
  HealthTracker h(/*num_slots=*/3, bc);

  EXPECT_EQ(h.pick(1, 0.0), 1u);  // healthy home slot wins
  h.record_failure(1, 0.0);       // threshold 1: slot 1 opens
  const unsigned rerouted = h.pick(1, 0.0);
  EXPECT_NE(rerouted, 1u);
  EXPECT_LT(rerouted, 3u);

  h.record_failure(0, 0.0);
  h.record_failure(2, 0.0);
  EXPECT_EQ(h.pick(1, 0.0), HealthTracker::kNone);  // everything open
}

}  // namespace
}  // namespace xbfs::serve
