// Family-serving tests: one Server admitting mixed BFS/SSSP/CC/k-core
// traffic — typed payload correctness per kind, (algo, params)-salted
// cache keys, the QoS-classed weighted drain, the three deadline
// regressions fixed by serve::resolve_deadline_us (submit default-0,
// router default-0, the update lane's non-inherited deadline), and
// incremental CC equalling a fresh recompute under churn.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dyn/graph_store.h"
#include "graph/builder.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "serve/admission_queue.h"
#include "serve/server.h"
#include "shard/router.h"
#include "shard/sharded_store.h"

namespace xbfs::serve {
namespace {

using core::AlgoKind;
using core::AlgoQuery;
using graph::vid_t;

graph::Csr undirected_rmat(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

ServeConfig family_config() {
  ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.batch_window_ms = 0.0;
  cfg.xbfs.report_runs = false;
  cfg.algos = {AlgoKind::Bfs, AlgoKind::Sssp, AlgoKind::Cc,
               AlgoKind::KCore};
  return cfg;
}

QueryResult run_query(Server& server, AlgoQuery q, QueryOptions qo = {}) {
  Admission a = server.submit(q, qo);
  EXPECT_TRUE(a.accepted) << a.status.to_string();
  if (!a.accepted) return {};
  while (server.dispatch_once() == 0 &&
         a.result.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
  }
  return a.result.get();
}

// --- mixed serving ----------------------------------------------------------

TEST(WorkloadServing, MixedKindsServeOracleCorrectPayloads) {
  const graph::Csr g = undirected_rmat(9, 3);
  const vid_t src = graph::largest_component_vertices(g)[0];
  Server server(g, family_config());

  EXPECT_TRUE(server.serves(AlgoKind::Bfs));
  EXPECT_TRUE(server.serves(AlgoKind::KCore));
  EXPECT_FALSE(server.serves(AlgoKind::Bc));
  EXPECT_FALSE(server.serves(AlgoKind::Scc));

  AlgoQuery bq;
  bq.algo = AlgoKind::Bfs;
  bq.source = src;
  const QueryResult rb = run_query(server, bq);
  ASSERT_EQ(rb.status, QueryStatus::Completed) << rb.error.to_string();
  EXPECT_EQ(rb.algo, AlgoKind::Bfs);
  ASSERT_TRUE(rb.payload.levels);
  EXPECT_EQ(*rb.payload.levels, graph::reference_bfs(g, src));
  EXPECT_EQ(rb.levels, rb.payload.levels);  // BFS alias field kept in sync

  AlgoQuery sq;
  sq.algo = AlgoKind::Sssp;
  sq.source = src;
  sq.params.weight_seed = 5;
  const QueryResult rs = run_query(server, sq);
  ASSERT_EQ(rs.status, QueryStatus::Completed) << rs.error.to_string();
  ASSERT_TRUE(rs.payload.distances);
  EXPECT_EQ(*rs.payload.distances,
            graph::reference_sssp(g, src, 5, sq.params.max_weight));
  EXPECT_FALSE(rs.levels);  // non-BFS results carry no levels alias

  AlgoQuery cq;
  cq.algo = AlgoKind::Cc;
  const QueryResult rc = run_query(server, cq);
  ASSERT_EQ(rc.status, QueryStatus::Completed) << rc.error.to_string();
  ASSERT_TRUE(rc.payload.components);
  EXPECT_EQ(*rc.payload.components, graph::canonical_components(g));

  AlgoQuery kq;
  kq.algo = AlgoKind::KCore;
  kq.params.k = 2;
  const QueryResult rk = run_query(server, kq);
  ASSERT_EQ(rk.status, QueryStatus::Completed) << rk.error.to_string();
  ASSERT_TRUE(rk.payload.cores);
  EXPECT_EQ(*rk.payload.cores, graph::reference_kcore(g, 2));

  const ServerStats st = server.stats();
  EXPECT_EQ(st.per_algo[static_cast<std::size_t>(AlgoKind::Bfs)].completed,
            1u);
  EXPECT_EQ(st.per_algo[static_cast<std::size_t>(AlgoKind::Sssp)].completed,
            1u);
  EXPECT_EQ(st.per_algo[static_cast<std::size_t>(AlgoKind::Cc)].completed,
            1u);
  EXPECT_EQ(st.per_algo[static_cast<std::size_t>(AlgoKind::KCore)].completed,
            1u);
  EXPECT_EQ(st.algo_dispatches, 3u);  // sssp + cc + kcore; bfs swept
  server.shutdown();
}

TEST(WorkloadServing, UnservedKindIsRejectedInvalid) {
  const graph::Csr g = undirected_rmat(8, 3);
  Server server(g, family_config());
  AlgoQuery q;
  q.algo = AlgoKind::Scc;
  Admission a = server.submit(q);
  EXPECT_FALSE(a.accepted);
  EXPECT_EQ(a.status.code(), xbfs::StatusCode::InvalidArgument);
  EXPECT_EQ(server.stats().rejected_invalid, 1u);
  server.shutdown();
}

TEST(WorkloadServing, WholeGraphQueriesNormalizeAndDedup) {
  // CC from two different "sources" is one unit of work and one cache
  // entry: whole-graph kinds normalize to source 0 at admission.
  const graph::Csr g = undirected_rmat(8, 7);
  Server server(g, family_config());
  AlgoQuery q1, q2;
  q1.algo = q2.algo = AlgoKind::Cc;
  q1.source = 3;
  q2.source = 9;
  const QueryResult r1 = run_query(server, q1);
  const QueryResult r2 = run_query(server, q2);
  ASSERT_EQ(r1.status, QueryStatus::Completed);
  ASSERT_EQ(r2.status, QueryStatus::Completed);
  EXPECT_EQ(r1.source, 0u);
  EXPECT_EQ(r2.source, 0u);
  EXPECT_TRUE(r2.cache_hit);
  // The hit aliases the cold run's vector — no copy.
  EXPECT_EQ(r1.payload.components.get(), r2.payload.components.get());
  server.shutdown();
}

TEST(WorkloadServing, CacheKeysAreSaltedByAlgoAndParams) {
  const graph::Csr g = undirected_rmat(9, 13);
  const vid_t src = graph::largest_component_vertices(g)[0];
  Server server(g, family_config());

  // Same source, different kind: BFS result must not satisfy SSSP.
  AlgoQuery bq;
  bq.source = src;
  const QueryResult rb = run_query(server, bq);
  ASSERT_EQ(rb.status, QueryStatus::Completed);

  AlgoQuery s1;
  s1.algo = AlgoKind::Sssp;
  s1.source = src;
  const QueryResult r1 = run_query(server, s1);
  ASSERT_EQ(r1.status, QueryStatus::Completed);
  EXPECT_FALSE(r1.cache_hit);

  // Same kind + source, different weight seed: a different cache key and
  // genuinely different distances.
  AlgoQuery s2 = s1;
  s2.params.weight_seed = 77;
  const QueryResult r2 = run_query(server, s2);
  ASSERT_EQ(r2.status, QueryStatus::Completed);
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(*r2.payload.distances,
            graph::reference_sssp(g, src, 77, s2.params.max_weight));

  // Exact repeat: cache hit aliasing the cold run's payload.
  const QueryResult r3 = run_query(server, s2);
  ASSERT_EQ(r3.status, QueryStatus::Completed);
  EXPECT_TRUE(r3.cache_hit);
  EXPECT_EQ(r3.payload.distances.get(), r2.payload.distances.get());

  EXPECT_EQ(server.stats().cache_hits, 1u);
  server.shutdown();
}

// --- QoS-classed admission queue -------------------------------------------

PendingQuery pending_of(AlgoKind k, QueryId id) {
  PendingQuery p;
  p.id = id;
  p.query.algo = k;
  return p;
}

TEST(WorkloadServing, QosWheelDrainsWeightedRoundRobin) {
  std::array<unsigned, core::kNumAlgoKinds> weights{};
  weights[static_cast<std::size_t>(AlgoKind::Bfs)] = 2;
  weights[static_cast<std::size_t>(AlgoKind::Cc)] = 1;
  AdmissionQueue q(16, weights);
  for (QueryId i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(pending_of(AlgoKind::Bfs, i)).ok());
    ASSERT_TRUE(q.try_push(pending_of(AlgoKind::Cc, 100 + i)).ok());
  }

  // One wheel turn capped at 3 slots: bfs gets its weight-2 share, then cc
  // its weight-1 share — the analytics burst cannot monopolize the drain.
  std::vector<PendingQuery> out;
  ASSERT_EQ(q.try_pop_batch(out, 3), 3u);
  EXPECT_EQ(out[0].query.algo, AlgoKind::Bfs);
  EXPECT_EQ(out[1].query.algo, AlgoKind::Bfs);
  EXPECT_EQ(out[2].query.algo, AlgoKind::Cc);

  // Everything still drains; per-class counters balance.
  std::vector<PendingQuery> rest;
  EXPECT_EQ(q.try_pop_batch(rest, 16), 5u);
  const auto bfs = q.class_counters(AlgoKind::Bfs);
  const auto cc = q.class_counters(AlgoKind::Cc);
  EXPECT_EQ(bfs.pushed, 4u);
  EXPECT_EQ(bfs.popped, 4u);
  EXPECT_EQ(cc.pushed, 4u);
  EXPECT_EQ(cc.popped, 4u);
  EXPECT_EQ(bfs.depth + cc.depth, 0u);
}

TEST(WorkloadServing, QosCapacityStaysGlobalAcrossClasses) {
  AdmissionQueue q(2);
  ASSERT_TRUE(q.try_push(pending_of(AlgoKind::Bfs, 1)).ok());
  ASSERT_TRUE(q.try_push(pending_of(AlgoKind::Cc, 2)).ok());
  const xbfs::Status s = q.try_push(pending_of(AlgoKind::Sssp, 3));
  EXPECT_EQ(s.code(), xbfs::StatusCode::QueueFull);
  EXPECT_EQ(q.size(), 2u);
}

// --- deadline regressions (serve::resolve_deadline_us) ----------------------

TEST(WorkloadServing, SubmitWithZeroTimeoutAndNoDefaultNeverExpires) {
  // Historical bug: a resolved budget of exactly 0 created deadline == now
  // and expired every query at dispatch.  0 must mean "inherit", and an
  // inherited non-positive default must mean "no deadline".
  const graph::Csr g = undirected_rmat(8, 17);
  ServeConfig cfg = family_config();
  cfg.default_timeout_ms = 0.0;  // the historically lethal value
  Server server(g, cfg);

  AlgoQuery q;
  q.source = graph::largest_component_vertices(g)[0];
  Admission a = server.submit(q);  // QueryOptions{} -> timeout_ms = 0
  ASSERT_TRUE(a.accepted);
  // Let wall time visibly pass before the dispatch cycle runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  while (server.dispatch_once() == 0 &&
         a.result.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
  }
  const QueryResult r = a.result.get();
  EXPECT_EQ(r.status, QueryStatus::Completed) << r.error.to_string();
  EXPECT_EQ(server.stats().expired, 0u);
  server.shutdown();
}

TEST(WorkloadServing, RouterZeroTimeoutInheritsNoDeadline) {
  const graph::Csr g = undirected_rmat(9, 19);
  shard::ShardStoreConfig scfg;
  scfg.shards = 2;
  scfg.device_options.num_workers = 1;
  shard::ShardedStore store(g, scfg);
  shard::RouterConfig rcfg;
  rcfg.manual_dispatch = true;
  rcfg.default_timeout_ms = 0.0;  // same historical trap on the router
  shard::ShardRouter router(store, rcfg);

  Admission a = router.submit(graph::largest_component_vertices(g)[0]);
  ASSERT_TRUE(a.accepted) << a.status.to_string();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  router.dispatch_once();
  const QueryResult r = a.result.get();
  EXPECT_EQ(r.status, QueryStatus::Completed) << r.error.to_string();
  EXPECT_EQ(router.stats().expired, 0u);
  router.shutdown();
}

TEST(WorkloadServing, UpdateLaneDeadlineIsOwnedNotInherited) {
  dyn::GraphStore store(graph::build_csr(4, {{0, 1}, {1, 2}}));
  ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.batch_window_ms = 0.0;
  cfg.xbfs.report_runs = false;
  // A tiny query-side default must NOT leak into the write lane: dropping
  // a write because reads are slow is never what a caller means.
  cfg.default_timeout_ms = 0.0001;
  Server server(store, cfg);

  dyn::EdgeBatch grow;
  grow.insert(2, 3);
  const UpdateAdmission ok = server.submit_update(grow);  // timeout_ms = 0
  ASSERT_TRUE(ok.accepted) << ok.status.to_string();
  EXPECT_EQ(ok.epoch, 1u);

  // An explicit (absurdly small) update deadline does expire the batch —
  // rejected before apply, counted, epoch unchanged.
  dyn::EdgeBatch late;
  late.insert(0, 3);
  UpdateOptions uo;
  uo.timeout_ms = 1e-6;
  const UpdateAdmission rej = server.submit_update(late, uo);
  EXPECT_FALSE(rej.accepted);
  EXPECT_EQ(rej.status.code(), xbfs::StatusCode::DeadlineExceeded);

  const ServerStats st = server.stats();
  EXPECT_EQ(st.updates_applied, 1u);
  EXPECT_EQ(st.updates_expired, 1u);
  EXPECT_EQ(st.graph_epoch, 1u);
  server.shutdown();
}

// --- incremental CC under churn ---------------------------------------------

TEST(WorkloadServing, DynamicServerRejectsNonIncrementalKinds) {
  dyn::GraphStore store(graph::build_csr(3, {{0, 1}, {1, 2}}));
  ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.algos = {AlgoKind::Bfs, AlgoKind::Sssp};
  EXPECT_THROW((Server(store, cfg)), std::invalid_argument);
}

TEST(WorkloadServing, IncrementalCcEqualsRecomputeUnderChurn) {
  const graph::Csr base = undirected_rmat(8, 29);
  dyn::GraphStore store(base);
  ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.batch_window_ms = 0.0;
  cfg.xbfs.report_runs = false;
  cfg.algos = {AlgoKind::Bfs, AlgoKind::Cc};
  Server server(store, cfg);

  std::mt19937_64 rng(31);
  std::uniform_int_distribution<vid_t> pick(0, base.num_vertices() - 1);
  AlgoQuery cq;
  cq.algo = AlgoKind::Cc;
  for (int round = 0; round < 6; ++round) {
    dyn::EdgeBatch b;
    const dyn::Snapshot cur = store.snapshot();
    for (int i = 0; i < 6; ++i) {
      const vid_t u = pick(rng);
      const vid_t v = pick(rng);
      if (u == v) continue;
      if (cur.graph->has_edge(u, v)) {
        b.erase(u, v);
      } else {
        b.insert(u, v);
      }
    }
    ASSERT_TRUE(server.submit_update(b).accepted);

    const QueryResult r = run_query(server, cq);
    ASSERT_EQ(r.status, QueryStatus::Completed) << r.error.to_string();
    ASSERT_TRUE(r.payload.components);
    // The incrementally repaired labels must equal a from-scratch
    // canonical recompute on the exact graph now being served.
    const dyn::Snapshot now = store.snapshot();
    EXPECT_EQ(*r.payload.components,
              graph::canonical_components(now.graph->materialize()))
        << "round " << round;
  }
  const ServerStats st = server.stats();
  EXPECT_EQ(st.graph_epoch, 6u);
  EXPECT_GT(st.repairs + st.recomputes, 0u);
  server.shutdown();
}

}  // namespace
}  // namespace xbfs::serve
