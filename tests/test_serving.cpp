// Serving-engine tests: admission/backpressure, deadline triage, the
// result cache's aliasing guarantee (a hit hands out the very object the
// cold run produced), bit-identical levels across the cold / batched /
// cache-hit paths, and race-freedom under concurrent submit + drain.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/workload.h"

namespace xbfs::serve {
namespace {

graph::Csr undirected_rmat(unsigned scale, std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::rmat_csr(p);
}

ServeConfig manual_config() {
  ServeConfig cfg;
  cfg.manual_dispatch = true;
  cfg.batch_window_ms = 0.0;
  return cfg;
}

// --- result cache ------------------------------------------------------------

TEST(ResultCache, LruEvictionAndCounters) {
  ResultCache cache(/*capacity=*/2, /*shards=*/1);
  auto mk = [](int depth) {
    CachedResult r;
    r.levels = std::make_shared<const std::vector<std::int32_t>>(
        std::vector<std::int32_t>{0, 1});
    r.depth = static_cast<std::uint32_t>(depth);
    return r;
  };
  cache.put(1, 10, mk(1));
  cache.put(1, 11, mk(2));
  EXPECT_TRUE(static_cast<bool>(cache.get(1, 10)));  // 10 is now MRU
  cache.put(1, 12, mk(3));                           // evicts 11 (LRU)
  EXPECT_FALSE(static_cast<bool>(cache.get(1, 11)));
  EXPECT_TRUE(static_cast<bool>(cache.get(1, 10)));
  EXPECT_TRUE(static_cast<bool>(cache.get(1, 12)));

  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.inserts, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(ResultCache, DistinctGraphFingerprintsDoNotCollide) {
  ResultCache cache(8, 1);
  CachedResult r;
  r.levels = std::make_shared<const std::vector<std::int32_t>>(
      std::vector<std::int32_t>{0});
  cache.put(/*graph_fp=*/111, /*source=*/5, r);
  EXPECT_FALSE(static_cast<bool>(cache.get(222, 5)));
  EXPECT_TRUE(static_cast<bool>(cache.get(111, 5)));
}

TEST(ResultCache, ZeroCapacityIsDisabled) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  CachedResult r;
  r.levels = std::make_shared<const std::vector<std::int32_t>>(
      std::vector<std::int32_t>{0});
  cache.put(1, 1, r);
  EXPECT_FALSE(static_cast<bool>(cache.get(1, 1)));
  EXPECT_EQ(cache.size(), 0u);
}

// --- cache-hit aliasing + correctness ----------------------------------------

TEST(Serving, CacheHitReturnsTheSameLevelsObjectAsTheColdRun) {
  const graph::Csr g = undirected_rmat(9, 31);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant[0];
  Server server(g, manual_config());

  Admission cold = server.submit(src);
  ASSERT_TRUE(cold.accepted);
  server.dispatch_once();
  const QueryResult r1 = cold.result.get();
  EXPECT_EQ(r1.status, QueryStatus::Completed);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_EQ(*r1.levels, graph::reference_bfs(g, src));

  Admission warm = server.submit(src);
  ASSERT_TRUE(warm.accepted);
  // A hit resolves at submit — no dispatch cycle ran in between.
  const QueryResult r2 = warm.result.get();
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r2.depth, r1.depth);
  // Same underlying object, not a copy.
  EXPECT_EQ(r2.levels.get(), r1.levels.get());

  const ServerStats st = server.stats();
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.computed_sources, 1u);
}

TEST(Serving, BypassCacheForcesAFreshTraversal) {
  const graph::Csr g = undirected_rmat(9, 32);
  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant[0];
  Server server(g, manual_config());

  Admission cold = server.submit(src);
  server.dispatch_once();
  const QueryResult r1 = cold.result.get();

  QueryOptions opt;
  opt.bypass_cache = true;
  Admission fresh = server.submit(src, opt);
  ASSERT_TRUE(fresh.accepted);
  server.dispatch_once();
  const QueryResult r2 = fresh.result.get();
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_NE(r2.levels.get(), r1.levels.get());  // recomputed, not aliased
  EXPECT_EQ(*r2.levels, *r1.levels);            // but bit-identical
}

TEST(Serving, ServedLevelsAreBitIdenticalAcrossAllPaths) {
  const graph::Csr g = undirected_rmat(10, 33);
  const auto giant = graph::largest_component_vertices(g);
  ServeConfig cfg = manual_config();
  cfg.max_batch = 4;         // force several batches...
  cfg.min_sweep_sources = 2; // ...dispatched as multi-source sweeps
  Server server(g, cfg);

  // 10 distinct sources + duplicates: exercises singleton fallback (first
  // round has >1 distinct so all go multi), dedup and, on resubmission,
  // the cache-hit path.
  std::vector<graph::vid_t> sources;
  for (int i = 0; i < 10; ++i) {
    sources.push_back(giant[(i * 317) % giant.size()]);
  }
  sources.push_back(sources[0]);
  sources.push_back(sources[5]);

  std::vector<Admission> admitted;
  for (const graph::vid_t s : sources) admitted.push_back(server.submit(s));
  server.drain();

  for (std::size_t i = 0; i < sources.size(); ++i) {
    ASSERT_TRUE(admitted[i].accepted) << i;
    const QueryResult r = admitted[i].result.get();
    ASSERT_EQ(r.status, QueryStatus::Completed) << i;
    const std::vector<std::int32_t> want =
        graph::reference_bfs(g, sources[i]);
    EXPECT_EQ(*r.levels, want) << "source " << sources[i];
    // The sweep path reports the same depth convention as every
    // TraversalEngine rung: levels run = deepest reached level + 1.
    std::int32_t max_level = 0;
    for (const std::int32_t lv : want) max_level = std::max(max_level, lv);
    EXPECT_EQ(r.depth, static_cast<std::uint32_t>(max_level) + 1)
        << "source " << sources[i];
  }
  // Duplicates shared traversals: only 10 distinct sources were computed.
  EXPECT_EQ(server.stats().computed_sources, 10u);
}

// --- admission / backpressure ------------------------------------------------

TEST(Serving, BackpressureRejectsWhenTheQueueIsFull) {
  const graph::Csr g = undirected_rmat(8, 34);
  ServeConfig cfg = manual_config();
  cfg.queue_capacity = 4;
  cfg.cache_capacity = 0;  // every submit must actually queue
  Server server(g, cfg);

  std::vector<Admission> admitted;
  for (int i = 0; i < 4; ++i) {
    admitted.push_back(server.submit(static_cast<graph::vid_t>(i)));
    EXPECT_TRUE(admitted.back().accepted) << i;
  }
  Admission overflow = server.submit(4);
  EXPECT_FALSE(overflow.accepted);
  EXPECT_EQ(overflow.status.code(), xbfs::StatusCode::QueueFull);
  EXPECT_STREQ(xbfs::status_code_name(overflow.status.code()), "queue-full");
  EXPECT_EQ(server.stats().rejected_full, 1u);

  // Draining frees capacity; admission works again.
  server.drain();
  Admission retry = server.submit(4);
  EXPECT_TRUE(retry.accepted);
  server.drain();
  EXPECT_EQ(retry.result.get().status, QueryStatus::Completed);
  for (Admission& a : admitted) {
    EXPECT_EQ(a.result.get().status, QueryStatus::Completed);
  }
}

TEST(Serving, InvalidSourceAndShutdownAreRejectedWithReasons) {
  const graph::Csr g = undirected_rmat(8, 35);
  Server server(g, manual_config());

  Admission bad = server.submit(g.num_vertices() + 100);
  EXPECT_FALSE(bad.accepted);
  EXPECT_EQ(bad.status.code(), xbfs::StatusCode::InvalidArgument);

  server.shutdown();
  Admission late = server.submit(0);
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.status.code(), xbfs::StatusCode::ShuttingDown);

  const ServerStats st = server.stats();
  EXPECT_EQ(st.rejected_invalid, 1u);
  EXPECT_EQ(st.rejected_shutdown, 1u);
}

// --- deadlines ---------------------------------------------------------------

TEST(Serving, ExpiredQueriesAreReportedNotDropped) {
  const graph::Csr g = undirected_rmat(8, 36);
  ServeConfig cfg = manual_config();
  cfg.cache_capacity = 0;
  Server server(g, cfg);

  QueryOptions opt;
  opt.timeout_ms = 0.5;
  Admission a = server.submit(0, opt);
  ASSERT_TRUE(a.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.dispatch_once();

  // The future resolves (never dropped) with an explicit Expired status.
  const QueryResult r = a.result.get();
  EXPECT_EQ(r.status, QueryStatus::Expired);
  EXPECT_STREQ(query_status_name(r.status), "expired");
  EXPECT_EQ(r.levels, nullptr);
  EXPECT_GE(r.queue_ms, 0.5);

  const ServerStats st = server.stats();
  EXPECT_EQ(st.expired, 1u);
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(st.computed_sources, 0u);  // no traversal was wasted on it
}

TEST(Serving, NoDeadlineMeansQueriesNeverExpire) {
  const graph::Csr g = undirected_rmat(8, 37);
  ServeConfig cfg = manual_config();
  cfg.default_timeout_ms = -1.0;
  Server server(g, cfg);

  Admission a = server.submit(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.dispatch_once();
  EXPECT_EQ(a.result.get().status, QueryStatus::Completed);
}

// --- concurrency -------------------------------------------------------------

TEST(Serving, ConcurrentSubmitAndDrainIsRaceFree) {
  const graph::Csr g = undirected_rmat(9, 38);
  const auto giant = graph::largest_component_vertices(g);
  ServeConfig cfg;  // threaded scheduler
  cfg.num_gcds = 2;
  cfg.batch_window_ms = 0.2;
  Server server(g, cfg);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::atomic<std::uint64_t> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const graph::vid_t src = giant[(t * kPerThread + i * 7) % 24];
        Admission a = server.submit(src);
        ASSERT_TRUE(a.accepted);
        const QueryResult r = a.result.get();
        ASSERT_EQ(r.status, QueryStatus::Completed);
        ASSERT_EQ(*r.levels, graph::reference_bfs(g, src));
        ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  server.drain();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  const ServerStats st = server.stats();
  EXPECT_EQ(st.accepted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(st.completed + st.expired, st.accepted);
  // Hot sources repeat across threads: sharing must have kicked in.
  EXPECT_LT(st.computed_sources, st.completed);
}

TEST(Serving, ClosedLoopWorkloadDrivesTheServer) {
  const graph::Csr g = undirected_rmat(9, 39);
  const auto giant = graph::largest_component_vertices(g);
  ServeConfig cfg;
  cfg.batch_window_ms = 0.2;
  Server server(g, cfg);

  std::vector<graph::vid_t> candidates(giant.begin(),
                                       giant.begin() + std::min<std::size_t>(
                                                           32, giant.size()));
  const auto sources = zipf_sources(candidates, 96, 1.0, 77);
  LoadOptions opt;
  opt.clients = 4;
  const LoadReport rep = run_closed_loop(server, sources, opt);
  EXPECT_EQ(rep.attempted, 96u);
  EXPECT_EQ(rep.accepted, 96u);
  EXPECT_EQ(rep.completed, 96u);
  EXPECT_EQ(rep.expired, 0u);

  server.shutdown();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.completed, 96u);
  // Zipf(1.0) over 32 candidates repeats hot sources; the cache must hit.
  EXPECT_GT(st.cache_hits, 0u);
  EXPECT_GT(st.qps, 0.0);
  EXPECT_GT(st.latency_p99_ms, 0.0);
  EXPECT_GE(st.latency_p99_ms, st.latency_p50_ms);
}

TEST(Serving, ZipfGeneratorIsDeterministicAndSkewed) {
  ZipfGenerator a(100, 1.0, 9);
  ZipfGenerator b(100, 1.0, 9);
  std::vector<std::size_t> hist(100, 0);
  for (int i = 0; i < 4000; ++i) {
    const std::size_t r = a.next();
    ASSERT_EQ(r, b.next());
    ASSERT_LT(r, 100u);
    ++hist[r];
  }
  // Rank 0 must dominate the tail under s=1.0.
  EXPECT_GT(hist[0], hist[50] * 4);
}

}  // namespace
}  // namespace xbfs::serve
