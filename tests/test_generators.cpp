// Tests for the graph generators and the Table II dataset stand-ins:
// determinism, size targets, degree/diameter character per family.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "graph/stats.h"

namespace xbfs::graph {
namespace {

std::int32_t bfs_depth(const Csr& g, vid_t src) {
  const auto levels = reference_bfs(g, src);
  return *std::max_element(levels.begin(), levels.end());
}

TEST(Rmat, GeneratesRequestedEdgeCount) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  const auto edges = rmat_edges(p);
  EXPECT_EQ(edges.size(), std::size_t{8} << 10);
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, vid_t{1} << 10);
    EXPECT_LT(e.v, vid_t{1} << 10);
  }
}

TEST(Rmat, DeterministicPerSeedDifferentAcrossSeeds) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 4;
  p.seed = 5;
  const auto a = rmat_edges(p);
  const auto b = rmat_edges(p);
  EXPECT_EQ(a, b);
  p.seed = 6;
  EXPECT_NE(a, rmat_edges(p));
}

TEST(Rmat, SkewProducesHeavyTail) {
  RmatParams p;
  p.scale = 14;
  p.edge_factor = 16;
  const Csr g = rmat_csr(p);
  const DegreeStats s = degree_stats(g);
  // Power-law-ish: the max degree dwarfs the mean, and the median sits
  // well below the mean.
  EXPECT_GT(s.max_degree, 20 * s.mean);
  EXPECT_LT(s.p50, s.mean);
}

TEST(Rmat, LabelPermutationPreservesDegreeMultiset) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.noise = 0.0;
  p.permute_labels = false;
  const Csr plain = rmat_csr(p);
  p.permute_labels = true;
  const Csr permuted = rmat_csr(p);
  // Note: permutation happens before dedup, so compare generated (raw)
  // totals instead of exact multisets; dedup loses slightly different
  // numbers of parallel edges.  Degree distribution shape must survive.
  EXPECT_NEAR(static_cast<double>(plain.num_edges()),
              static_cast<double>(permuted.num_edges()),
              0.05 * static_cast<double>(plain.num_edges()));
}

TEST(ErdosRenyi, FlatDegreeDistribution) {
  const Csr g = erdos_renyi(1 << 14, 8ull << 14, 123);
  const DegreeStats s = degree_stats(g);
  // Poisson-ish: max degree within a small factor of the mean.
  EXPECT_LT(s.max_degree, 6 * s.mean);
  EXPECT_GT(s.mean, 10.0);  // ~16 directed entries per vertex
}

TEST(SmallWorld, RespectsKAndStaysClustered) {
  const Csr g = small_world(10000, 10, 0.2, 9);
  EXPECT_NEAR(g.avg_degree(), 10.0, 1.5);
  // Small world: depth is logarithmic-ish, far below n/k.
  const auto giant = largest_component_vertices(g);
  EXPECT_GT(giant.size(), 9000u);
  EXPECT_LT(bfs_depth(g, giant[0]), 60);
}

TEST(SmallWorld, ZeroBetaIsARing) {
  const Csr g = small_world(1000, 4, 0.0, 1);
  // Pure ring lattice with k=4: diameter ~ n / 4.
  EXPECT_GT(bfs_depth(g, 0), 200);
  EXPECT_EQ(largest_component_vertices(g).size(), 1000u);
}

TEST(LayeredCitation, LongDiameterLowDegree) {
  const Csr g = layered_citation(20000, 200, 5, 3);
  EXPECT_LT(g.avg_degree(), 14.0);
  const auto giant = largest_component_vertices(g);
  EXPECT_GT(giant.size(), 15000u);
  // The whole point of the USpatent stand-in: many BFS levels.
  EXPECT_GT(bfs_depth(g, giant[0]), 25);
}

TEST(BarabasiAlbert, ConnectedWithHubs) {
  const Csr g = barabasi_albert(20000, 3, 11);
  EXPECT_EQ(largest_component_vertices(g).size(), 20000u);
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.max_degree, 15 * s.mean);
  EXPECT_EQ(s.isolated, 0u);
}

TEST(Datasets, MetadataMatchesTableII) {
  EXPECT_EQ(all_datasets().size(), 6u);
  const DatasetMeta& lj = dataset_meta(DatasetId::LJ);
  EXPECT_EQ(lj.paper_vertices, 4036538u);
  EXPECT_EQ(lj.paper_edges, 69362378u);
  const DatasetMeta& r25 = dataset_meta(DatasetId::R25);
  EXPECT_EQ(r25.paper_vertices, 33554432u);
  EXPECT_EQ(dataset_from_name("OR"), DatasetId::OR);
  EXPECT_THROW(dataset_from_name("nope"), std::invalid_argument);
}

TEST(Datasets, ScaleDivisorShrinksVertexCount) {
  const Csr big = make_dataset(DatasetId::DB, 4, 1);
  const Csr small = make_dataset(DatasetId::DB, 16, 1);
  EXPECT_GT(big.num_vertices(), 2 * small.num_vertices());
  EXPECT_TRUE(big.validate().empty());
  EXPECT_TRUE(small.validate().empty());
}

TEST(Datasets, AverageDegreesTrackTableII) {
  // Paper average (undirected-entry) degrees: OR ~76x2, UP ~5.5x2, etc.
  // The stand-ins should land in the same degree class.
  const Csr orkut = make_dataset(DatasetId::OR, 64, 1);
  const Csr patent = make_dataset(DatasetId::UP, 64, 1);
  EXPECT_GT(orkut.avg_degree(), 40.0);
  EXPECT_LT(patent.avg_degree(), 16.0);
  EXPECT_GT(orkut.avg_degree(), 3 * patent.avg_degree());
}

TEST(Datasets, DiameterClassesMatchFig6) {
  // Fig. 6: UP needs the most levels, DB next, RMATs the fewest.
  const unsigned div = 64;
  const Csr up = make_dataset(DatasetId::UP, div, 1);
  const Csr db = make_dataset(DatasetId::DB, div, 1);
  const Csr r25 = make_dataset(DatasetId::R25, div, 1);
  const auto depth = [&](const Csr& g) {
    return bfs_depth(g, largest_component_vertices(g)[0]);
  };
  const auto d_up = depth(up), d_db = depth(db), d_r25 = depth(r25);
  EXPECT_GT(d_up, d_db);
  EXPECT_GT(d_db, d_r25);
  EXPECT_LE(d_r25, 10);
}

TEST(Datasets, DeterministicPerSeed) {
  const Csr a = make_dataset(DatasetId::LJ, 64, 42);
  const Csr b = make_dataset(DatasetId::LJ, 64, 42);
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.cols(), b.cols());
  const Csr c = make_dataset(DatasetId::LJ, 64, 43);
  EXPECT_NE(a.cols(), c.cols());
}

}  // namespace
}  // namespace xbfs::graph
