// Histogram quantile tests: the serving stack's latency percentiles
// (p50/p95/p99 in ServerStats and the SLO latency objective) all come out
// of obs::Histogram::percentile, so its edge cases — empty, single
// sample, clamping to the observed range, quantile monotonicity — get
// their own coverage here.
#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.h"

namespace xbfs {
namespace {

using obs::Histogram;

TEST(HistogramPercentile, EmptyReturnsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(HistogramPercentile, SingleSampleEveryQuantileIsThatSample) {
  Histogram h;
  h.observe(3.25);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 3.25) << "q=" << q;
  }
}

TEST(HistogramPercentile, QuantilesAreMonotone) {
  Histogram h;
  // Heavily skewed latencies: a fat head and a long tail, like a cache-hit
  // distribution with occasional slow traversals.
  for (int i = 0; i < 900; ++i) h.observe(0.01 + 0.0001 * i);
  for (int i = 0; i < 90; ++i) h.observe(5.0 + i);
  for (int i = 0; i < 10; ++i) h.observe(500.0 + 10.0 * i);

  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // The skew has to be visible through the log buckets.
  EXPECT_LT(p50, 1.0);
  EXPECT_GT(p99, 5.0);
}

TEST(HistogramPercentile, ClampedToObservedRange) {
  Histogram h;
  h.observe(2.0);
  h.observe(7.0);
  h.observe(11.0);
  // Estimates are bucket midpoints clamped into the observed range: never
  // below the true min or above the true max, whatever the quantile.
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.percentile(q), h.min()) << "q=" << q;
    EXPECT_LE(h.percentile(q), h.max()) << "q=" << q;
  }
  EXPECT_LE(h.percentile(0.0), h.percentile(1.0));
}

TEST(HistogramPercentile, ApproximationStaysWithinBucketResolution) {
  Histogram h;
  // Quarter-octave buckets: any estimate must land within one bucket
  // (~19%) of the exact order statistic for a uniform spread.
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) {
    samples.push_back(static_cast<double>(i));
    h.observe(static_cast<double>(i));
  }
  for (double q : {0.25, 0.5, 0.75, 0.9}) {
    const double exact = samples[static_cast<std::size_t>(q * 999)];
    const double est = h.percentile(q);
    EXPECT_NEAR(est / exact, 1.0, 0.25) << "q=" << q;
  }
}

TEST(HistogramPercentile, ResetForgetsEverything) {
  Histogram h;
  h.observe(1.0);
  h.observe(100.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  h.observe(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
}

}  // namespace
}  // namespace xbfs
