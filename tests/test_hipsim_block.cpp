// Tests for the block-level execution contexts: thread phases, wavefront
// iteration/ids, barrier accounting, and the remaining ExecCtx atomics.
#include <gtest/gtest.h>

#include <set>

#include "hipsim/hipsim.h"

namespace xbfs::sim {
namespace {

Device make_device() {
  return Device(DeviceProfile::test_profile(), SimOptions{.num_workers = 2});
}

TEST(BlockCtx, ThreadsPhaseRunsEveryThreadOnce) {
  Device dev = make_device();
  auto buf = dev.alloc<std::uint32_t>(256);
  auto s = buf.span();
  dev.launch("threads", LaunchConfig{1, 256, 1.0}, [=](BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      ctx.store(s, t, t * 2 + 1);
    });
  });
  for (unsigned t = 0; t < 256; ++t) {
    ASSERT_EQ(buf.host_data()[t], t * 2 + 1);
  }
}

TEST(BlockCtx, WavefrontIdsAreGridGlobalAndUnique) {
  Device dev = make_device();
  auto ids = dev.alloc<std::uint32_t>(64);  // 4 blocks x 4 wavefronts
  auto s = ids.span();
  dev.launch("wf_ids", LaunchConfig{4, 256, 1.0}, [=](BlockCtx& blk) {
    auto& ctx = blk.ctx();
    EXPECT_EQ(blk.wavefronts_per_block(), 4u);  // 256 threads / 64 lanes
    blk.wavefronts([&](WavefrontCtx& wf, unsigned local) {
      EXPECT_EQ(wf.id() % blk.wavefronts_per_block(), local);
      ctx.store(s, wf.id(), wf.id());
    });
  });
  std::set<std::uint32_t> seen;
  for (unsigned i = 0; i < 16; ++i) {
    seen.insert(ids.host_data()[i]);
    EXPECT_EQ(ids.host_data()[i], i);
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(BlockCtx, GeometryAccessors) {
  Device dev = make_device();
  dev.launch("geometry", LaunchConfig{3, 128, 1.0}, [](BlockCtx& blk) {
    EXPECT_LT(blk.block_id(), 3u);
    EXPECT_EQ(blk.grid_blocks(), 3u);
    EXPECT_EQ(blk.block_threads(), 128u);
    EXPECT_EQ(blk.grid_threads(), 384u);
  });
}

TEST(BlockCtx, SyncCountsBarriers) {
  Device dev = make_device();
  dev.launch("barriers", LaunchConfig{1, 64, 1.0}, [](BlockCtx& blk) {
    EXPECT_EQ(blk.barriers(), 0u);
    blk.sync();
    blk.sync();
    EXPECT_EQ(blk.barriers(), 2u);
  });
}

TEST(ExecCtxAtomics, AtomicOrAccumulatesBits) {
  Device dev = make_device();
  auto buf = dev.alloc<std::uint64_t>(1);
  buf.host_data()[0] = 0;
  auto s = buf.span();
  dev.launch("or", LaunchConfig{4, 64, 1.0}, [=](BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      ctx.atomic_or(s, 0, std::uint64_t{1} << (t % 64));
    });
  });
  EXPECT_EQ(buf.host_data()[0], ~std::uint64_t{0});
}

TEST(ExecCtxAtomics, AtomicMinFindsGlobalMinimum) {
  Device dev = make_device();
  auto buf = dev.alloc<std::uint32_t>(1);
  buf.host_data()[0] = 0xFFFFFFFFu;
  auto s = buf.span();
  dev.launch("min", LaunchConfig{8, 64, 1.0}, [=](BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      ctx.atomic_min(s, 0, 1000u + blk.block_id() * 64 + t);
    });
  });
  EXPECT_EQ(buf.host_data()[0], 1000u);
}

TEST(ExecCtxAtomics, AtomicExchReturnsPrevious) {
  Device dev = make_device();
  auto buf = dev.alloc<std::uint32_t>(1);
  buf.host_data()[0] = 7;
  auto s = buf.span();
  dev.launch("exch", LaunchConfig{1, 64, 1.0}, [=](BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t == 0) {
        EXPECT_EQ(ctx.atomic_exch(s, 0, 99u), 7u);
      }
    });
  });
  EXPECT_EQ(buf.host_data()[0], 99u);
}

TEST(ExecCtxAtomics, AtomicAddOnUint64) {
  Device dev = make_device();
  auto buf = dev.alloc<std::uint64_t>(1);
  buf.host_data()[0] = 0;
  auto s = buf.span();
  dev.launch("add64", LaunchConfig{16, 64, 1.0}, [=](BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned) {
      ctx.atomic_add(s, 0, std::uint64_t{3});
    });
  });
  EXPECT_EQ(buf.host_data()[0], 16ull * 64 * 3);
}

TEST(BlockCtx, GridStrideRaggedTails) {
  // Sizes around block/grid boundaries must all be covered exactly once.
  Device dev = make_device();
  for (std::uint64_t n : {1ull, 63ull, 64ull, 65ull, 255ull, 256ull, 257ull,
                          1000ull}) {
    auto buf = dev.alloc<std::uint32_t>(n);
    std::fill(buf.host_data(), buf.host_data() + n, 0u);
    auto s = buf.span();
    dev.launch("ragged", LaunchConfig{2, 64, 1.0}, [=](BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t i) {
        ctx.store(s, i, ctx.load(s, i) + 1);
      });
    });
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf.host_data()[i], 1u) << "n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace xbfs::sim
