#!/usr/bin/env bash
# CI gate for the dynamic-graph subsystem: run the mixed read/write load
# harness at toy scale with XBFS_SANITIZE=all and XBFS_RUN_REPORT active,
# then require
#   - zero unannotated SimSan findings across the dyn kernels (the bench
#     itself exits non-zero otherwise),
#   - incremental repair strictly beating full recompute on the small-batch
#     sweep (the acceptance bound: batches are <= 1% of |E|), and
#   - the run record carrying the epoch-churn serving counters.
#
#   usage: check_dynamic.sh <bench_dynamic-binary> [workdir]
set -euo pipefail

BENCH=${1:?usage: check_dynamic.sh <bench_dynamic-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

REPORT="$WORKDIR/check_dynamic.report.json"
rm -f "$REPORT"

# Toy scale keeps this in CI-seconds: 8 update rounds of ~0.5%-of-|E|
# batches on a scale-12 RMAT graph, then 96 Zipf reads with 8 interleaved
# update batches against the serving lane.  --check=1.0 makes the bench
# itself fail unless repair beats recompute.
XBFS_RUN_REPORT="$REPORT" XBFS_SANITIZE=all \
  "$BENCH" --scale=12 --edge-factor=8 --rounds=8 --queries=96 \
           --candidates=16 --updates=8 --check=1.0 \
           > "$WORKDIR/check_dynamic.stdout" 2>&1 || {
    echo "FAIL: bench_dynamic exited non-zero"
    cat "$WORKDIR/check_dynamic.stdout"
    exit 1
  }

[[ -s "$REPORT" ]] || { echo "FAIL: $REPORT was not written"; exit 1; }

grep -q "SimSan" "$WORKDIR/check_dynamic.stdout" || {
  echo "FAIL: sanitizer summary missing from bench output"
  cat "$WORKDIR/check_dynamic.stdout"
  exit 1
}

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema"] == "xbfs-run-report", report.get("schema")
runs = report["runs"]

# --- repair-vs-recompute comparison (emitted by bench_dynamic) -------------
bench = next(r for r in runs if r["tool"] == "bench_dynamic")
cfg = bench["config"]
for key in ("batch_edges", "batch_edge_pct", "repaired_rounds",
            "repair_ms", "recompute_ms", "repair_speedup",
            "churn_hit_rate", "graph_epoch", "cache_epoch_bumps",
            "repairs", "recomputes"):
    assert key in cfg, f"bench_dynamic record missing '{key}'"

assert float(cfg["batch_edge_pct"]) <= 1.0, cfg["batch_edge_pct"]
assert int(cfg["repaired_rounds"]) > 0, "no round was served by repair"
speedup = float(cfg["repair_speedup"])
assert speedup > 1.0, f"repair speedup {speedup} <= 1.0"
assert 0.0 <= float(cfg["churn_hit_rate"]) <= 1.0
assert int(cfg["graph_epoch"]) > 0
assert int(cfg["cache_epoch_bumps"]) > 0
assert int(cfg["completed"]) == int(cfg["queries"])

# --- serving summary (emitted by Server::shutdown) -------------------------
serve = next(r for r in runs if r["tool"] == "serve")
scfg = serve["config"]
for key in ("dynamic", "updates_applied", "graph_epoch",
            "cache_epoch_bumps", "cache_purged_stale", "repairs",
            "recomputes", "repair_fallbacks"):
    assert key in scfg, f"serving summary missing '{key}'"
assert scfg["dynamic"] == "1", scfg["dynamic"]
assert int(scfg["updates_applied"]) > 0

print(f"OK: speedup={speedup:.2f}x "
      f"batch={float(cfg['batch_edge_pct']):.2f}%|E| "
      f"epochs={cfg['graph_epoch']} "
      f"churn_hit_rate={float(cfg['churn_hit_rate']):.2f}")
EOF

echo "check_dynamic: PASS"
