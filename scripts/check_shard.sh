#!/usr/bin/env bash
# CI gate for the sharded serving tier (docs/sharding.md): run the
# bench_dist_scaling serving study at toy scale with XBFS_SANITIZE=all and
# XBFS_RUN_REPORT active, with the chaos sub-phase on, then require
#   - zero unannotated SimSan findings across the shard kernels (the bench
#     itself exits non-zero otherwise),
#   - the served graph oversubscribing one budget-capped GCD >= 2x,
#   - modelled p99 sublinear in shard count (4 -> 8 shards below 2.00x;
#     enforced by the bench via --check-p99),
#   - the killed replica rerouting (not failing) queries, with the probe
#     under fault injection validating Graph500-clean.
#
#   usage: check_shard.sh <bench_dist_scaling-binary> [workdir]
set -euo pipefail

BENCH=${1:?usage: check_shard.sh <bench_dist_scaling-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

REPORT="$WORKDIR/check_shard.report.json"
rm -f "$REPORT"

# Toy scale keeps this in CI-seconds: 24 distinct-source queries against a
# scale-13 RMAT graph, served at 4 and 8 shards, then the chaos sub-phase
# (4 shards x 2 replicas, one replica killed, fault injector on).
XBFS_RUN_REPORT="$REPORT" XBFS_SANITIZE=all \
  "$BENCH" --serve --chaos --serve-scale=13 --queries=24 --check-p99=2.0 \
           > "$WORKDIR/check_shard.stdout" 2>&1 || {
    echo "FAIL: bench_dist_scaling --serve exited non-zero"
    cat "$WORKDIR/check_shard.stdout"
    exit 1
  }

[[ -s "$REPORT" ]] || { echo "FAIL: $REPORT was not written"; exit 1; }

grep -q "SimSan" "$WORKDIR/check_shard.stdout" || {
  echo "FAIL: sanitizer summary missing from bench output"
  cat "$WORKDIR/check_shard.stdout"
  exit 1
}

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema"] == "xbfs-run-report", report.get("schema")
runs = report["runs"]

# --- serving-study summary (emitted by bench_dist_scaling --serve) ---------
bench = next(r for r in runs if r["tool"] == "bench_shard_serving")
cfg = bench["config"]
for key in ("oversubscription", "p99_4_shards_ms", "p99_8_shards_ms",
            "p99_ratio", "exchange_raw_bytes", "exchange_wire_bytes",
            "chaos_failed", "chaos_rerouted", "chaos_probe_valid"):
    assert key in cfg, f"bench_shard_serving record missing '{key}'"

oversub = float(cfg["oversubscription"])
assert oversub >= 2.0, f"oversubscription {oversub} below the 2x bar"
ratio = float(cfg["p99_ratio"])
assert 0.0 < ratio < 2.0, f"p99 not sublinear in shard count: {ratio}"
assert int(cfg["chaos_failed"]) == 0, "chaos queries resolved Failed"
assert int(cfg["chaos_rerouted"]) > 0, "killed replica never forced a reroute"
assert cfg["chaos_probe_valid"] == "1", "chaos probe not Graph500-clean"
wire = int(cfg["exchange_wire_bytes"])
raw = int(cfg["exchange_raw_bytes"])
assert 0 < wire < raw, f"compressed exchange not smaller than raw ({wire}/{raw})"

# --- per-router summaries (emitted by ShardRouter::shutdown) ---------------
routers = [r for r in runs if r["tool"] == "shard_router"]
assert len(routers) >= 3, f"expected >= 3 shard_router records, got {len(routers)}"
shard_counts = {r["config"]["shards"] for r in routers}
assert {"4", "8"} <= shard_counts, shard_counts
for r in routers:
    rcfg = r["config"]
    for key in ("replicas", "serving_fingerprint", "compression_ratio",
                "modelled_p99_ms", "breaker_opens"):
        assert key in rcfg, f"shard_router summary missing '{key}'"

print(f"OK: oversub={oversub:.2f}x p99_ratio={ratio:.2f}x "
      f"compression={raw / wire:.2f}x "
      f"rerouted={cfg['chaos_rerouted']}")
EOF

echo "check_shard: PASS"
