#!/usr/bin/env bash
# CI gate for family serving: run the mixed-workload harness (BFS + SSSP +
# CC + k-core through one server, QoS-classed) at toy scale with
# XBFS_SANITIZE=all and XBFS_RUN_REPORT active, then require
#   - zero unannotated SimSan findings across the whole engine family (the
#     bench itself exits non-zero otherwise),
#   - the serving summary carrying the per-class columns
#     (<kind>_submitted/_completed/_p99_ms/_qps) with every served class
#     actually completing work, and
#   - query accounting balancing with zero Failed terminals.
#
#   usage: check_workloads.sh <bench_workloads-binary> [workdir]
set -euo pipefail

BENCH=${1:?usage: check_workloads.sh <bench_workloads-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

REPORT="$WORKDIR/check_workloads.report.json"
rm -f "$REPORT"

# Toy scale keeps this in CI-seconds: 128 mixed Zipf(1.0) queries over 16
# hot sources on a scale-10 RMAT graph.
XBFS_RUN_REPORT="$REPORT" XBFS_SANITIZE=all \
  "$BENCH" --scale=10 --edge-factor=8 --queries=128 --candidates=16 \
           --clients=4 > "$WORKDIR/check_workloads.stdout" 2>&1 || {
    echo "FAIL: bench_workloads exited non-zero"
    cat "$WORKDIR/check_workloads.stdout"
    exit 1
  }

[[ -s "$REPORT" ]] || { echo "FAIL: $REPORT was not written"; exit 1; }

grep -q "SimSan" "$WORKDIR/check_workloads.stdout" || {
  echo "FAIL: sanitizer summary missing from bench output"
  cat "$WORKDIR/check_workloads.stdout"
  exit 1
}

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema"] == "xbfs-run-report", report.get("schema")
runs = report["runs"]

KINDS = ("bfs", "sssp", "cc", "kcore")

# --- family-serving summary (emitted by Server::shutdown) ------------------
serve = next(r for r in runs if r["tool"] == "serve")
assert serve["algorithm"] == "family-serving", serve["algorithm"]
cfg = serve["config"]
assert cfg["algos"] == "bfs,sssp,cc,kcore", cfg["algos"]
for kind in KINDS:
    for suffix in ("_submitted", "_completed", "_cache_hits", "_p50_ms",
                   "_p99_ms", "_qps"):
        assert kind + suffix in cfg, f"summary missing '{kind}{suffix}'"
    # Per-class counters non-zero: every served class did real work.
    assert int(cfg[kind + "_submitted"]) > 0, f"{kind} submitted nothing"
    assert int(cfg[kind + "_completed"]) > 0, f"{kind} completed nothing"
    assert float(cfg[kind + "_qps"]) > 0.0, f"{kind} qps is zero"
    assert float(cfg[kind + "_p99_ms"]) >= float(cfg[kind + "_p50_ms"]) >= 0.0
assert int(cfg["failed"]) == 0, cfg["failed"]
assert int(cfg["algo_dispatches"]) > 0, "no non-BFS unit was dispatched"
# Dedup/cache across the family: fewer engine runs than completions.
assert int(cfg["completed"]) > 0
assert (int(cfg["computed_sources"]) < int(cfg["completed"])), \
    (cfg["computed_sources"], cfg["completed"])

# --- per-class mix record (emitted by bench_workloads) ---------------------
bench = next(r for r in runs if r["tool"] == "bench_workloads")
bcfg = bench["config"]
assert bench["algorithm"] == "family-serving-mix", bench["algorithm"]
for kind in KINDS:
    for suffix in ("_submitted", "_completed", "_p99_ms", "_qps", "_weight"):
        assert kind + suffix in bcfg, f"bench record missing '{kind}{suffix}'"
    assert int(bcfg[kind + "_completed"]) > 0
assert int(bcfg["failed"]) == 0
assert float(bcfg["mixed_qps"]) > 0.0
# The QoS wheel is configured asymmetric: bfs must outweigh the others.
assert int(bcfg["bfs_weight"]) > int(bcfg["cc_weight"])

print("OK: " + " ".join(
    f"{k}={bcfg[k + '_completed']}q@p99={float(bcfg[k + '_p99_ms']):.3f}ms"
    for k in KINDS))
EOF

echo "check_workloads: PASS"
