#!/usr/bin/env bash
# CI smoke for the query-serving engine: run the serving load harness at a
# toy scale with XBFS_RUN_REPORT / XBFS_METRICS active, then validate that
# the serving summary record carries the acceptance fields (QPS, latency
# percentiles, batch occupancy, cache hit rate) and that query accounting
# balances.
#
#   usage: check_serving.sh <bench_serving-binary> [workdir]
set -euo pipefail

BENCH=${1:?usage: check_serving.sh <bench_serving-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

REPORT="$WORKDIR/check_serving.report.json"
METRICS="$WORKDIR/check_serving.metrics.txt"
rm -f "$REPORT" "$METRICS"

# Toy scale keeps this in CI-seconds: 96 Zipf(1.0) queries over 16 hot
# sources on a scale-10 RMAT graph, naive baseline subsampled to 16.
XBFS_RUN_REPORT="$REPORT" XBFS_METRICS="$METRICS" \
  "$BENCH" --scale=10 --edge-factor=8 --queries=96 --candidates=16 \
           --clients=4 --naive-queries=16 > "$WORKDIR/check_serving.stdout" 2>&1 || {
    echo "FAIL: bench_serving exited non-zero"
    cat "$WORKDIR/check_serving.stdout"
    exit 1
  }

for f in "$REPORT" "$METRICS"; do
  [[ -s "$f" ]] || { echo "FAIL: $f was not written"; exit 1; }
done

grep -q "serve.latency_ms" "$METRICS" || {
  echo "FAIL: serve.latency_ms missing from metrics dump"; exit 1; }

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema"] == "xbfs-run-report", report.get("schema")
runs = report["runs"]

# --- serving summary (emitted by Server::shutdown) -------------------------
serve = next(r for r in runs if r["tool"] == "serve")
cfg = serve["config"]
for key in ("qps", "p50_ms", "p95_ms", "p99_ms", "batch_occupancy",
            "cache_hit_rate", "completed", "expired", "sweeps",
            "computed_sources", "queue_p50_ms"):
    assert key in cfg, f"serving summary missing '{key}'"

completed = int(cfg["completed"])
accepted = int(cfg["accepted"])
expired = int(cfg["expired"])
assert completed > 0, "no queries completed"
assert completed + expired == accepted, (completed, expired, accepted)
assert float(cfg["qps"]) > 0.0
assert 0.0 <= float(cfg["cache_hit_rate"]) <= 1.0
assert float(cfg["p99_ms"]) >= float(cfg["p50_ms"]) >= 0.0
assert 0.0 < float(cfg["batch_occupancy"]) <= 1.0
# Zipf over 16 candidates: sharing means fewer traversals than completions.
assert int(cfg["computed_sources"]) < completed

# --- naive-vs-served comparison (emitted by bench_serving) ----------------
bench = next(r for r in runs if r["tool"] == "bench_serving")
bcfg = bench["config"]
for key in ("naive_qps", "served_qps", "speedup", "loop"):
    assert key in bcfg, f"bench record missing '{key}'"
assert float(bcfg["speedup"]) > 0.0

print(f"OK: qps={float(cfg['qps']):.1f} "
      f"hit_rate={float(cfg['cache_hit_rate']):.2f} "
      f"occupancy={float(cfg['batch_occupancy']):.2f} "
      f"p50={float(cfg['p50_ms']):.3f}ms p99={float(cfg['p99_ms']):.3f}ms "
      f"speedup={float(bcfg['speedup']):.2f}x")
EOF

echo "check_serving: PASS"
