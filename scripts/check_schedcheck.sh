#!/usr/bin/env bash
# CI gate for SchedCheck, the hipsim schedule-exploring model checker
# (docs/modelcheck.md): run the two-part sweep and require
#   - the XBFS core's racy_ok-annotated races verify BENIGN — every explored
#     block interleaving reaches the same final BFS labeling with zero
#     unannotated findings, and
#   - a planted unsynchronized kernel (non-atomic RMW counter) is caught
#     within the schedule budget, exhibits its lost update, and the printed
#     seed replays the divergent state bit-for-bit.
# The binary already enforces all of it and prints PASS/FAIL; this wrapper
# pins the env contract (faults off — the chaos job exports XBFS_FAULTS,
# which would make kernel bodies nondeterministic and break replay) and
# keeps the output for triage.
#
#   usage: check_schedcheck.sh <schedcheck_sweep-binary> [workdir]
set -euo pipefail

SWEEP=${1:?usage: check_schedcheck.sh <schedcheck_sweep-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
OUT="$WORKDIR/check_schedcheck.stdout"

if ! XBFS_FAULTS="" "$SWEEP" 8 8 1 > "$OUT" 2>&1; then
  echo "FAIL: schedcheck_sweep exited non-zero"
  cat "$OUT"
  exit 1
fi

grep -q "schedcheck_sweep: PASS" "$OUT" || {
  echo "FAIL: PASS line missing from schedcheck_sweep output"
  cat "$OUT"
  exit 1
}

# Surface the checker's own summary lines for the CI log.
grep -E "SchedCheck\[|benign:|planted:|replay:|schedcheck_sweep: PASS" "$OUT" || true
echo "check_schedcheck: PASS"
