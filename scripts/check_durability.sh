#!/usr/bin/env bash
# CI gate for the durable write path (docs/durability.md): run the
# kill-and-recover chaos harness under XBFS_SANITIZE=all and require
#   - every SIGKILL point in the sweep (including mid-WAL-append torn
#     writes) recovers to the never-killed twin's exact fingerprint chain,
#     with Graph500-validated BFS agreement and at least one torn tail
#     detected-and-truncated by CRC,
#   - probabilistic disk faults (torn/short writes, failed fsyncs) reject
#     updates without moving the store, and a close + recover lands on the
#     live fingerprint,
#   - a server over a crash-recovered store refuses the stale pre-crash
#     fingerprint a client carried over (recovery_stale_rejected) and
#     purges cached results on epoch bumps, and
#   - zero unannotated sanitizer findings.
# The binary already enforces all of it and prints PASS/FAIL; this wrapper
# pins the env contract (the chaos job's XBFS_FAULTS is neutralized — the
# harness arms its own deterministic crash points and disk-fault rates, and
# ambient kernel faults would break the twin comparison) and keeps the
# output for triage.
#
#   usage: check_durability.sh <durability_crash-binary> [workdir]
set -euo pipefail

HARNESS=${1:?usage: check_durability.sh <durability_crash-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
OUT="$WORKDIR/check_durability.stdout"

if ! XBFS_SANITIZE=all XBFS_FAULTS="" XBFS_DURABLE_CRASH="" \
     "$HARNESS" 7 36 11 > "$OUT" 2>&1; then
  echo "FAIL: durability_crash exited non-zero"
  cat "$OUT"
  exit 1
fi

grep -q "durability_crash: PASS" "$OUT" || {
  echo "FAIL: PASS line missing from durability_crash output"
  cat "$OUT"
  exit 1
}

# The sweep must actually have killed writers and truncated torn tails.
grep -Eq "phase 2: [1-9][0-9]* SIGKILLs swept, [1-9][0-9]* torn tails" "$OUT" || {
  echo "FAIL: kill sweep produced no SIGKILLs or no torn tails"
  cat "$OUT"
  exit 1
}

# Surface the harness's own phase summary for the CI log.
grep -E "phase [0-9]:|SimSan|durability_crash: PASS" "$OUT" || true
echo "check_durability: PASS"
