#!/usr/bin/env bash
# Wavefront-64 portability lint (docs/sanitizer.md).
#
# The paper's whole point is that CUDA warp-32 idioms silently break on
# AMD's 64-lane wavefronts: 32-bit ballot masks drop half the lanes,
# 0xffffffff "full masks" are half-full, __popc on a 64-bit ballot
# truncates, and hard-coded >>5 / &31 lane arithmetic shears every index.
# This lint keeps those idioms out of the device-facing sources:
#
#   1. CUDA masked-sync intrinsics (__ballot_sync, __any_sync, __all_sync,
#      __activemask, __shfl_*_sync) — hipsim exposes the AMD unmasked forms.
#   2. __popc( on ballot results — must be __popcll/popcount on 64 bits.
#   3. 0xffffffff used as a full-wavefront mask (flagged only on lines that
#      also mention mask/ballot/lane/wavefront/warp/vote/shfl context, so
#      sentinels like kUnvisited = 0xFFFFFFFFu stay legal).
#   4. Warp-32 lane arithmetic (>>5, &31, %32, /32, ==32) in lane/warp/mask
#      context.
#
# A deliberate exception (e.g. modelling the CUDA comparison point) is
# annotated in-line with `// wf64-ok: <reason>`, which skips that line.
#
#   usage: lint_wavefront.sh [repo-root]
set -euo pipefail

ROOT=${1:-$(cd "$(dirname "$0")/.." && pwd)}
DIRS=(src/hipsim src/core src/baseline src/algos src/dist src/serve src/dyn src/shard)

fail=0
report() {  # file:line:text, tagged with the rule that fired
  printf 'lint_wavefront: [%s] %s\n' "$1" "$2"
  fail=1
}

for d in "${DIRS[@]}"; do
  [[ -d "$ROOT/$d" ]] || continue
  while IFS= read -r f; do
    lineno=0
    while IFS= read -r line; do
      lineno=$((lineno + 1))
      # Strip trailing comments AFTER honoring the allowlist marker; skip
      # pure comment/doc lines so prose may name the CUDA intrinsics.
      [[ "$line" =~ wf64-ok ]] && continue
      [[ "$line" =~ ^[[:space:]]*(//|\*|/\*) ]] && continue
      code=${line%%//*}
      loc="$f:$lineno"

      if [[ "$code" =~ __(ballot|any|all|shfl[a-z_]*)_sync|__activemask ]]; then
        report "cuda-masked-sync" "$loc: $code"
      fi
      if [[ "$code" =~ __popc\( ]]; then
        report "popc32-on-ballot" "$loc: $code"
      fi
      lower=$(printf '%s' "$code" | tr '[:upper:]' '[:lower:]')
      if [[ "$lower" =~ 0xffffffff([^f]|$) ]] &&
         [[ "$lower" =~ mask|ballot|lane|wavefront|warp|vote|shfl ]]; then
        report "warp32-full-mask" "$loc: $code"
      fi
      if [[ "$lower" =~ mask|ballot|lane|warp ]] &&
         [[ "$code" =~ \>\>[[:space:]]*5([^0-9]|$)|\&[[:space:]]*31([^0-9]|$)|%[[:space:]]*32([^0-9]|$)|/[[:space:]]*32([^0-9]|$)|==[[:space:]]*32([^0-9]|$) ]]; then
        report "warp32-lane-arith" "$loc: $code"
      fi
    done < "$f"
  done < <(find "$ROOT/$d" -name '*.h' -o -name '*.cpp' | sort)
done

if [[ $fail -ne 0 ]]; then
  echo "lint_wavefront: FAIL — warp-32 idioms found; fix them or annotate a"
  echo "deliberate exception with '// wf64-ok: <reason>' (docs/sanitizer.md)"
  exit 1
fi
echo "lint_wavefront: PASS"
