#!/usr/bin/env bash
# Full reproduction driver: configure, build, test, and regenerate every
# table/figure, capturing outputs at the repository root (the artifacts
# EXPERIMENTS.md refers to).
#
#   scripts/run_all.sh [--divisor=N]
set -euo pipefail
cd "$(dirname "$0")/.."

DIVISOR_ARG="${1:-}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "### $(basename "$b")"
    if [ "$(basename "$b")" = "bench_micro_kernels" ]; then
      "$b" --benchmark_min_time=0.05
    else
      "$b" ${DIVISOR_ARG}
    fi
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
