#!/usr/bin/env bash
# Full reproduction driver: configure, build, test, and regenerate every
# table/figure, capturing outputs at the repository root (the artifacts
# EXPERIMENTS.md refers to).
#
#   scripts/run_all.sh [--divisor=N]
set -euo pipefail
cd "$(dirname "$0")/.."

DIVISOR_ARG="${1:-}"

cmake -B build -G Ninja
cmake --build build

# Parity gate: every gate script in scripts/ must be registered as a ctest,
# so a check added to one side but not the other can't be silently skipped
# by this driver (it only runs what ctest knows about).  check_tidy is the
# one deliberate exception — it needs clang-tidy and a committed baseline,
# and is run explicitly by the tidy CI job rather than through ctest.
PARITY_EXEMPT="check_tidy"
REGISTERED=$(ctest --test-dir build -N)
MISSING=""
for s in scripts/check_*.sh scripts/lint_*.sh; do
  name=$(basename "$s" .sh)
  case " ${PARITY_EXEMPT} " in *" ${name} "*) continue ;; esac
  if ! grep -q "Test[[:space:]]*#[0-9]*: ${name}\$" <<<"$REGISTERED"; then
    MISSING="${MISSING} ${name}"
  fi
done
if [ -n "$MISSING" ]; then
  echo "ERROR: gate script(s) not registered with ctest:${MISSING}" >&2
  echo "       (add the add_test() wiring or extend PARITY_EXEMPT)" >&2
  exit 1
fi

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "### $(basename "$b")"
    if [ "$(basename "$b")" = "bench_micro_kernels" ]; then
      "$b" --benchmark_min_time=0.05
    else
      "$b" ${DIVISOR_ARG}
    fi
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
