#!/usr/bin/env bash
# CI check for the observability export path: run the quickstart example
# with XBFS_TRACE / XBFS_RUN_REPORT / XBFS_METRICS active, then validate
# that both JSON artifacts are well-formed and carry the span tracks and
# per-level rows the acceptance criteria require.
#
#   usage: check_trace.sh <quickstart-binary> [workdir]
set -euo pipefail

QUICKSTART=${1:?usage: check_trace.sh <quickstart-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

TRACE="$WORKDIR/check_trace.trace.json"
REPORT="$WORKDIR/check_trace.report.json"
METRICS="$WORKDIR/check_trace.metrics.txt"
rm -f "$TRACE" "$REPORT" "$METRICS"

# Toy scale keeps this in CI-seconds; env vars are the only wiring needed.
XBFS_TRACE="$TRACE" XBFS_RUN_REPORT="$REPORT" XBFS_METRICS="$METRICS" \
  "$QUICKSTART" 10 4 1 > "$WORKDIR/check_trace.stdout" 2>&1 || {
    echo "FAIL: quickstart exited non-zero"
    cat "$WORKDIR/check_trace.stdout"
    exit 1
  }

for f in "$TRACE" "$REPORT" "$METRICS"; do
  [[ -s "$f" ]] || { echo "FAIL: $f was not written"; exit 1; }
done

python3 - "$TRACE" "$REPORT" <<'EOF'
import json
import sys

trace_path, report_path = sys.argv[1], sys.argv[2]

# --- Chrome trace ----------------------------------------------------------
with open(trace_path) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"

cats = {e.get("cat") for e in events}
for required in ("kernel", "level", "strategy"):
    assert required in cats, f"missing '{required}' span track (have {cats})"

# --- trace schema ----------------------------------------------------------
# Every event carries the Chrome-trace required keys, phases come from the
# set the exporter can emit, duration ("X") spans are well-formed, and any
# explicit begin/end pairs balance per lane.
ALLOWED_PH = {"X", "i", "M", "B", "E"}
open_spans = {}
for e in events:
    ph = e.get("ph")
    assert ph in ALLOWED_PH, f"unexpected phase {ph!r}: {e}"
    for key in ("name", "ph", "pid", "tid"):
        assert key in e, f"event missing {key}: {e}"
    if ph != "M":
        assert "ts" in e, f"non-metadata event missing ts: {e}"
    if ph == "X":
        assert "dur" in e and e["dur"] >= 0, e
    if ph == "B":
        open_spans.setdefault((e["pid"], e["tid"]), []).append(e["name"])
    if ph == "E":
        stack = open_spans.get((e["pid"], e["tid"]))
        assert stack, f"E without matching B: {e}"
        stack.pop()
assert not any(v for v in open_spans.values()), \
    f"unclosed B spans: {open_spans}"

# Every pid that emits spans must be labeled (process_name metadata), and
# every (pid, tid) lane must carry a thread_name — Perfetto lanes render
# with real names ("host", "GCD 0", ...), never bare numbers.
span_pids = {e["pid"] for e in events if e["ph"] != "M"}
span_lanes = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
proc_names = {e["pid"]: e["args"]["name"] for e in events
              if e["ph"] == "M" and e["name"] == "process_name"}
thread_names = {(e["pid"], e["tid"]) for e in events
                if e["ph"] == "M" and e["name"] == "thread_name"}
for pid in span_pids:
    assert pid in proc_names, f"pid {pid} has no process_name label"
    assert proc_names[pid], f"pid {pid} label is empty"
for lane in span_lanes:
    assert lane in thread_names, f"lane {lane} has no thread_name"

levels = [e for e in events if e.get("cat") == "level"]

# --- run report ------------------------------------------------------------
with open(report_path) as f:
    report = json.load(f)
assert report["schema"] == "xbfs-run-report", report.get("schema")
assert report["version"] == 1, report.get("version")
runs = report["runs"]
assert runs, "no runs recorded"
run = next(r for r in runs if r["tool"] == "xbfs")
assert run["graph"]["n"] > 0 and run["graph"]["m"] > 0
assert run["depth"] == len(run["levels"])
assert run["kernels"], "per-kernel aggregates missing"
for row in run["levels"]:
    for key in ("level", "strategy", "frontier", "edges", "ratio", "time_ms"):
        assert key in row, f"level row missing {key}: {row}"
# The trace's level spans and the report's level rows describe the same run.
assert len(levels) == len(run["levels"]), (len(levels), len(run["levels"]))

print(f"OK: {len(events)} trace events, "
      f"{len(span_pids)} labeled pids, "
      f"{len(run['levels'])} level rows, "
      f"{len(run['kernels'])} kernel aggregates, "
      f"gteps={run['gteps']:.4f}")
EOF

echo "check_trace: PASS"
