#!/usr/bin/env bash
# CI check for the observability export path: run the quickstart example
# with XBFS_TRACE / XBFS_RUN_REPORT / XBFS_METRICS active, then validate
# that both JSON artifacts are well-formed and carry the span tracks and
# per-level rows the acceptance criteria require.
#
#   usage: check_trace.sh <quickstart-binary> [workdir]
set -euo pipefail

QUICKSTART=${1:?usage: check_trace.sh <quickstart-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

TRACE="$WORKDIR/check_trace.trace.json"
REPORT="$WORKDIR/check_trace.report.json"
METRICS="$WORKDIR/check_trace.metrics.txt"
rm -f "$TRACE" "$REPORT" "$METRICS"

# Toy scale keeps this in CI-seconds; env vars are the only wiring needed.
XBFS_TRACE="$TRACE" XBFS_RUN_REPORT="$REPORT" XBFS_METRICS="$METRICS" \
  "$QUICKSTART" 10 4 1 > "$WORKDIR/check_trace.stdout" 2>&1 || {
    echo "FAIL: quickstart exited non-zero"
    cat "$WORKDIR/check_trace.stdout"
    exit 1
  }

for f in "$TRACE" "$REPORT" "$METRICS"; do
  [[ -s "$f" ]] || { echo "FAIL: $f was not written"; exit 1; }
done

python3 - "$TRACE" "$REPORT" <<'EOF'
import json
import sys

trace_path, report_path = sys.argv[1], sys.argv[2]

# --- Chrome trace ----------------------------------------------------------
with open(trace_path) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"

cats = {e.get("cat") for e in events}
for required in ("kernel", "level", "strategy"):
    assert required in cats, f"missing '{required}' span track (have {cats})"

for e in events:
    if e.get("ph") == "X":
        assert "ts" in e and "dur" in e and e["dur"] >= 0, e
levels = [e for e in events if e.get("cat") == "level"]

# --- run report ------------------------------------------------------------
with open(report_path) as f:
    report = json.load(f)
assert report["schema"] == "xbfs-run-report", report.get("schema")
assert report["version"] == 1, report.get("version")
runs = report["runs"]
assert runs, "no runs recorded"
run = next(r for r in runs if r["tool"] == "xbfs")
assert run["graph"]["n"] > 0 and run["graph"]["m"] > 0
assert run["depth"] == len(run["levels"])
assert run["kernels"], "per-kernel aggregates missing"
for row in run["levels"]:
    for key in ("level", "strategy", "frontier", "edges", "ratio", "time_ms"):
        assert key in row, f"level row missing {key}: {row}"
# The trace's level spans and the report's level rows describe the same run.
assert len(levels) == len(run["levels"]), (len(levels), len(run["levels"]))

print(f"OK: {len(events)} trace events, "
      f"{len(run['levels'])} level rows, "
      f"{len(run['kernels'])} kernel aggregates, "
      f"gteps={run['gteps']:.4f}")
EOF

echo "check_trace: PASS"
