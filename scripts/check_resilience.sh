#!/usr/bin/env bash
# CI gate for the resilient serving path: run the serving load harness at a
# toy scale with fault injection on (5% kernel faults, 2% memcpy corruption
# — the acceptance mix), then validate that
#   - every admitted query completed with validated-correct levels (the
#     bench itself exits non-zero on any Failed query or lost accounting),
#   - chaos p99 stays within 10x the fault-free p99,
#   - the chaos run-report record carries the resilience counters.
#
#   usage: check_resilience.sh <bench_serving-binary> [workdir]
set -euo pipefail

BENCH=${1:?usage: check_resilience.sh <bench_serving-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

REPORT="$WORKDIR/check_resilience.report.json"
METRICS="$WORKDIR/check_resilience.metrics.txt"
rm -f "$REPORT" "$METRICS"

# Toy scale keeps this in CI-seconds; the acceptance fault mix is on the
# second (chaos) phase only, so the clean p99 baseline is honest.
XBFS_RUN_REPORT="$REPORT" XBFS_METRICS="$METRICS" \
  "$BENCH" --scale=11 --edge-factor=8 --queries=128 --candidates=16 \
           --clients=4 --naive-queries=8 \
           --chaos --fault-kernel=0.05 --fault-memcpy=0.02 \
           --chaos-check=10 > "$WORKDIR/check_resilience.stdout" 2>&1 || {
    echo "FAIL: bench_serving --chaos exited non-zero"
    cat "$WORKDIR/check_resilience.stdout"
    exit 1
  }

for f in "$REPORT" "$METRICS"; do
  [[ -s "$f" ]] || { echo "FAIL: $f was not written"; exit 1; }
done

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema"] == "xbfs-run-report", report.get("schema")
runs = report["runs"]

# --- chaos record (emitted by bench_serving --chaos) -----------------------
chaos = next(r for r in runs if r["tool"] == "bench_serving-chaos")
cfg = chaos["config"]
for key in ("injected", "completed", "failed", "faults_seen", "retries",
            "validation_failures", "validated_results", "degraded_queries",
            "host_fallbacks", "breaker_opens", "p99_clean_ms",
            "p99_chaos_ms", "p99_ratio"):
    assert key in cfg, f"chaos record missing '{key}'"

assert int(cfg["failed"]) == 0, f"chaos queries failed: {cfg['failed']}"
assert int(cfg["completed"]) > 0, "no chaos queries completed"
# The acceptance fault mix must actually have fired and been absorbed.
assert int(cfg["injected"]) > 0, "no faults injected — chaos phase inert"
assert int(cfg["faults_seen"]) > 0, "server saw no faults"
assert int(cfg["validated_results"]) > 0, "no results were validated"

# --- chaos server summary ---------------------------------------------------
# The bench emits three serve summaries: clean, chaos, and the escalation
# probe (host fallback off, so its queries are *expected* to fail — it
# exists to produce a failed-query exemplar trace).  Select the chaos one
# structurally: faults flowed through it AND the host-fallback rung was on.
serves = [r for r in runs if r["tool"] == "serve"]
assert len(serves) == 3, f"expected clean+chaos+probe serve summaries, got {len(serves)}"
scfg = next(s["config"] for s in serves
            if int(s["config"]["faults_seen"]) > 0
            and s["config"]["host_fallback"] == "1")
for key in ("failed", "faults_seen", "retries", "validation_failures",
            "host_fallbacks", "breaker_opens"):
    assert key in scfg, f"serve summary missing resilience counter '{key}'"
assert int(scfg["failed"]) == 0

# The escalation probe must have actually failed queries (that is its job).
probe = next(s["config"] for s in serves if s["config"]["host_fallback"] == "0")
assert int(probe["failed"]) > 0, "escalation probe produced no failed queries"

print(f"OK: injected={cfg['injected']} seen={cfg['faults_seen']} "
      f"retries={cfg['retries']} "
      f"host_fallbacks={cfg['host_fallbacks']} "
      f"validated={cfg['validated_results']} "
      f"p99_ratio={float(cfg['p99_ratio']):.2f}x")
EOF

echo "check_resilience: PASS"
