#!/usr/bin/env bash
# Enforced clang-tidy gate (docs/modelcheck.md).
#
# Runs the *curated* check subset — bugprone-*, concurrency-*, and
# performance-move-* — over every first-party translation unit and fails on
# any (file, check) pair that is not in the committed baseline
# (scripts/tidy_baseline.txt).  The full .clang-tidy profile stays advisory;
# this gate is the slice where a new warning is overwhelmingly likely to be
# a real defect in a codebase built on std::atomic_ref and shared_ptr
# lifetimes, so it is allowed to break the build.
#
#   usage: check_tidy.sh <source-dir> <build-dir-with-compile-commands> [--update]
#
# --update regenerates the baseline in place (run after deliberately
# accepting a finding; the diff then documents the acceptance in review).
# When clang-tidy is not installed the gate SKIPs with exit 0 so local
# builds and minimal containers are not blocked — CI installs it.
set -euo pipefail

SRC=${1:?usage: check_tidy.sh <source-dir> <build-dir> [--update]}
BUILD=${2:?usage: check_tidy.sh <source-dir> <build-dir> [--update]}
MODE=${3:-check}
BASELINE="$SRC/scripts/tidy_baseline.txt"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "check_tidy: SKIP (clang-tidy not installed)"
  exit 0
fi
if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "check_tidy: SKIP (no compile_commands.json in $BUILD — configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
  exit 0
fi

CHECKS='-*,bugprone-*,-bugprone-easily-swappable-parameters,-bugprone-narrowing-conversions,concurrency-*,performance-move-*'

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cd "$SRC"
git ls-files 'src/*.cpp' 'examples/*.cpp' 'bench/*.cpp' > "$WORK/files"
xargs -a "$WORK/files" -P "$(nproc)" -n 4 \
  clang-tidy -p "$BUILD" --quiet --checks="$CHECKS" \
  > "$WORK/raw" 2> /dev/null || true

# One line per (file, check) pair, paths relative to the repo root so the
# baseline is machine-independent.  A pair, not a line number: line drift
# from unrelated edits must not churn the baseline.
sed -nE 's|^'"$PWD"'/||; s|^([^:]+):[0-9]+:[0-9]+: warning: .* \[([A-Za-z0-9.,-]+)\]$|\1 \2|p' \
  "$WORK/raw" | sort -u > "$WORK/pairs"

if [ "$MODE" = "--update" ]; then
  {
    echo "# clang-tidy baseline: accepted (file, check) pairs for the enforced"
    echo "# gate (scripts/check_tidy.sh).  Regenerate with:"
    echo "#   bash scripts/check_tidy.sh . <build-dir> --update"
    cat "$WORK/pairs"
  } > "$BASELINE"
  echo "check_tidy: baseline updated ($(wc -l < "$WORK/pairs") pair(s))"
  exit 0
fi

grep -v '^#' "$BASELINE" 2> /dev/null | sed '/^$/d' | sort -u > "$WORK/base" || true
comm -13 "$WORK/base" "$WORK/pairs" > "$WORK/new"
comm -23 "$WORK/base" "$WORK/pairs" > "$WORK/stale"

if [ -s "$WORK/stale" ]; then
  echo "check_tidy: NOTE — $(wc -l < "$WORK/stale") baseline entr(y/ies) no longer fire (stale; prune with --update):"
  sed 's/^/  /' "$WORK/stale"
fi
if [ -s "$WORK/new" ]; then
  echo "check_tidy: FAIL — $(wc -l < "$WORK/new") new clang-tidy finding(s) outside the baseline:"
  sed 's/^/  /' "$WORK/new"
  echo "Fix them, or accept deliberately with: bash scripts/check_tidy.sh . <build-dir> --update"
  grep -F -f <(awk '{print $1}' "$WORK/new" | sort -u) "$WORK/raw" | head -40 || true
  exit 1
fi
echo "check_tidy: PASS ($(wc -l < "$WORK/pairs") finding(s), all baselined)"
