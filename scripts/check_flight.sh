#!/usr/bin/env bash
# Chaos-mode gate for the flight recorder + SLO engine (docs/observability.md).
#
# Runs bench_serving --chaos at toy scale with XBFS_FLIGHT / XBFS_SLO /
# XBFS_RUN_REPORT active, then asserts:
#
#   1. The flight dump is valid "xbfs-flight" JSON and contains the failed
#      (escalation-probe) query's full rung history: its attempt_failed
#      events — one per exhausted retry — and its budget_exhausted record,
#      keyed by the trace id embedded in the run record's failed_trace.
#   2. The run record's failed_trace / degraded_trace exemplars parse as
#      "xbfs-query-trace" JSON, each with a complete admission->terminal
#      event chain and at least one attributed rung; the failed exemplar
#      carries non-zero kernel counters on a faulted attempt.
#   3. The SLO comparison holds: zero error-budget burn in the fault-free
#      phase, non-zero burn under injected faults.
#   4. SIGTERM mid-run still leaves a flight dump behind (signal flush).
#
#   usage: check_flight.sh <bench_serving-binary> [workdir]
set -euo pipefail

BENCH=${1:?usage: check_flight.sh <bench_serving-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

FLIGHT="$WORKDIR/check_flight.flight.json"
REPORT="$WORKDIR/check_flight.report.json"
rm -f "$FLIGHT" "$REPORT"

XBFS_FLIGHT="$FLIGHT" XBFS_SLO="availability=0.99" XBFS_RUN_REPORT="$REPORT" \
  "$BENCH" --scale=12 --queries=48 --naive-queries=4 --candidates=16 \
  --chaos --fault-seed=42 > "$WORKDIR/check_flight.stdout" 2>&1 || {
    echo "FAIL: bench_serving --chaos exited non-zero"
    cat "$WORKDIR/check_flight.stdout"
    exit 1
  }

for f in "$FLIGHT" "$REPORT"; do
  [[ -s "$f" ]] || { echo "FAIL: $f was not written"; exit 1; }
done

python3 - "$FLIGHT" "$REPORT" <<'EOF'
import json
import sys

flight_path, report_path = sys.argv[1], sys.argv[2]

# --- run record exemplars --------------------------------------------------
with open(report_path) as f:
    report = json.load(f)
chaos = next(r for r in report["runs"] if r["tool"] == "bench_serving-chaos")
cfg = dict(chaos["config"]) if isinstance(chaos["config"], list) \
    else chaos["config"]

failed = json.loads(cfg["failed_trace"])
degraded = json.loads(cfg["degraded_trace"])
for name, t in (("failed", failed), ("degraded", degraded)):
    assert t["schema"] == "xbfs-query-trace", (name, t.get("schema"))
    kinds = [e["kind"] for e in t["events"]]
    assert kinds[0] == "admitted", (name, kinds)
    assert t["rungs"], f"{name} exemplar has no attributed rungs"
# The failed query walked the whole retry budget to a terminal failure...
fkinds = [e["kind"] for e in failed["events"]]
assert fkinds[-1] == "failed", fkinds
assert "exhausted" in fkinds, fkinds
attempts = fkinds.count("attempt")
assert attempts >= 2, f"expected >=2 attempts, got {attempts}: {fkinds}"
assert fkinds.count("fault") >= 2, fkinds
# ...with real kernel-counter attribution on at least one faulted attempt
# (the fault lands mid-run, after some launches already attributed).
assert any(r["outcome"] == "fault" and r["launches"] > 0
           for r in failed["rungs"]), failed["rungs"]
# The degraded query completed off its preferred rung, trace intact.
dkinds = [e["kind"] for e in degraded["events"]]
assert dkinds[-1] == "completed", dkinds

# --- SLO error-budget comparison -------------------------------------------
assert float(cfg["slo_clean_burn"]) == 0.0, cfg["slo_clean_burn"]
assert int(cfg["slo_clean_bad"]) == 0, cfg["slo_clean_bad"]
assert float(cfg["slo_chaos_burn"]) > 0.0, cfg["slo_chaos_burn"]
assert int(cfg["slo_chaos_bad"]) > 0, cfg["slo_chaos_bad"]

# --- flight dump -----------------------------------------------------------
with open(flight_path) as f:
    flight = json.load(f)
assert flight["schema"] == "xbfs-flight", flight.get("schema")
events = flight["events"]
assert events, "flight ring empty"
seqs = [e["seq"] for e in events]
assert seqs == sorted(seqs), "flight events out of causal order"

# The failed query's history must be recoverable from the ring by trace id:
# one attempt_failed per exhausted retry plus the terminal budget_exhausted.
fid = failed["id"]
attempt_failed = [e for e in events
                  if e["name"] == "attempt_failed" and e["a"] == fid]
assert len(attempt_failed) >= attempts, (
    f"flight has {len(attempt_failed)} attempt_failed for id {fid}, "
    f"trace shows {attempts} attempts")
assert any(e["name"] == "budget_exhausted" and e["a"] == fid
           for e in events), f"no budget_exhausted for id {fid}"
assert any(e["name"] == "query_failed" and e["a"] == fid
           for e in events), f"no query_failed for id {fid}"
# Context providers key is always present (empty after shutdown: the
# final dump fires at exit, when the servers already unregistered).
assert "context" in flight, "flight dump missing context object"

print(f"OK: failed id {fid} ({attempts} attempts, "
      f"{len(attempt_failed)} attempt_failed in ring), "
      f"{len(events)} flight events, "
      f"chaos burn {cfg['slo_chaos_burn']} vs clean {cfg['slo_clean_burn']}")
EOF

# --- signal flush: SIGTERM mid-run must still leave a dump behind ----------
SIGFLIGHT="$WORKDIR/check_flight.sig.json"
rm -f "$SIGFLIGHT"
# The oversized naive baseline keeps the bench busy for minutes, so the
# SIGTERM reliably lands mid-run; the handler must flush a dump and then
# die with the original signal status.
XBFS_FLIGHT="$SIGFLIGHT" \
  "$BENCH" --scale=14 --queries=100000 --naive-queries=100000 \
  > "$WORKDIR/check_flight.sig.stdout" 2>&1 &
PID=$!
sleep 2
kill -TERM "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null && {
  # The bench somehow finished before the signal: the exit dump still
  # satisfies the check, but note it.
  echo "note: signal target exited before SIGTERM"
} || true
[[ -s "$SIGFLIGHT" ]] || { echo "FAIL: no flight dump after SIGTERM"; exit 1; }
python3 -c "
import json, sys
d = json.load(open(sys.argv[1]))
assert d['schema'] == 'xbfs-flight', d.get('schema')
print(f\"OK: signal dump reason={d['reason']!r}, {len(d['events'])} events\")
" "$SIGFLIGHT"

echo "check_flight: PASS"
