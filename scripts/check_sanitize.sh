#!/usr/bin/env bash
# CI gate for SimSan, the hipsim device sanitizer (docs/sanitizer.md): run
# the full traversal sweep (every XBFS strategy, every baseline, the algos
# and the distributed layer) with XBFS_SANITIZE=all and require
#   - zero unannotated findings (out-of-bounds / use-after-free / uninit /
#     stale host reads / undocumented cross-block races), and
#   - at least one allowlisted benign-race finding (the paper's bottom-up
#     look-ahead race must stay detected-and-annotated, not invisible), and
#   - zero STALE racy_ok annotations: every annotation scope that executed
#     must have covered at least one logged access, otherwise the allowlist
#     entry outlived the racy code it documented (docs/modelcheck.md).
# The binary already enforces all three and prints PASS/FAIL; this wrapper
# pins the env contract and keeps the output for triage.
#
#   usage: check_sanitize.sh <sanitize_sweep-binary> [workdir]
set -euo pipefail

SWEEP=${1:?usage: check_sanitize.sh <sanitize_sweep-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
OUT="$WORKDIR/check_sanitize.stdout"

if ! XBFS_SANITIZE=all "$SWEEP" 10 8 1 > "$OUT" 2>&1; then
  echo "FAIL: sanitize_sweep exited non-zero"
  cat "$OUT"
  exit 1
fi

grep -q "sanitize_sweep: PASS" "$OUT" || {
  echo "FAIL: PASS line missing from sanitize_sweep output"
  cat "$OUT"
  exit 1
}

# Surface the sanitizer's own summary line(s) for the CI log.
grep -E "SimSan|sanitize_sweep: PASS" "$OUT" || true
echo "check_sanitize: PASS"
