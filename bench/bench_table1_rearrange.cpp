// Reproduces Table I: per-level FetchSize (KB) and runtime (ms) of adaptive
// XBFS on the Rmat25 stand-in, with and without Degree-Aware Neighbor Order
// Re-arrangement (paper Sec. IV-B).  Expected shape: the re-arranged graph
// reads markedly less memory at the bottom-up levels (early termination
// finds a high-degree — hence likely-visited — parent sooner) and the total
// runtime drops by double-digit percent.
#include <cstdio>

#include "bench/bench_common.h"
#include "graph/reorder.h"

using namespace xbfs;
using namespace xbfs::bench;

namespace {

core::BfsResult run_adaptive(const graph::Csr& g, graph::vid_t src,
                             const sim::DeviceProfile& profile) {
  sim::SimOptions so;
  so.num_workers = 1;  // deterministic profile mode
  sim::Device dev(profile, so);
  dev.warmup();  // Table I's per-level times exclude the one-time warm-up
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::XbfsConfig cfg;
  // The scale-divided stand-in has a shorter diameter than the paper's full
  // Rmat25, so its frontier-edge ratio crosses into the bottom-up regime one
  // level later, where early termination is already ~1 probe and neighbor
  // order cannot matter.  Tuning alpha down (the paper tunes alpha per
  // system, Sec. V-E) engages bottom-up in the moderate-ratio regime the
  // paper's Table I profiles.
  cfg.alpha = 0.05;
  core::Xbfs bfs(dev, dg, cfg);
  return bfs.run(src);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf("Table I reproduction: Rmat25 stand-in, scale divisor %u\n",
              opt.scale_divisor);

  LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
  const graph::vid_t src = pick_sources(d, 1, opt.seed)[0];

  const graph::Csr rearranged =
      graph::rearrange_neighbors(d.host, graph::NeighborOrder::ByDegreeDesc);

  const core::BfsResult base = run_adaptive(d.host, src, scaled_mi250x(opt));
  const core::BfsResult reord =
      run_adaptive(rearranged, src, scaled_mi250x(opt));

  print_header(
      "Table I: Not Re-arranged vs Re-arranged (FetchSize KB / Runtime ms)");
  std::printf("%-6s | %-16s %-12s | %-16s %-12s\n", "Level", "FS(KB) base",
              "ms base", "FS(KB) reord", "ms reord");
  double fs_base = 0, ms_base = 0, fs_re = 0, ms_re = 0;
  const std::size_t depth =
      std::max(base.level_stats.size(), reord.level_stats.size());
  for (std::size_t lvl = 0; lvl < depth; ++lvl) {
    const double f0 =
        lvl < base.level_stats.size() ? base.level_stats[lvl].fetch_kb : 0;
    const double t0 =
        lvl < base.level_stats.size() ? base.level_stats[lvl].time_ms : 0;
    const double f1 =
        lvl < reord.level_stats.size() ? reord.level_stats[lvl].fetch_kb : 0;
    const double t1 =
        lvl < reord.level_stats.size() ? reord.level_stats[lvl].time_ms : 0;
    fs_base += f0;
    ms_base += t0;
    fs_re += f1;
    ms_re += t1;
    std::printf("%-6zu | %-16.2f %-12.4f | %-16.2f %-12.4f\n", lvl, f0, t0,
                f1, t1);
  }
  std::printf("%-6s | %-16.2f %-12.4f | %-16.2f %-12.4f\n", "Sum", fs_base,
              ms_base, fs_re, ms_re);
  std::printf(
      "\nfetch reduction: %.1f%%   runtime speedup: %.1f%%   "
      "(paper: 23%% fetch, 17.9%% end-to-end on Rmat25)\n",
      100.0 * (1.0 - fs_re / fs_base), 100.0 * (1.0 - ms_re / ms_base));
  return 0;
}
