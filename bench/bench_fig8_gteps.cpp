// Reproduces Fig. 8: end-to-end GTEPS of adaptive XBFS vs the Gunrock-like
// edge-frontier baseline on all six Table II stand-ins (n-to-n over several
// sources, alpha = 0.1), plus the Degree-Aware Re-arrangement speedup on
// Rmat25 and the Sec. V-F bandwidth-efficiency accounting.
//
// Expected shapes: XBFS beats the baseline everywhere; the dense RMAT
// graphs (few levels, high average degree) top the chart; USpatent and Dblp
// trail badly — UP because its long diameter multiplies the per-level fixed
// costs, DB because host/device interaction dominates a tiny graph.
#include <cstdio>
#include <vector>

#include "baseline/gunrock_like.h"
#include "bench/bench_common.h"
#include "graph/reorder.h"

using namespace xbfs;
using namespace xbfs::bench;

namespace {

struct Measured {
  double gteps = 0.0;
  double ms = 0.0;
  double fetch_mb = 0.0;  ///< HBM traffic of the measured traversals
  std::uint32_t depth = 0;
};

template <typename RunFn>
Measured measure(const std::vector<graph::vid_t>& sources, sim::Device& dev,
                 RunFn&& run_one) {
  Measured m;
  double sum_gteps = 0;
  for (graph::vid_t src : sources) {
    dev.profiler().clear();
    const core::BfsResult r = run_one(src);
    sum_gteps += r.gteps;
    m.ms += r.total_ms;
    m.depth = std::max(m.depth, r.depth);
    m.fetch_mb += dev.profiler().total_fetch_kb("") / 1024.0;
  }
  m.gteps = sum_gteps / static_cast<double>(sources.size());
  m.ms /= static_cast<double>(sources.size());
  m.fetch_mb /= static_cast<double>(sources.size());
  return m;
}

Measured run_xbfs(const graph::Csr& g,
                  const std::vector<graph::vid_t>& sources,
                  const core::XbfsConfig& cfg,
                  const sim::DeviceProfile& profile) {
  sim::Device dev(profile);
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg, cfg);
  return measure(sources, dev,
                 [&](graph::vid_t src) { return bfs.run(src); });
}

Measured run_gunrock(const graph::Csr& g,
                     const std::vector<graph::vid_t>& sources,
                     const sim::DeviceProfile& profile) {
  sim::Device dev(profile);
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  baseline::GunrockLikeBfs bfs(dev, dg);
  return measure(sources, dev,
                 [&](graph::vid_t src) { return bfs.run(src); });
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf(
      "Fig. 8 reproduction: GTEPS per dataset (XBFS alpha=0.1 vs "
      "Gunrock-like), %u sources, scale divisor %u\n",
      opt.sources, opt.scale_divisor);

  core::XbfsConfig cfg;
  cfg.alpha = 0.1;

  print_header("Fig. 8: end-to-end throughput (modelled GTEPS)");
  std::printf("%-6s %-10s %-10s %-9s %-8s %-8s %-10s\n", "Graph", "XBFS",
              "Gunrock", "speedup", "|V|", "avgdeg", "depth");
  for (const graph::DatasetMeta& meta : graph::all_datasets()) {
    LoadedDataset d = load_dataset(meta.id, opt);
    const auto sources = pick_sources(d, opt.sources, opt.seed);
    const Measured x = run_xbfs(d.host, sources, cfg, scaled_mi250x(opt));
    const Measured g = run_gunrock(d.host, sources, scaled_mi250x(opt));
    std::printf("%-6s %-10.3f %-10.3f %-9.2fx %-8u %-8.1f %-10u\n",
                meta.short_name.c_str(), x.gteps, g.gteps,
                g.gteps > 0 ? x.gteps / g.gteps : 0.0, d.host.num_vertices(),
                d.host.avg_degree(), x.depth);
  }

  // Degree-aware re-arrangement on the Rmat25 stand-in (paper: +17.9%).
  {
    LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
    const auto sources = pick_sources(d, opt.sources, opt.seed);
    const graph::Csr reord =
        graph::rearrange_neighbors(d.host, graph::NeighborOrder::ByDegreeDesc);
    const Measured base = run_xbfs(d.host, sources, cfg, scaled_mi250x(opt));
    const Measured re = run_xbfs(reord, sources, cfg, scaled_mi250x(opt));
    print_header("Degree-Aware Neighbor Re-arrangement on Rmat25");
    std::printf("not re-arranged: %.3f GTEPS    re-arranged: %.3f GTEPS    "
                "speedup: %.1f%%  (paper: 17.9%%)\n",
                base.gteps, re.gteps,
                100.0 * (re.gteps / base.gteps - 1.0));

    // Sec. V-F bandwidth-efficiency accounting on the same runs.
    const double v = d.host.num_vertices();
    const double m = d.host.num_edges();
    const double predicted_bytes = 16.0 * v + 4.0 * m;
    const double bw = sim::DeviceProfile::mi250x_gcd().hbm_bytes_per_us;
    const double predicted_eff =
        (predicted_bytes / (base.ms * 1000.0)) / bw * 100.0;
    const double measured_eff =
        (base.fetch_mb * 1024.0 * 1024.0 / (base.ms * 1000.0)) / bw * 100.0;
    print_header("Sec. V-F: memory bandwidth efficiency on Rmat25");
    std::printf(
        "predicted footprint 16|V|+4|M| = %.1f MB; traversal %.3f ms\n"
        "predicted efficiency: %.1f%% of 1.6 TB/s   (paper: 13.7%%)\n"
        "measured  efficiency: %.1f%% of 1.6 TB/s   (paper: 16.2%%)\n",
        predicted_bytes / 1.0e6, base.ms, predicted_eff, measured_eff);
  }
  return 0;
}
