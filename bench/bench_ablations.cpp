// Ablation benches for the design choices DESIGN.md calls out:
//   * alpha threshold sweep (adaptive end-to-end GTEPS vs alpha)
//   * No-Frontier-Generation on/off
//   * bottom-up look-ahead on/off
//   * top-down balancing modes
//   * warp-centric vs thread-centric bottom-up
//   * single stream vs three degree-binned streams, per device profile
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "graph/reorder.h"

using namespace xbfs;
using namespace xbfs::bench;

namespace {

double gteps_of(const sim::DeviceProfile& profile, const graph::Csr& g,
                const std::vector<graph::vid_t>& sources,
                const core::XbfsConfig& cfg) {
  sim::Device dev(profile);
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg, cfg);
  double sum = 0;
  for (graph::vid_t src : sources) sum += bfs.run(src).gteps;
  return sum / static_cast<double>(sources.size());
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf("Design-choice ablations on the Rmat25 stand-in, divisor %u\n",
              opt.scale_divisor);

  LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
  const auto sources = pick_sources(d, opt.sources, opt.seed);
  const auto mi250x = scaled_mi250x(opt);
  const auto p6000 = scaled_p6000(opt);

  {
    print_header("alpha sweep (adaptive GTEPS)");
    for (double alpha : {0.005, 0.02, 0.05, 0.1, 0.2, 0.5, 1.1}) {
      core::XbfsConfig cfg;
      cfg.alpha = alpha;
      std::printf("  alpha %-6.3f -> %8.3f GTEPS%s\n", alpha,
                  gteps_of(mi250x, d.host, sources, cfg),
                  alpha > 1.0 ? "  (bottom-up disabled)" : "");
    }
  }
  {
    print_header("No-Frontier-Generation variant");
    for (bool nfg : {true, false}) {
      core::XbfsConfig cfg;
      cfg.enable_nfg = nfg;
      std::printf("  NFG %-5s -> %8.3f GTEPS\n", nfg ? "on" : "off",
                  gteps_of(mi250x, d.host, sources, cfg));
    }
  }
  {
    print_header("bottom-up look-ahead");
    for (bool la : {true, false}) {
      core::XbfsConfig cfg;
      cfg.enable_lookahead = la;
      std::printf("  look-ahead %-5s -> %8.3f GTEPS\n", la ? "on" : "off",
                  gteps_of(mi250x, d.host, sources, cfg));
    }
  }
  {
    print_header("top-down workload balancing");
    const core::Balancing modes[] = {core::Balancing::ThreadCentric,
                                     core::Balancing::WavefrontCentric,
                                     core::Balancing::DegreeBinned};
    const char* names[] = {"thread-centric", "wavefront-centric",
                           "degree-binned"};
    for (int i = 0; i < 3; ++i) {
      core::XbfsConfig cfg;
      cfg.topdown_balancing = modes[i];
      std::printf("  %-18s -> %8.3f GTEPS\n", names[i],
                  gteps_of(mi250x, d.host, sources, cfg));
    }
  }
  {
    print_header("bottom-up gather (paper: warp-centric hurts on AMD)");
    for (bool wc : {false, true}) {
      core::XbfsConfig cfg;
      cfg.bottomup_warp_centric = wc;
      std::printf("  %-18s -> %8.3f GTEPS\n",
                  wc ? "wavefront-centric" : "thread-centric",
                  gteps_of(mi250x, d.host, sources, cfg));
    }
  }
  {
    print_header("stream mode x device profile (Sec. IV-B consolidation)");
    for (auto mode : {core::StreamMode::Single, core::StreamMode::TripleBinned}) {
      core::XbfsConfig cfg;
      cfg.stream_mode = mode;
      const char* mname =
          mode == core::StreamMode::Single ? "single stream " : "three streams";
      std::printf("  %s on MI250X -> %8.3f GTEPS | on P6000 -> %8.3f GTEPS\n",
                  mname, gteps_of(mi250x, d.host, sources, cfg),
                  gteps_of(p6000, d.host, sources, cfg));
    }
  }
  {
    print_header("bottom-up bit-status check (1-bit frontier bitmap)");
    for (bool bm : {false, true}) {
      core::XbfsConfig cfg;
      cfg.bottomup_bitmap = bm;
      std::printf("  bitmap %-5s -> %8.3f GTEPS\n", bm ? "on" : "off",
                  gteps_of(mi250x, d.host, sources, cfg));
    }
  }
  {
    print_header("graph layout (neighbor order x vertex relabeling)");
    core::XbfsConfig cfg;
    std::printf("  %-34s -> %8.3f GTEPS\n", "builder order (by id)",
                gteps_of(mi250x, d.host, sources, cfg));
    const graph::Csr nb_desc =
        graph::rearrange_neighbors(d.host, graph::NeighborOrder::ByDegreeDesc);
    std::printf("  %-34s -> %8.3f GTEPS\n", "neighbors by degree desc (paper)",
                gteps_of(mi250x, nb_desc, sources, cfg));
    const graph::Csr nb_asc =
        graph::rearrange_neighbors(d.host, graph::NeighborOrder::ByDegreeAsc);
    std::printf("  %-34s -> %8.3f GTEPS\n",
                "neighbors by degree asc (adversarial)",
                gteps_of(mi250x, nb_asc, sources, cfg));
    // Whole-graph relabelings need remapped sources.
    const auto run_relabeled = [&](graph::VertexOrder order,
                                   const char* name) {
      const graph::Relabeling rl = graph::relabel_vertices(d.host, order);
      std::vector<graph::vid_t> remapped;
      for (graph::vid_t s : sources) remapped.push_back(rl.old_to_new[s]);
      std::printf("  %-34s -> %8.3f GTEPS\n", name,
                  gteps_of(mi250x, rl.graph, remapped, cfg));
    };
    run_relabeled(graph::VertexOrder::ByDegreeDesc,
                  "vertices relabeled hubs-first");
    run_relabeled(graph::VertexOrder::BfsFrom0,
                  "vertices relabeled in BFS order");
  }
  {
    print_header("register spill factor on bottom-up (compiler effect)");
    for (double f : {1.0, 1.2, 2.0, 10.0}) {
      core::XbfsConfig cfg;
      cfg.bottomup_spill_factor = f;
      std::printf("  spill x%-5.1f -> %8.3f GTEPS%s\n", f,
                  gteps_of(mi250x, d.host, sources, cfg),
                  f == 10.0 ? "  (paper: no -O3 => up to 10x slower)" : "");
    }
  }
  return 0;
}
