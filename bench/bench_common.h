// Shared utilities for the table/figure reproduction benches: dataset
// construction at a configurable scale divisor, device construction,
// source selection, and fixed-width table printing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/xbfs.h"
#include "graph/datasets.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "hipsim/hipsim.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace xbfs::bench {

/// Command-line options shared by the reproduction benches.
struct BenchOptions {
  /// Degree-preserving shrink factor on Table II vertex counts (1 = paper
  /// size).  The default keeps profile-mode simulation in seconds per run.
  unsigned scale_divisor = 32;
  unsigned sources = 4;     ///< BFS sources per measurement ("n-to-n" style)
  std::uint64_t seed = 1;   ///< generator + source-picking seed
  unsigned seeds = 1;       ///< generator seeds (Fig. 6 boxes)

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      auto num = [&](const char* flag) -> long long {
        if (std::strncmp(argv[i], flag, std::strlen(flag)) == 0 &&
            argv[i][std::strlen(flag)] == '=') {
          return std::atoll(argv[i] + std::strlen(flag) + 1);
        }
        return -1;
      };
      long long v;
      if ((v = num("--divisor")) >= 0) o.scale_divisor = static_cast<unsigned>(v);
      if ((v = num("--sources")) >= 0) o.sources = static_cast<unsigned>(v);
      if ((v = num("--seed")) >= 0) o.seed = static_cast<std::uint64_t>(v);
      if ((v = num("--seeds")) >= 0) o.seeds = static_cast<unsigned>(v);
      if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "options: --divisor=N (Table II shrink, default 32)  "
            "--sources=N  --seed=N  --seeds=N\n");
        std::exit(0);
      }
    }
    return o;
  }
};

/// MI250X-GCD profile with the L2 capacity scaled down by the dataset's
/// scale divisor, so the cache-to-working-set ratio matches the paper's
/// full-size runs (8 MB of L2 against a 134 MB status array).  Without this
/// a shrunken status array becomes fully L2-resident and every cache-
/// locality effect the paper measures (notably Table I's re-arrangement
/// win) vanishes by construction.
inline sim::DeviceProfile scaled_mi250x(const BenchOptions& opt) {
  sim::DeviceProfile p = sim::DeviceProfile::mi250x_gcd();
  p.l2_bytes = std::max<std::uint64_t>(p.l2_bytes / opt.scale_divisor,
                                       64 * 1024);
  return p;
}

inline sim::DeviceProfile scaled_p6000(const BenchOptions& opt) {
  sim::DeviceProfile p = sim::DeviceProfile::p6000();
  p.l2_bytes = std::max<std::uint64_t>(p.l2_bytes / opt.scale_divisor,
                                       64 * 1024);
  return p;
}

/// A Table II dataset stand-in resident on a fresh simulated GCD.
struct LoadedDataset {
  graph::DatasetMeta meta;
  graph::Csr host;
  std::vector<graph::vid_t> giant;  ///< largest-component vertices
};

inline LoadedDataset load_dataset(graph::DatasetId id,
                                  const BenchOptions& opt,
                                  std::uint64_t seed_override = 0) {
  LoadedDataset d{graph::dataset_meta(id), {}, {}};
  d.host = graph::make_dataset(id, opt.scale_divisor,
                               seed_override ? seed_override : opt.seed);
  d.giant = graph::largest_component_vertices(d.host);
  // Stamp the dataset onto every run record produced while it is loaded,
  // so BENCH_*.json trajectories can be grouped without per-bench wiring
  // (runners add their records from inside run(); they never see the
  // dataset name).
  obs::ReportSession& report = obs::ReportSession::global();
  if (report.enabled()) {
    report.set_context("dataset", d.meta.short_name);
    report.set_context("scale_divisor", std::to_string(opt.scale_divisor));
  }
  return d;
}

/// Deterministically sample `count` BFS sources from the giant component.
inline std::vector<graph::vid_t> pick_sources(const LoadedDataset& d,
                                              unsigned count,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9E3779B9u + 7);
  std::vector<graph::vid_t> out;
  out.reserve(count);
  std::uniform_int_distribution<std::size_t> pick(0, d.giant.size() - 1);
  for (unsigned i = 0; i < count; ++i) out.push_back(d.giant[pick(rng)]);
  return out;
}

/// Pretty horizontal rule + header for bench output.
inline void print_header(const char* title) {
  std::printf("\n%s\n", title);
  for (const char* p = title; *p; ++p) std::putchar('=');
  std::putchar('\n');
}

inline const char* short_float(double v, char* buf, std::size_t n) {
  if (v != 0 && (v < 1e-3 || v >= 1e6)) {
    std::snprintf(buf, n, "%.2e", v);
  } else {
    std::snprintf(buf, n, "%.3f", v);
  }
  return buf;
}

}  // namespace xbfs::bench
