// Dynamic-graph load harness: quantifies the two claims of the dyn
// subsystem (docs/dynamic.md).
//
//  1. Repair vs recompute: a stream of small edge batches (default 0.5% of
//     the undirected edge count, the acceptance bound is <= 1%) is applied
//     to a GraphStore; after each batch the same source is re-queried twice
//     through dyn::IncrementalBfs — once with warm per-source history
//     (incremental repair) and once after clear_history() (full recompute
//     on the identical snapshot).  The modelled-time ratio is the
//     repair-vs-recompute speedup; each repaired leg is verified against a
//     fresh host reference BFS.
//
//  2. Epoch-churn serving: Zipf-skewed read traffic against a dynamic
//     serve::Server while a writer lane interleaves update batches.  Every
//     update bumps the epoch and purges the result cache, so the steady
//     hit rate under churn — plus the epoch-bump / purge / repair counters
//     from ServerStats — lands in the run record next to the speedup.
//
//   bench_dynamic [--scale=14] [--edge-factor=16] [--rounds=12]
//                 [--batch-edges=0]   (0 = 0.5% of undirected |E|)
//                 [--queries=256] [--zipf=1.0] [--candidates=32]
//                 [--updates=16] [--gcds=1] [--seed=1]
//                 [--check=MIN_SPEEDUP]
//
// --check exits non-zero unless the repair speedup reaches the bound.
// Under XBFS_SANITIZE the whole run doubles as a SimSan gate: the bench
// prints the sanitizer summary and fails on any unannotated finding.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "dyn/delta_ref.h"
#include "dyn/graph_store.h"
#include "dyn/incremental_bfs.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/hipsim.h"
#include "hipsim/sanitizer.h"
#include "obs/query_trace.h"
#include "obs/run_report.h"
#include "obs/slo.h"
#include "serve/server.h"
#include "serve/workload.h"

namespace {

struct Options {
  unsigned scale = 14;
  unsigned edge_factor = 16;
  unsigned rounds = 12;
  std::size_t batch_edges = 0;  ///< 0 = 0.5% of the undirected edge count
  std::size_t queries = 256;
  double zipf = 1.0;
  std::size_t candidates = 32;
  unsigned updates = 16;  ///< update batches interleaved with the reads
  unsigned gcds = 1;
  std::uint64_t seed = 1;
  double check = 0.0;  ///< required repair/recompute speedup; 0 = report only
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto num = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      return nullptr;
    };
    const char* v;
    if ((v = num("--scale"))) o.scale = std::atoi(v);
    else if ((v = num("--edge-factor"))) o.edge_factor = std::atoi(v);
    else if ((v = num("--rounds"))) o.rounds = std::atoi(v);
    else if ((v = num("--batch-edges"))) o.batch_edges = std::atoll(v);
    else if ((v = num("--queries"))) o.queries = std::atoll(v);
    else if ((v = num("--zipf"))) o.zipf = std::atof(v);
    else if ((v = num("--candidates"))) o.candidates = std::atoll(v);
    else if ((v = num("--updates"))) o.updates = std::atoi(v);
    else if ((v = num("--gcds"))) o.gcds = std::atoi(v);
    else if ((v = num("--seed"))) o.seed = std::atoll(v);
    else if ((v = num("--check"))) o.check = std::atof(v);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return o;
}

/// A random mixed batch against the store's current snapshot: existing
/// picks become deletes, absent pairs become inserts.
xbfs::dyn::EdgeBatch random_batch(const xbfs::dyn::GraphStore& store,
                                  std::size_t edges, std::mt19937_64& rng) {
  using xbfs::graph::vid_t;
  const xbfs::dyn::Snapshot snap = store.snapshot();
  const vid_t n = snap.graph->num_vertices();
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  xbfs::dyn::EdgeBatch b;
  while (b.size() < edges) {
    const vid_t u = pick(rng);
    if (rng() & 1) {
      // Delete a random incident edge when the vertex has one.
      const vid_t deg = snap.graph->degree(u);
      if (deg == 0) continue;
      vid_t target = static_cast<vid_t>(rng() % deg);
      vid_t chosen = u;
      snap.graph->for_each_neighbor(u, [&](vid_t w) {
        if (target-- == 0) chosen = w;
      });
      if (chosen != u) b.erase(u, chosen);
    } else {
      const vid_t v = pick(rng);
      if (u != v && !snap.graph->has_edge(u, v)) b.insert(u, v);
    }
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xbfs;
  const Options opt = parse(argc, argv);

  graph::RmatParams rp;
  rp.scale = opt.scale;
  rp.edge_factor = opt.edge_factor;
  rp.seed = opt.seed;
  const graph::Csr g = graph::rmat_csr(rp);
  const std::size_t und_edges = g.num_edges() / 2;
  const std::size_t batch_edges =
      opt.batch_edges > 0 ? opt.batch_edges
                          : std::max<std::size_t>(4, und_edges / 200);
  std::printf("bench_dynamic: RMAT scale=%u ef=%u (n=%llu, |E|=%zu undirected), "
              "%u rounds x %zu-edge batches (%.2f%% of |E|)\n",
              opt.scale, opt.edge_factor,
              static_cast<unsigned long long>(g.num_vertices()), und_edges,
              opt.rounds, batch_edges, 100.0 * batch_edges / und_edges);

  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant.empty() ? 0 : giant[giant.size() / 2];
  std::mt19937_64 rng(opt.seed * 7919 + 1);

  obs::ReportSession& report = obs::ReportSession::global();
  if (report.enabled()) {
    report.set_context("bench", "dynamic");
    report.set_context("scale", std::to_string(opt.scale));
  }

  // Surface an error-budget readout for the churn phase even when XBFS_SLO
  // didn't configure one (availability-only: epoch churn must not burn).
  if (!obs::SloEngine::global().enabled()) {
    obs::SloEngine::global().configure("availability=0.99");
  }

  // --- phase 1: repair vs recompute on identical snapshots ------------------
  dyn::GraphStore store(g);
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  core::XbfsConfig xcfg;
  xcfg.report_runs = false;
  dyn::IncrementalBfs eng(dev, store, xcfg);
  (void)eng.run(src);  // warm the per-source history (counts as a recompute)

  double repair_ms_sum = 0.0, recompute_ms_sum = 0.0;
  std::uint64_t repaired_rounds = 0, fallback_rounds = 0;
  for (unsigned r = 0; r < opt.rounds; ++r) {
    (void)store.apply(random_batch(store, batch_edges, rng));

    const dyn::DynEngineStats before = eng.stats();
    const core::BfsResult rep = eng.run(src);
    const dyn::DynEngineStats mid = eng.stats();

    const dyn::Snapshot snap = store.snapshot();
    if (rep.levels != dyn::reference_bfs(*snap.graph, src)) {
      std::fprintf(stderr, "round %u: repaired levels diverge from reference\n",
                   r);
      return 1;
    }
    if (mid.repairs == before.repairs) {
      ++fallback_rounds;  // ratio/log fallback: recompute served the query
      continue;
    }

    eng.clear_history();  // force the recompute leg on the same snapshot
    (void)eng.run(src);
    const dyn::DynEngineStats after = eng.stats();
    repair_ms_sum += mid.repair_ms - before.repair_ms;
    recompute_ms_sum += after.recompute_ms - mid.recompute_ms;
    ++repaired_rounds;
  }

  const dyn::DynEngineStats es = eng.stats();
  const double speedup =
      repair_ms_sum > 0.0 && repaired_rounds > 0
          ? recompute_ms_sum / repair_ms_sum
          : 0.0;
  std::printf("repair: %llu repaired rounds (%llu fell back), mean dirty "
              "%.1f, mean seeds %.1f\n",
              static_cast<unsigned long long>(repaired_rounds),
              static_cast<unsigned long long>(fallback_rounds),
              es.repairs ? static_cast<double>(es.dirty_vertices) / es.repairs
                         : 0.0,
              es.repairs ? static_cast<double>(es.repair_seeds) / es.repairs
                         : 0.0);
  std::printf("        modelled ms: repair %.3f vs recompute %.3f -> %.2fx "
              "speedup\n",
              repaired_rounds ? repair_ms_sum / repaired_rounds : 0.0,
              repaired_rounds ? recompute_ms_sum / repaired_rounds : 0.0,
              speedup);

  // --- phase 2: Zipf reads against a serving lane under epoch churn ---------
  dyn::GraphStore serve_store(g);
  serve::ServeConfig scfg;
  scfg.num_gcds = opt.gcds;
  scfg.batch_window_ms = 0.5;
  scfg.slo_scope = "serve-dynamic";
  scfg.xbfs.report_runs = false;
  serve::Server server(serve_store, scfg);

  std::vector<graph::vid_t> candidates;
  const std::size_t ncand = std::min(opt.candidates, giant.size());
  for (std::size_t i = 0; i < ncand; ++i) {
    candidates.push_back(giant[(i * giant.size()) / ncand]);
  }
  const auto sources =
      serve::zipf_sources(candidates, opt.queries, opt.zipf, opt.seed);
  const std::size_t update_stride =
      opt.updates > 0 ? std::max<std::size_t>(1, sources.size() / opt.updates)
                      : sources.size() + 1;

  std::vector<std::future<serve::QueryResult>> futs;
  futs.reserve(sources.size());
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i > 0 && i % update_stride == 0) {
      const serve::UpdateAdmission ua =
          server.submit_update(random_batch(serve_store, batch_edges, rng));
      if (!ua.accepted) {
        std::fprintf(stderr, "update rejected: %s\n",
                     ua.status.to_string().c_str());
        return 1;
      }
    }
    serve::Admission a = server.submit(sources[i]);
    if (!a.accepted) {
      ++rejected;
      continue;
    }
    futs.push_back(std::move(a.result));
  }
  server.drain();
  std::size_t completed = 0;
  // Exemplar under churn: the first completed query whose trace crossed an
  // epoch bump on the read lane (repair or recompute event with the write
  // lane's epoch/dirty footprint) goes into the run record verbatim.
  std::string repair_trace;
  for (auto& f : futs) {
    const serve::QueryResult r = f.get();
    if (r.status == serve::QueryStatus::Completed) ++completed;
    if (repair_trace.empty() && r.status == serve::QueryStatus::Completed &&
        r.trace != nullptr &&
        (r.trace->find_event("repair") >= 0 ||
         r.trace->find_event("recompute") >= 0)) {
      repair_trace = r.trace->to_json("completed");
    }
  }
  server.shutdown();  // emits the serving summary into XBFS_RUN_REPORT
  const serve::ServerStats st = server.stats();

  std::printf("serve:  %zu/%zu completed (%zu rejected) across %llu epochs\n",
              completed, sources.size(), rejected,
              static_cast<unsigned long long>(st.graph_epoch));
  std::printf("        cache hit rate %.1f%% under churn  (bumps %llu, "
              "purged %llu, stale avoided %llu)\n",
              st.cache_hit_rate * 100.0,
              static_cast<unsigned long long>(st.cache_epoch_bumps),
              static_cast<unsigned long long>(st.cache_purged_stale),
              static_cast<unsigned long long>(st.cache_stale_hits_avoided));
  std::printf("        repairs %llu  recomputes %llu  fallbacks %llu  "
              "compactions %llu\n",
              static_cast<unsigned long long>(st.repairs),
              static_cast<unsigned long long>(st.recomputes),
              static_cast<unsigned long long>(st.repair_fallbacks),
              static_cast<unsigned long long>(st.compactions));

  if (report.enabled()) {
    obs::RunRecord rec;
    rec.tool = "bench_dynamic";
    rec.algorithm = "bfs-dynamic-repair";
    rec.n = g.num_vertices();
    rec.m = g.num_edges();
    rec.total_ms = repair_ms_sum + recompute_ms_sum;
    char buf[32];
    auto f = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      return std::string(buf);
    };
    rec.config = {
        {"rounds", std::to_string(opt.rounds)},
        {"batch_edges", std::to_string(batch_edges)},
        {"batch_edge_pct", f(100.0 * batch_edges / und_edges)},
        {"repaired_rounds", std::to_string(repaired_rounds)},
        {"fallback_rounds", std::to_string(fallback_rounds)},
        {"repair_ms", f(repair_ms_sum)},
        {"recompute_ms", f(recompute_ms_sum)},
        {"repair_speedup", f(speedup)},
        {"queries", std::to_string(sources.size())},
        {"completed", std::to_string(completed)},
        {"updates_applied", std::to_string(st.updates_applied)},
        {"graph_epoch", std::to_string(st.graph_epoch)},
        {"churn_hit_rate", f(st.cache_hit_rate)},
        {"cache_epoch_bumps", std::to_string(st.cache_epoch_bumps)},
        {"cache_purged_stale", std::to_string(st.cache_purged_stale)},
        {"repairs", std::to_string(st.repairs)},
        {"recomputes", std::to_string(st.recomputes)},
        {"repair_fallbacks", std::to_string(st.repair_fallbacks)},
        {"traced_queries", std::to_string(st.traced_queries)},
        // One churn-crossing query's trace ("xbfs-query-trace" JSON, the
        // read lane observing the write lane's epoch); escaped, so it
        // round-trips through json.loads.
        {"repair_trace", repair_trace},
    };
    if (st.slo.active) {
      rec.config.emplace_back("slo_bad", std::to_string(st.slo.total_bad));
      rec.config.emplace_back("slo_burn", f(st.slo.window.burn_rate));
      rec.config.emplace_back("slo_budget", f(st.slo.budget_remaining));
    }
    report.add(std::move(rec));
  }

  // --- gates ----------------------------------------------------------------
  if (completed == 0 || completed + rejected != sources.size()) {
    std::fprintf(stderr, "serving lost queries: %zu completed + %zu rejected "
                 "!= %zu submitted\n",
                 completed, rejected, sources.size());
    return 1;
  }
  if (opt.check > 0.0) {
    if (repaired_rounds == 0) {
      std::fprintf(stderr, "no round was served by incremental repair\n");
      return 1;
    }
    if (speedup < opt.check) {
      std::fprintf(stderr, "repair speedup %.2fx below required %.2fx\n",
                   speedup, opt.check);
      return 1;
    }
  }

  // Under XBFS_SANITIZE the bench doubles as a SimSan gate for the dynamic
  // kernels: all traffic above went through checked accessors.
  auto& san = sim::Sanitizer::global();
  if (san.enabled()) {
    san.summary(std::cout);
    if (san.unannotated_count() > 0) {
      std::printf("bench_dynamic: FAIL — %llu unannotated sanitizer "
                  "finding(s)\n",
                  static_cast<unsigned long long>(san.unannotated_count()));
      return 1;
    }
    std::printf("bench_dynamic: sanitizer clean (%llu allowlisted)\n",
                static_cast<unsigned long long>(san.allowlisted_count()));
  }
  return 0;
}
