// Serving-engine load harness: Zipf-skewed query traffic against one graph,
// comparing the batched+cached serving engine to the naive baseline (one
// single-source Xbfs::run per query, no sharing, no cache).
//
// The serving claim quantified here: on skewed traffic, 64-way bit-parallel
// batching plus a small result cache multiplies query throughput — the
// server's summary record (QPS, p50/p95/p99 latency, batch occupancy, cache
// hit rate) lands in XBFS_RUN_REPORT alongside this bench's comparison
// record.
//
//   bench_serving [--scale=18] [--edge-factor=16] [--queries=512]
//                 [--zipf=1.0] [--candidates=64] [--clients=8] [--gcds=1]
//                 [--min-sweep=N] [--naive-queries=N] [--open-qps=Q]
//                 [--timeout-ms=T] [--seed=1] [--check=MIN_SPEEDUP]
//                 [--chaos] [--fault-kernel=R] [--fault-memcpy=R]
//                 [--fault-stall=R] [--fault-seed=S] [--chaos-check=MAX_RATIO]
//
// --open-qps switches the serving phase from the closed-loop driver to
// open-loop paced arrivals.  --naive-queries subsamples the (slow) naive
// baseline; QPS is a rate, so the comparison stays apples-to-apples.
// --check exits non-zero unless served/naive speedup reaches the bound.
//
// --chaos reruns the same load against a second server with the fault
// injector on (defaults: 5% kernel faults, 2% memcpy corruption).  The run
// fails if any admitted query resolves Failed, and --chaos-check bounds the
// p99 latency inflation (chaos p99 / fault-free p99).
//
// The phases record into separate SLO scopes ("serve-clean" vs
// "serve-chaos"; obs::SloEngine, activated here with an availability
// objective when XBFS_SLO didn't set one), so the chaos record can show
// zero error-budget burn fault-free next to non-zero burn under injection.
// --chaos additionally runs an *escalation probe*: a deliberately brittle
// server (no host fallback, thin retry budget, raised fault rate, breakers
// effectively disabled) whose queries exhaust the resilience ladder — the
// resulting Failed query's full trace, and a degraded exemplar from the
// resilient chaos server, are embedded in the chaos run record
// (failed_trace / degraded_trace, "xbfs-query-trace" JSON).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/fault.h"
#include "obs/flight_recorder.h"
#include "obs/query_trace.h"
#include "obs/run_report.h"
#include "obs/slo.h"
#include "serve/server.h"
#include "serve/workload.h"

namespace {

struct Options {
  unsigned scale = 18;
  unsigned edge_factor = 16;
  std::size_t queries = 512;
  double zipf = 1.0;
  std::size_t candidates = 64;
  unsigned clients = 8;
  unsigned gcds = 1;
  unsigned min_sweep = 0;  ///< 0 = server default
  std::size_t naive_queries = 0;  ///< 0 = same as queries
  double open_qps = 0.0;          ///< > 0 switches to open-loop arrivals
  double timeout_ms = 0.0;
  std::uint64_t seed = 1;
  double check = 0.0;  ///< required served/naive speedup; 0 = report only

  bool chaos = false;  ///< rerun the load with fault injection on
  double fault_kernel = 0.05;
  double fault_memcpy = 0.02;
  double fault_stall = 0.0;
  std::uint64_t fault_seed = 42;
  double chaos_check = 0.0;  ///< max chaos/clean p99 ratio; 0 = report only
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto num = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      return nullptr;
    };
    const char* v;
    if ((v = num("--scale"))) o.scale = std::atoi(v);
    else if ((v = num("--edge-factor"))) o.edge_factor = std::atoi(v);
    else if ((v = num("--queries"))) o.queries = std::atoll(v);
    else if ((v = num("--zipf"))) o.zipf = std::atof(v);
    else if ((v = num("--candidates"))) o.candidates = std::atoll(v);
    else if ((v = num("--clients"))) o.clients = std::atoi(v);
    else if ((v = num("--gcds"))) o.gcds = std::atoi(v);
    else if ((v = num("--min-sweep"))) o.min_sweep = std::atoi(v);
    else if ((v = num("--naive-queries"))) o.naive_queries = std::atoll(v);
    else if ((v = num("--open-qps"))) o.open_qps = std::atof(v);
    else if ((v = num("--timeout-ms"))) o.timeout_ms = std::atof(v);
    else if ((v = num("--seed"))) o.seed = std::atoll(v);
    else if ((v = num("--check"))) o.check = std::atof(v);
    else if (std::strcmp(argv[i], "--chaos") == 0) o.chaos = true;
    else if ((v = num("--fault-kernel"))) o.fault_kernel = std::atof(v);
    else if ((v = num("--fault-memcpy"))) o.fault_memcpy = std::atof(v);
    else if ((v = num("--fault-stall"))) o.fault_stall = std::atof(v);
    else if ((v = num("--fault-seed"))) o.fault_seed = std::atoll(v);
    else if ((v = num("--chaos-check"))) o.chaos_check = std::atof(v);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (o.naive_queries == 0) o.naive_queries = o.queries;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xbfs;
  const Options opt = parse(argc, argv);

  // The bench owns the fault injector: the naive baseline and the clean
  // serving phase have no retry layer / must stay fault-free for an honest
  // p99 baseline, so ambient XBFS_FAULTS is cleared here and chaos is
  // opted into with --chaos.
  sim::FaultInjector::global().disable();

  // Always produce an error-budget comparison: activate the SLO engine
  // with an availability-only objective when XBFS_SLO didn't configure one.
  if (!obs::SloEngine::global().enabled()) {
    obs::SloEngine::global().configure("availability=0.99");
  }
  // Arm the flight recorder (and its signal flush) before the naive phase,
  // so a kill during any phase still leaves a post-mortem behind.
  (void)obs::FlightRecorder::global().enabled();

  std::printf("bench_serving: RMAT scale=%u ef=%u, %zu queries, Zipf(%.2f) "
              "over %zu sources, %u clients, %u GCD(s)\n",
              opt.scale, opt.edge_factor, opt.queries, opt.zipf,
              opt.candidates, opt.clients, opt.gcds);

  graph::RmatParams rp;
  rp.scale = opt.scale;
  rp.edge_factor = opt.edge_factor;
  rp.seed = opt.seed;
  const graph::Csr g = graph::rmat_csr(rp);
  const auto giant = graph::largest_component_vertices(g);
  std::printf("graph: n=%llu m=%llu giant=%zu\n",
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()), giant.size());

  std::vector<graph::vid_t> candidates;
  const std::size_t ncand = std::min(opt.candidates, giant.size());
  for (std::size_t i = 0; i < ncand; ++i) {
    candidates.push_back(giant[(i * giant.size()) / ncand]);
  }
  const auto sources =
      serve::zipf_sources(candidates, opt.queries, opt.zipf, opt.seed);

  obs::ReportSession& report = obs::ReportSession::global();
  if (report.enabled()) {
    report.set_context("bench", "serving");
    report.set_context("scale", std::to_string(opt.scale));
    report.set_context("zipf", std::to_string(opt.zipf));
  }

  // --- naive baseline: one single-source traversal per query ---------------
  const std::size_t naive_n = std::min(opt.naive_queries, sources.size());
  double naive_qps = 0.0, naive_wall_ms = 0.0;
  {
    sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                    sim::SimOptions{.num_workers = 1, .profiling = false});
    dev.warmup();
    auto dg = graph::DeviceCsr::upload(dev, g);
    core::XbfsConfig xcfg;
    xcfg.report_runs = false;  // 512 per-query records would bury the summary
    core::Xbfs xbfs(dev, dg, xcfg);

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < naive_n; ++i) {
      const core::BfsResult r = xbfs.run(sources[i]);
      if (r.levels[sources[i]] != 0) {
        std::fprintf(stderr, "naive run produced bad levels\n");
        return 1;
      }
    }
    naive_wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    naive_qps = naive_n / (naive_wall_ms / 1000.0);
  }
  std::printf("naive:  %zu queries in %.1f ms -> %.1f QPS\n", naive_n,
              naive_wall_ms, naive_qps);

  // --- batched + cached serving engine --------------------------------------
  serve::ServeConfig scfg;
  scfg.num_gcds = opt.gcds;
  scfg.batch_window_ms = 0.5;
  scfg.slo_scope = "serve-clean";
  if (opt.min_sweep > 0) scfg.min_sweep_sources = opt.min_sweep;
  if (opt.timeout_ms > 0.0) scfg.default_timeout_ms = opt.timeout_ms;
  serve::Server server(g, scfg);

  serve::LoadOptions lopt;
  lopt.clients = opt.clients;
  lopt.arrival_qps = opt.open_qps;
  const serve::LoadReport lrep =
      opt.open_qps > 0.0 ? serve::run_open_loop(server, sources, lopt)
                         : serve::run_closed_loop(server, sources, lopt);

  // Spot-check served correctness against the host reference.
  {
    serve::Admission probe = server.submit(sources[0]);
    if (!probe.accepted) return 1;
    const serve::QueryResult r = probe.result.get();
    if (r.status != serve::QueryStatus::Completed ||
        *r.levels != graph::reference_bfs(g, sources[0])) {
      std::fprintf(stderr, "served levels diverge from reference\n");
      return 1;
    }
  }

  server.shutdown();  // emits the serving summary into XBFS_RUN_REPORT
  const serve::ServerStats st = server.stats();

  const double speedup = naive_qps > 0.0 ? lrep.qps / naive_qps : 0.0;
  std::printf("served: %llu completed (%llu expired, %llu rejected) in "
              "%.1f ms -> %.1f QPS  [%.2fx naive]\n",
              static_cast<unsigned long long>(lrep.completed),
              static_cast<unsigned long long>(lrep.expired),
              static_cast<unsigned long long>(lrep.rejected), lrep.wall_ms,
              lrep.qps, speedup);
  std::printf("        cache hit rate %.1f%%  batch occupancy %.2f  "
              "sweeps %llu (singleton %llu)  computed %llu/%llu\n",
              st.cache_hit_rate * 100.0, st.mean_batch_occupancy,
              static_cast<unsigned long long>(st.sweeps),
              static_cast<unsigned long long>(st.singleton_sweeps),
              static_cast<unsigned long long>(st.computed_sources),
              static_cast<unsigned long long>(st.completed));
  std::printf("        latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f  "
              "max %.3f  (queue p50 %.3f p99 %.3f)\n",
              st.latency_p50_ms, st.latency_p95_ms, st.latency_p99_ms,
              st.latency_mean_ms, st.latency_max_ms, st.queue_p50_ms,
              st.queue_p99_ms);

  // --- chaos phase: the same load with the fault injector on ----------------
  serve::LoadReport crep;
  serve::ServerStats cst;
  double p99_ratio = 0.0;
  std::uint64_t injected = 0;
  std::string degraded_trace;  ///< a retried/degraded Completed query's trace
  std::string failed_trace;    ///< an escalation-probe Failed query's trace
  std::uint64_t probe_submitted = 0, probe_failed = 0;
  if (opt.chaos) {
    sim::FaultConfig fc;
    fc.kernel_fault_rate = opt.fault_kernel;
    fc.memcpy_corruption_rate = opt.fault_memcpy;
    fc.worker_stall_rate = opt.fault_stall;
    fc.seed = opt.fault_seed;
    sim::FaultInjector::global().configure(fc);
    std::printf("chaos:  kernel=%.3f memcpy=%.3f stall=%.3f seed=%llu\n",
                fc.kernel_fault_rate, fc.memcpy_corruption_rate,
                fc.worker_stall_rate,
                static_cast<unsigned long long>(fc.seed));

    serve::ServeConfig ccfg = scfg;
    ccfg.slo_scope = "serve-chaos";
    serve::Server chaos_server(g, ccfg);
    crep = opt.open_qps > 0.0
               ? serve::run_open_loop(chaos_server, sources, lopt)
               : serve::run_closed_loop(chaos_server, sources, lopt);

    // Under faults the served levels must still match the host reference.
    {
      serve::Admission probe = chaos_server.submit(sources[0]);
      if (!probe.accepted) return 1;
      const serve::QueryResult r = probe.result.get();
      if (r.status != serve::QueryStatus::Completed ||
          *r.levels != graph::reference_bfs(g, sources[0])) {
        std::fprintf(stderr, "chaos levels diverge from reference\n");
        return 1;
      }
    }

    // Degraded exemplar: keep submitting cache-bypassing singletons until
    // one survives a fault (retried or rung-degraded) — its trace shows
    // admission -> fault -> retry -> validated with per-rung attribution.
    // Prefer one that actually ran on a device (non-zero launch counters)
    // over a pure host fallback.
    bool degraded_on_device = false;
    for (unsigned i = 0; i < 64 && !degraded_on_device; ++i) {
      serve::QueryOptions qo;
      qo.bypass_cache = true;
      serve::Admission a =
          chaos_server.submit(sources[i % sources.size()], qo);
      if (!a.accepted) continue;
      const serve::QueryResult r = a.result.get();
      if (r.status == serve::QueryStatus::Completed && r.degraded &&
          r.trace != nullptr) {
        for (const obs::RungAttribution& ra : r.trace->rungs()) {
          if (ra.launches > 0) degraded_on_device = true;
        }
        if (degraded_on_device || degraded_trace.empty()) {
          degraded_trace = r.trace->to_json("completed");
        }
      }
    }

    chaos_server.shutdown();
    cst = chaos_server.stats();

    // Escalation probe: a brittle server (no host fallback, two attempts,
    // no cache, breakers held closed) under a raised fault rate, so the
    // retry budget genuinely exhausts and a query resolves Failed with its
    // full rung history on record.
    {
      sim::FaultConfig pfc = fc;
      pfc.kernel_fault_rate = std::max(opt.fault_kernel, 0.3);
      sim::FaultInjector::global().configure(pfc);

      serve::ServeConfig pcfg = scfg;
      pcfg.slo_scope = "serve-chaos";
      pcfg.host_fallback = false;
      pcfg.max_attempts = 2;
      pcfg.cache_capacity = 0;
      pcfg.breaker_failure_threshold = 1000;
      pcfg.retry_backoff_ms = 0.0;
      serve::Server probe_server(g, pcfg);
      for (unsigned i = 0; i < 64 && failed_trace.empty(); ++i) {
        serve::Admission a = probe_server.submit(sources[i % sources.size()]);
        if (!a.accepted) continue;
        ++probe_submitted;
        const serve::QueryResult r = a.result.get();
        if (r.status == serve::QueryStatus::Failed) {
          ++probe_failed;
          if (r.trace != nullptr) failed_trace = r.trace->to_json("failed");
        }
      }
      probe_server.shutdown();
      sim::FaultInjector::global().configure(fc);
    }

    injected = sim::FaultInjector::global().total_injected();
    sim::FaultInjector::global().disable();

    p99_ratio = st.latency_p99_ms > 0.0 ? cst.latency_p99_ms / st.latency_p99_ms
                                        : 0.0;
    std::printf("chaos:  %llu completed (%llu expired, %llu rejected, %llu "
                "failed) in %.1f ms -> %.1f QPS\n",
                static_cast<unsigned long long>(crep.completed),
                static_cast<unsigned long long>(crep.expired),
                static_cast<unsigned long long>(crep.rejected),
                static_cast<unsigned long long>(cst.failed), crep.wall_ms,
                crep.qps);
    std::printf("        injected %llu  seen %llu  retries %llu  validation "
                "fail/pass %llu/%llu\n",
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(cst.faults_seen),
                static_cast<unsigned long long>(cst.retries),
                static_cast<unsigned long long>(cst.validation_failures),
                static_cast<unsigned long long>(cst.validated_results));
    std::printf("        degraded %llu  host fallbacks %llu  rerouted %llu  "
                "timeouts %llu  breaker open/half/close %llu/%llu/%llu\n",
                static_cast<unsigned long long>(cst.degraded_queries),
                static_cast<unsigned long long>(cst.host_fallbacks),
                static_cast<unsigned long long>(cst.rerouted),
                static_cast<unsigned long long>(cst.dispatch_timeouts),
                static_cast<unsigned long long>(cst.breaker_opens),
                static_cast<unsigned long long>(cst.breaker_half_opens),
                static_cast<unsigned long long>(cst.breaker_closes));
    std::printf("        latency p99 %.3f ms vs clean %.3f ms -> %.2fx\n",
                cst.latency_p99_ms, st.latency_p99_ms, p99_ratio);
    std::printf("        probe: %llu submitted, %llu failed; exemplars "
                "degraded=%s failed=%s\n",
                static_cast<unsigned long long>(probe_submitted),
                static_cast<unsigned long long>(probe_failed),
                degraded_trace.empty() ? "missing" : "captured",
                failed_trace.empty() ? "missing" : "captured");
  }

  // Error-budget comparison across the two SLO scopes: the fault-free
  // phase must show zero burn, the chaos phase non-zero burn.
  obs::SloSnapshot slo_clean, slo_chaos;
  {
    const double now = obs::slo_now_ms();
    if (auto* s = obs::SloEngine::global().find("serve-clean")) {
      slo_clean = s->snapshot(now);
    }
    if (auto* s = obs::SloEngine::global().find("serve-chaos")) {
      slo_chaos = s->snapshot(now);
    }
    if (slo_clean.active) {
      std::printf("slo:    clean  good=%llu bad=%llu slow=%llu burn=%.3f "
                  "budget=%.3f\n",
                  static_cast<unsigned long long>(slo_clean.total_good),
                  static_cast<unsigned long long>(slo_clean.total_bad),
                  static_cast<unsigned long long>(slo_clean.total_slow),
                  slo_clean.window.burn_rate, slo_clean.budget_remaining);
    }
    if (slo_chaos.active) {
      std::printf("slo:    chaos  good=%llu bad=%llu slow=%llu burn=%.3f "
                  "budget=%.3f\n",
                  static_cast<unsigned long long>(slo_chaos.total_good),
                  static_cast<unsigned long long>(slo_chaos.total_bad),
                  static_cast<unsigned long long>(slo_chaos.total_slow),
                  slo_chaos.window.burn_rate, slo_chaos.budget_remaining);
    }
  }

  if (report.enabled()) {
    obs::RunRecord rec;
    rec.tool = "bench_serving";
    rec.algorithm = "bfs-serving-comparison";
    rec.n = g.num_vertices();
    rec.m = g.num_edges();
    rec.total_ms = lrep.wall_ms;
    char buf[32];
    auto f = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      return std::string(buf);
    };
    rec.config = {
        {"queries", std::to_string(opt.queries)},
        {"clients", std::to_string(opt.clients)},
        {"gcds", std::to_string(opt.gcds)},
        {"loop", opt.open_qps > 0.0 ? "open" : "closed"},
        {"naive_queries", std::to_string(naive_n)},
        {"naive_qps", f(naive_qps)},
        {"served_qps", f(lrep.qps)},
        {"speedup", f(speedup)},
    };
    report.add(std::move(rec));
  }
  if (report.enabled() && opt.chaos) {
    obs::RunRecord rec;
    rec.tool = "bench_serving-chaos";
    rec.algorithm = "bfs-serving-chaos";
    rec.n = g.num_vertices();
    rec.m = g.num_edges();
    rec.total_ms = crep.wall_ms;
    char buf[32];
    auto f = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      return std::string(buf);
    };
    rec.config = {
        {"queries", std::to_string(opt.queries)},
        {"fault_kernel", f(opt.fault_kernel)},
        {"fault_memcpy", f(opt.fault_memcpy)},
        {"fault_stall", f(opt.fault_stall)},
        {"fault_seed", std::to_string(opt.fault_seed)},
        {"injected", std::to_string(injected)},
        {"completed", std::to_string(cst.completed)},
        {"failed", std::to_string(cst.failed)},
        {"faults_seen", std::to_string(cst.faults_seen)},
        {"retries", std::to_string(cst.retries)},
        {"validation_failures", std::to_string(cst.validation_failures)},
        {"validated_results", std::to_string(cst.validated_results)},
        {"degraded_queries", std::to_string(cst.degraded_queries)},
        {"host_fallbacks", std::to_string(cst.host_fallbacks)},
        {"breaker_opens", std::to_string(cst.breaker_opens)},
        {"p99_clean_ms", f(st.latency_p99_ms)},
        {"p99_chaos_ms", f(cst.latency_p99_ms)},
        {"p99_ratio", f(p99_ratio)},
        {"probe_submitted", std::to_string(probe_submitted)},
        {"probe_failed", std::to_string(probe_failed)},
        // Exemplar per-query traces ("xbfs-query-trace" JSON); RunRecord
        // values are escaped, so these round-trip through json.loads.
        {"degraded_trace", degraded_trace},
        {"failed_trace", failed_trace},
        {"slo_clean_bad", std::to_string(slo_clean.total_bad)},
        {"slo_clean_burn", f(slo_clean.window.burn_rate)},
        {"slo_clean_budget", f(slo_clean.budget_remaining)},
        {"slo_chaos_bad", std::to_string(slo_chaos.total_bad)},
        {"slo_chaos_burn", f(slo_chaos.window.burn_rate)},
        {"slo_chaos_budget", f(slo_chaos.budget_remaining)},
    };
    report.add(std::move(rec));
  }

  if (lrep.completed + lrep.expired + lrep.rejected != opt.queries) {
    std::fprintf(stderr, "lost queries: %llu+%llu+%llu != %zu\n",
                 static_cast<unsigned long long>(lrep.completed),
                 static_cast<unsigned long long>(lrep.expired),
                 static_cast<unsigned long long>(lrep.rejected), opt.queries);
    return 1;
  }
  if (opt.check > 0.0 && speedup < opt.check) {
    std::fprintf(stderr, "speedup %.2fx below required %.2fx\n", speedup,
                 opt.check);
    return 1;
  }
  if (opt.chaos) {
    if (crep.completed + crep.expired + crep.rejected != opt.queries) {
      std::fprintf(stderr, "chaos lost queries: %llu+%llu+%llu != %zu\n",
                   static_cast<unsigned long long>(crep.completed),
                   static_cast<unsigned long long>(crep.expired),
                   static_cast<unsigned long long>(crep.rejected),
                   opt.queries);
      return 1;
    }
    if (cst.failed != 0) {
      std::fprintf(stderr, "chaos: %llu queries resolved Failed\n",
                   static_cast<unsigned long long>(cst.failed));
      return 1;
    }
    if (opt.chaos_check > 0.0 && p99_ratio > opt.chaos_check) {
      std::fprintf(stderr, "chaos p99 inflation %.2fx above allowed %.2fx\n",
                   p99_ratio, opt.chaos_check);
      return 1;
    }
    // The exemplar hunt is deterministic given --fault-seed; an empty
    // exemplar means the tracing or ladder plumbing regressed.
    if (degraded_trace.empty() || failed_trace.empty()) {
      std::fprintf(stderr, "chaos: missing %s exemplar trace\n",
                   degraded_trace.empty() ? "degraded" : "failed");
      return 1;
    }
  }
  return 0;
}
