// Serving-engine load harness: Zipf-skewed query traffic against one graph,
// comparing the batched+cached serving engine to the naive baseline (one
// single-source Xbfs::run per query, no sharing, no cache).
//
// The serving claim quantified here: on skewed traffic, 64-way bit-parallel
// batching plus a small result cache multiplies query throughput — the
// server's summary record (QPS, p50/p95/p99 latency, batch occupancy, cache
// hit rate) lands in XBFS_RUN_REPORT alongside this bench's comparison
// record.
//
//   bench_serving [--scale=18] [--edge-factor=16] [--queries=512]
//                 [--zipf=1.0] [--candidates=64] [--clients=8] [--gcds=1]
//                 [--min-sweep=N] [--naive-queries=N] [--open-qps=Q]
//                 [--timeout-ms=T] [--seed=1] [--check=MIN_SPEEDUP]
//
// --open-qps switches the serving phase from the closed-loop driver to
// open-loop paced arrivals.  --naive-queries subsamples the (slow) naive
// baseline; QPS is a rate, so the comparison stays apples-to-apples.
// --check exits non-zero unless served/naive speedup reaches the bound.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "obs/run_report.h"
#include "serve/server.h"
#include "serve/workload.h"

namespace {

struct Options {
  unsigned scale = 18;
  unsigned edge_factor = 16;
  std::size_t queries = 512;
  double zipf = 1.0;
  std::size_t candidates = 64;
  unsigned clients = 8;
  unsigned gcds = 1;
  unsigned min_sweep = 0;  ///< 0 = server default
  std::size_t naive_queries = 0;  ///< 0 = same as queries
  double open_qps = 0.0;          ///< > 0 switches to open-loop arrivals
  double timeout_ms = 0.0;
  std::uint64_t seed = 1;
  double check = 0.0;  ///< required served/naive speedup; 0 = report only
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto num = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      return nullptr;
    };
    const char* v;
    if ((v = num("--scale"))) o.scale = std::atoi(v);
    else if ((v = num("--edge-factor"))) o.edge_factor = std::atoi(v);
    else if ((v = num("--queries"))) o.queries = std::atoll(v);
    else if ((v = num("--zipf"))) o.zipf = std::atof(v);
    else if ((v = num("--candidates"))) o.candidates = std::atoll(v);
    else if ((v = num("--clients"))) o.clients = std::atoi(v);
    else if ((v = num("--gcds"))) o.gcds = std::atoi(v);
    else if ((v = num("--min-sweep"))) o.min_sweep = std::atoi(v);
    else if ((v = num("--naive-queries"))) o.naive_queries = std::atoll(v);
    else if ((v = num("--open-qps"))) o.open_qps = std::atof(v);
    else if ((v = num("--timeout-ms"))) o.timeout_ms = std::atof(v);
    else if ((v = num("--seed"))) o.seed = std::atoll(v);
    else if ((v = num("--check"))) o.check = std::atof(v);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (o.naive_queries == 0) o.naive_queries = o.queries;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xbfs;
  const Options opt = parse(argc, argv);

  std::printf("bench_serving: RMAT scale=%u ef=%u, %zu queries, Zipf(%.2f) "
              "over %zu sources, %u clients, %u GCD(s)\n",
              opt.scale, opt.edge_factor, opt.queries, opt.zipf,
              opt.candidates, opt.clients, opt.gcds);

  graph::RmatParams rp;
  rp.scale = opt.scale;
  rp.edge_factor = opt.edge_factor;
  rp.seed = opt.seed;
  const graph::Csr g = graph::rmat_csr(rp);
  const auto giant = graph::largest_component_vertices(g);
  std::printf("graph: n=%llu m=%llu giant=%zu\n",
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()), giant.size());

  std::vector<graph::vid_t> candidates;
  const std::size_t ncand = std::min(opt.candidates, giant.size());
  for (std::size_t i = 0; i < ncand; ++i) {
    candidates.push_back(giant[(i * giant.size()) / ncand]);
  }
  const auto sources =
      serve::zipf_sources(candidates, opt.queries, opt.zipf, opt.seed);

  obs::ReportSession& report = obs::ReportSession::global();
  if (report.enabled()) {
    report.set_context("bench", "serving");
    report.set_context("scale", std::to_string(opt.scale));
    report.set_context("zipf", std::to_string(opt.zipf));
  }

  // --- naive baseline: one single-source traversal per query ---------------
  const std::size_t naive_n = std::min(opt.naive_queries, sources.size());
  double naive_qps = 0.0, naive_wall_ms = 0.0;
  {
    sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                    sim::SimOptions{.num_workers = 1, .profiling = false});
    dev.warmup();
    auto dg = graph::DeviceCsr::upload(dev, g);
    core::XbfsConfig xcfg;
    xcfg.report_runs = false;  // 512 per-query records would bury the summary
    core::Xbfs xbfs(dev, dg, xcfg);

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < naive_n; ++i) {
      const core::BfsResult r = xbfs.run(sources[i]);
      if (r.levels[sources[i]] != 0) {
        std::fprintf(stderr, "naive run produced bad levels\n");
        return 1;
      }
    }
    naive_wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    naive_qps = naive_n / (naive_wall_ms / 1000.0);
  }
  std::printf("naive:  %zu queries in %.1f ms -> %.1f QPS\n", naive_n,
              naive_wall_ms, naive_qps);

  // --- batched + cached serving engine --------------------------------------
  serve::ServeConfig scfg;
  scfg.num_gcds = opt.gcds;
  scfg.batch_window_ms = 0.5;
  if (opt.min_sweep > 0) scfg.min_sweep_sources = opt.min_sweep;
  if (opt.timeout_ms > 0.0) scfg.default_timeout_ms = opt.timeout_ms;
  serve::Server server(g, scfg);

  serve::LoadOptions lopt;
  lopt.clients = opt.clients;
  lopt.arrival_qps = opt.open_qps;
  const serve::LoadReport lrep =
      opt.open_qps > 0.0 ? serve::run_open_loop(server, sources, lopt)
                         : serve::run_closed_loop(server, sources, lopt);

  // Spot-check served correctness against the host reference.
  {
    serve::Admission probe = server.submit(sources[0]);
    if (!probe.accepted) return 1;
    const serve::QueryResult r = probe.result.get();
    if (r.status != serve::QueryStatus::Completed ||
        *r.levels != graph::reference_bfs(g, sources[0])) {
      std::fprintf(stderr, "served levels diverge from reference\n");
      return 1;
    }
  }

  server.shutdown();  // emits the serving summary into XBFS_RUN_REPORT
  const serve::ServerStats st = server.stats();

  const double speedup = naive_qps > 0.0 ? lrep.qps / naive_qps : 0.0;
  std::printf("served: %llu completed (%llu expired, %llu rejected) in "
              "%.1f ms -> %.1f QPS  [%.2fx naive]\n",
              static_cast<unsigned long long>(lrep.completed),
              static_cast<unsigned long long>(lrep.expired),
              static_cast<unsigned long long>(lrep.rejected), lrep.wall_ms,
              lrep.qps, speedup);
  std::printf("        cache hit rate %.1f%%  batch occupancy %.2f  "
              "sweeps %llu (singleton %llu)  computed %llu/%llu\n",
              st.cache_hit_rate * 100.0, st.mean_batch_occupancy,
              static_cast<unsigned long long>(st.sweeps),
              static_cast<unsigned long long>(st.singleton_sweeps),
              static_cast<unsigned long long>(st.computed_sources),
              static_cast<unsigned long long>(st.completed));
  std::printf("        latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f  "
              "max %.3f  (queue p50 %.3f p99 %.3f)\n",
              st.latency_p50_ms, st.latency_p95_ms, st.latency_p99_ms,
              st.latency_mean_ms, st.latency_max_ms, st.queue_p50_ms,
              st.queue_p99_ms);

  if (report.enabled()) {
    obs::RunRecord rec;
    rec.tool = "bench_serving";
    rec.algorithm = "bfs-serving-comparison";
    rec.n = g.num_vertices();
    rec.m = g.num_edges();
    rec.total_ms = lrep.wall_ms;
    char buf[32];
    auto f = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      return std::string(buf);
    };
    rec.config = {
        {"queries", std::to_string(opt.queries)},
        {"clients", std::to_string(opt.clients)},
        {"gcds", std::to_string(opt.gcds)},
        {"loop", opt.open_qps > 0.0 ? "open" : "closed"},
        {"naive_queries", std::to_string(naive_n)},
        {"naive_qps", f(naive_qps)},
        {"served_qps", f(lrep.qps)},
        {"speedup", f(speedup)},
    };
    report.add(std::move(rec));
  }

  if (lrep.completed + lrep.expired + lrep.rejected != opt.queries) {
    std::fprintf(stderr, "lost queries: %llu+%llu+%llu != %zu\n",
                 static_cast<unsigned long long>(lrep.completed),
                 static_cast<unsigned long long>(lrep.expired),
                 static_cast<unsigned long long>(lrep.rejected), opt.queries);
    return 1;
  }
  if (opt.check > 0.0 && speedup < opt.check) {
    std::fprintf(stderr, "speedup %.2fx below required %.2fx\n", speedup,
                 opt.check);
    return 1;
  }
  return 0;
}
