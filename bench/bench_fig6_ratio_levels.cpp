// Reproduces Fig. 6: the per-level log2 frontier-edge ratio for all six
// Table II datasets, as a box summary over generator seeds and sources.
// Expected shape: USpatent needs by far the most levels (long-diameter
// citation structure), Dblp next; the dense Rmat graphs finish in few
// levels with a single dominant peak above the alpha threshold.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "graph/stats.h"

using namespace xbfs;
using namespace xbfs::bench;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  if (opt.seeds < 2) opt.seeds = 8;  // a box needs spread
  std::printf(
      "Fig. 6 reproduction: per-level log2(ratio), %u generator seeds x %u "
      "sources, scale divisor %u\n",
      opt.seeds, opt.sources, opt.scale_divisor);

  for (const graph::DatasetMeta& meta : graph::all_datasets()) {
    // Per level: samples of log2(ratio) across seeds and sources.
    std::map<std::size_t, std::vector<double>> samples;
    std::size_t max_depth = 0;
    for (unsigned s = 0; s < opt.seeds; ++s) {
      LoadedDataset d = load_dataset(meta.id, opt, opt.seed + s);
      const auto sources = pick_sources(d, opt.sources, opt.seed + s);
      for (graph::vid_t src : sources) {
        const std::vector<double> ratio =
            graph::frontier_edge_ratio(d.host, src);
        max_depth = std::max(max_depth, ratio.size());
        for (std::size_t lvl = 0; lvl < ratio.size(); ++lvl) {
          if (ratio[lvl] > 0) {
            samples[lvl].push_back(std::log2(ratio[lvl]));
          }
        }
      }
    }

    print_header((meta.short_name + " (" + meta.paper_name + ")").c_str());
    std::printf("%-6s %-8s %-8s %-8s %-8s %-8s %-6s\n", "Level", "min", "q1",
                "median", "q3", "max", "n");
    for (std::size_t lvl = 0; lvl < max_depth; ++lvl) {
      auto it = samples.find(lvl);
      if (it == samples.end()) continue;
      const graph::BoxSummary b = graph::box_summary(it->second);
      std::printf("%-6zu %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f %-6zu\n", lvl,
                  b.min, b.q1, b.median, b.q3, b.max, b.count);
    }
    std::printf("max BFS depth observed: %zu levels\n", max_depth);
  }
  return 0;
}
