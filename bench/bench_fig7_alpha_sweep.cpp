// Reproduces Fig. 7: the modelled runtime of each strategy as a function of
// the frontier-edge ratio on the Rmat25 stand-in, over the levels from the
// start of the BFS up to the ratio peak.  Expected shape: scan-free wins at
// tiny ratios, bottom-up is catastrophically slow there (it scans nearly all
// edges), and the curves cross a little above ratio ~0.1 — the basis for
// the paper's choice of alpha = 0.1.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/strategy_runs.h"

using namespace xbfs;
using namespace xbfs::bench;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf("Fig. 7 reproduction: Rmat25 stand-in, scale divisor %u\n",
              opt.scale_divisor);

  LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
  const graph::vid_t src = pick_sources(d, 1, opt.seed)[0];

  const StrategyRun runs[3] = {
      run_forced_strategy(d.host, src, core::Strategy::ScanFree, scaled_mi250x(opt)),
      run_forced_strategy(d.host, src, core::Strategy::SingleScan, scaled_mi250x(opt)),
      run_forced_strategy(d.host, src, core::Strategy::BottomUp, scaled_mi250x(opt)),
  };

  // Levels up to (and including) the ratio peak, as in the paper.
  std::size_t peak = 0;
  for (std::size_t lvl = 0; lvl < runs[0].rows.size(); ++lvl) {
    if (runs[0].rows[lvl].ratio >= runs[0].rows[peak].ratio) peak = lvl;
  }

  print_header(
      "Fig. 7: per-strategy kernel runtime (ms) vs frontier-edge ratio");
  std::printf("%-7s %-12s %-14s %-14s %-14s %-10s\n", "Level", "ratio",
              "scan-free", "single-scan", "bottom-up", "winner");
  double best_alpha_lo = 0.0, best_alpha_hi = 1.0;
  for (std::size_t lvl = 0; lvl <= peak; ++lvl) {
    double ms[3];
    for (int s = 0; s < 3; ++s) {
      ms[s] = lvl < runs[s].rows.size() ? runs[s].rows[lvl].kernels_ms : 0.0;
    }
    const double td_best = std::min(ms[0], ms[1]);
    const char* winner =
        ms[2] < td_best
            ? "bottom-up"
            : (ms[0] <= ms[1] ? "scan-free" : "single-scan");
    const double ratio = runs[0].rows[lvl].ratio;
    if (ms[2] < td_best) {
      best_alpha_hi = std::min(best_alpha_hi, ratio);
    } else {
      best_alpha_lo = std::max(best_alpha_lo, ratio);
    }
    std::printf("%-7zu %-12.3e %-14.3f %-14.3f %-14.3f %-10s\n", lvl, ratio,
                ms[0], ms[1], ms[2], winner);
  }
  if (best_alpha_lo < best_alpha_hi) {
    std::printf(
        "\nbottom-up becomes profitable between ratio %.3e and %.3e "
        "(paper sets alpha = 0.1)\n",
        best_alpha_lo, best_alpha_hi);
  } else {
    std::printf(
        "\ncrossover region overlaps (lo %.3e, hi %.3e); alpha ~ 0.1 remains "
        "a reasonable threshold\n",
        best_alpha_lo, best_alpha_hi);
  }
  return 0;
}
