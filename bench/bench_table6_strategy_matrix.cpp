// Reproduces Table VI: total memory read (MB) and runtime (ms) per level for
// the three strategies on the Rmat25 stand-in, with the per-level winner
// marked.  Expected shape (paper Sec. V-E): scan-free wins the shallow and
// deep levels, single-scan takes the steep-growth level despite reading more
// (no atomic status updates), bottom-up wins the peak-ratio levels.
#include <algorithm>
#include <cstdio>

#include "bench/strategy_runs.h"

using namespace xbfs;
using namespace xbfs::bench;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf("Table VI reproduction: Rmat25 stand-in, scale divisor %u\n",
              opt.scale_divisor);

  LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
  const graph::vid_t src = pick_sources(d, 1, opt.seed)[0];

  const StrategyRun runs[3] = {
      run_forced_strategy(d.host, src, core::Strategy::ScanFree, scaled_mi250x(opt)),
      run_forced_strategy(d.host, src, core::Strategy::SingleScan, scaled_mi250x(opt)),
      run_forced_strategy(d.host, src, core::Strategy::BottomUp, scaled_mi250x(opt)),
  };

  const std::size_t depth = std::max(
      {runs[0].rows.size(), runs[1].rows.size(), runs[2].rows.size()});
  print_header(
      "Table VI: total memory read (MB) / runtime (ms) per level, * = winner");
  std::printf("%-6s %-26s %-26s %-26s\n", "Level", "Scan Free", "Single Scan",
              "Bottom up");
  for (std::size_t lvl = 0; lvl < depth; ++lvl) {
    double ms[3], mb[3];
    bool present[3];
    for (int s = 0; s < 3; ++s) {
      present[s] = lvl < runs[s].rows.size();
      ms[s] = present[s] ? runs[s].rows[lvl].kernels_ms : 0.0;
      mb[s] = present[s] ? runs[s].rows[lvl].fetch_kb / 1024.0 : 0.0;
    }
    int winner = -1;
    double best = 0;
    for (int s = 0; s < 3; ++s) {
      if (present[s] && (winner < 0 || ms[s] < best)) {
        winner = s;
        best = ms[s];
      }
    }
    std::printf("%-6zu ", lvl);
    for (int s = 0; s < 3; ++s) {
      if (present[s]) {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.3f / %.2f%s", mb[s], ms[s],
                      s == winner ? " *" : "");
        std::printf("%-26s ", cell);
      } else {
        std::printf("%-26s ", "-");
      }
    }
    std::putchar('\n');
  }

  std::printf("\nend-to-end (forced) totals:\n");
  for (int s = 0; s < 3; ++s) {
    std::printf("  %-12s depth %2u, modelled %8.3f ms\n",
                core::strategy_name(runs[s].strategy), runs[s].result.depth,
                runs[s].result.total_ms);
  }
  return 0;
}
