// Shared machinery for the forced-strategy profiling benches
// (Tables I, III-V, VI and Fig. 7): run XBFS with one strategy pinned for
// every level on a fresh deterministic device, and collate the profiler's
// per-kernel rows by level.
#pragma once

#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace xbfs::bench {

/// True when `kernel` belongs to the given strategy's per-level pipeline
/// (as opposed to setup/reset/readback helpers).
inline bool is_strategy_kernel(core::Strategy s, const std::string& kernel) {
  switch (s) {
    case core::Strategy::ScanFree:
      return kernel.find("xbfs_scanfree_expand") != std::string::npos ||
             kernel.find("xbfs_classify_bins") != std::string::npos;
    case core::Strategy::SingleScan:
      return kernel.find("xbfs_singlescan_") != std::string::npos;
    case core::Strategy::BottomUp:
      return kernel.find("xbfs_bu_") != std::string::npos;
  }
  return false;
}

struct StrategyLevelRow {
  int level = 0;
  double ratio = 0.0;
  std::vector<sim::LaunchRecord> kernels;  ///< the strategy's kernels only
  double level_ms = 0.0;       ///< modelled level time (incl. syncs)
  double kernels_ms = 0.0;     ///< sum over the strategy kernels
  double fetch_kb = 0.0;       ///< sum over the strategy kernels
};

struct StrategyRun {
  core::Strategy strategy;
  std::vector<StrategyLevelRow> rows;
  core::BfsResult result;
};

/// Run XBFS on `g` with `strategy` forced at every level; deterministic
/// single-worker device so the counter tables are bit-reproducible.
inline StrategyRun run_forced_strategy(const graph::Csr& g, graph::vid_t src,
                                       core::Strategy strategy,
                                       const sim::DeviceProfile& profile,
                                       core::XbfsConfig cfg = {}) {
  sim::SimOptions so;
  so.num_workers = 1;
  sim::Device dev(profile, so);
  auto dg = graph::DeviceCsr::upload(dev, g);
  cfg.forced_strategy = static_cast<int>(strategy);
  core::Xbfs bfs(dev, dg, cfg);
  dev.profiler().clear();  // keep upload/setup out of the tables

  StrategyRun run;
  run.strategy = strategy;
  run.result = bfs.run(src);

  run.rows.resize(run.result.level_stats.size());
  for (std::size_t i = 0; i < run.rows.size(); ++i) {
    run.rows[i].level = static_cast<int>(i);
    run.rows[i].ratio = run.result.level_stats[i].ratio;
    run.rows[i].level_ms = run.result.level_stats[i].time_ms;
  }
  for (const sim::LaunchRecord& r : dev.profiler().records()) {
    if (r.level < 0 || static_cast<std::size_t>(r.level) >= run.rows.size()) {
      continue;
    }
    if (!is_strategy_kernel(strategy, r.kernel)) continue;
    StrategyLevelRow& row = run.rows[static_cast<std::size_t>(r.level)];
    row.kernels.push_back(r);
    row.kernels_ms += r.runtime_ms();
    row.fetch_kb += r.fetch_kb();
  }
  return run;
}

}  // namespace xbfs::bench
