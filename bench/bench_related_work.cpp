// Related-work comparison (paper Sec. II, qualitative claims made
// quantitative): XBFS against one representative of each frontier-queue
// family the paper discusses —
//   * hierarchical queue (Luo et al. DAC'10): fine at tiny frontiers,
//     strided/overflowing at large ones;
//   * edge-frontier filtering (B40C/Gunrock): duplicate frontiers and
//     O(|E|) space at high-frontier levels;
//   * status-array scan (Enterprise): O(|V|) scan per level, painful on
//     long-diameter graphs;
//   * SSSP-style asynchronous traversal: redundant re-relaxations
//     (the SIMD-X observation).
// Reported per dataset: GTEPS for every method plus each family's
// characteristic pathology counter.
#include <cstdio>
#include <vector>

#include "baseline/async_sssp.h"
#include "baseline/gunrock_like.h"
#include "baseline/hier_queue.h"
#include "baseline/simple_scan.h"
#include "bench/bench_common.h"

using namespace xbfs;
using namespace xbfs::bench;

namespace {

template <typename MakeBfs>
double avg_gteps(const graph::Csr& g,
                 const std::vector<graph::vid_t>& sources,
                 const sim::DeviceProfile& profile, MakeBfs&& make) {
  sim::Device dev(profile);
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  auto bfs = make(dev, dg);
  double sum = 0;
  for (graph::vid_t src : sources) sum += bfs.run(src).gteps;
  return sum / static_cast<double>(sources.size());
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf(
      "Related-work families vs XBFS (Sec. II), divisor %u, %u sources\n",
      opt.scale_divisor, opt.sources);

  print_header("GTEPS by method and dataset");
  std::printf("%-6s %-10s %-10s %-10s %-10s %-10s\n", "Graph", "XBFS",
              "HierQ", "EdgeFront", "ScanLevel", "AsyncSSSP");
  for (const graph::DatasetMeta& meta : graph::all_datasets()) {
    LoadedDataset d = load_dataset(meta.id, opt);
    const auto sources = pick_sources(d, opt.sources, opt.seed);
    const auto profile = scaled_mi250x(opt);
    const double x = avg_gteps(d.host, sources, profile,
                               [&](sim::Device& dev, graph::DeviceCsr& dg) {
                                 return core::Xbfs(dev, dg);
                               });
    const double hq = avg_gteps(d.host, sources, profile,
                                [&](sim::Device& dev, graph::DeviceCsr& dg) {
                                  return baseline::HierQueueBfs(dev, dg);
                                });
    const double ef = avg_gteps(d.host, sources, profile,
                                [&](sim::Device& dev, graph::DeviceCsr& dg) {
                                  return baseline::GunrockLikeBfs(dev, dg);
                                });
    const double sc = avg_gteps(d.host, sources, profile,
                                [&](sim::Device& dev, graph::DeviceCsr& dg) {
                                  return baseline::SimpleScanBfs(dev, dg);
                                });
    const double ss = avg_gteps(d.host, sources, profile,
                                [&](sim::Device& dev, graph::DeviceCsr& dg) {
                                  return baseline::AsyncSsspBfs(dev, dg);
                                });
    std::printf("%-6s %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f\n",
                meta.short_name.c_str(), x, hq, ef, sc, ss);
  }

  // Pathology counters on the Rmat25 stand-in.
  {
    LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
    const auto src = pick_sources(d, 1, opt.seed)[0];
    print_header("characteristic overheads on Rmat25 (single source)");

    {
      sim::Device dev(scaled_mi250x(opt));
      dev.warmup();
      auto dg = graph::DeviceCsr::upload(dev, d.host);
      baseline::AsyncSsspBfs bfs(dev, dg);
      const core::BfsResult r = bfs.run(src);
      std::uint64_t reached_edges = 2 * r.edges_traversed;
      std::printf(
          "async-SSSP relaxations: %llu (%.2fx the %llu directed edges "
          "reached) over %u rounds\n",
          static_cast<unsigned long long>(bfs.last_relaxations()),
          static_cast<double>(bfs.last_relaxations()) /
              static_cast<double>(reached_edges ? reached_edges : 1),
          static_cast<unsigned long long>(reached_edges), r.depth);
    }
    {
      sim::Device dev(scaled_mi250x(opt));
      dev.warmup();
      auto dg = graph::DeviceCsr::upload(dev, d.host);
      baseline::GunrockLikeBfs bfs(dev, dg);
      dev.profiler().clear();
      const core::BfsResult r = bfs.run(src);
      double advance_entries = 0;
      for (const auto& rec : dev.profiler().matching("gunrock_advance")) {
        advance_entries += static_cast<double>(rec.counters.mem_writes);
      }
      std::uint64_t reached = 0;
      for (auto l : r.levels) {
        if (l >= 0) ++reached;
      }
      std::printf(
          "edge-frontier entries filtered: %.0f (%.2fx the %llu reached "
          "vertices)\n",
          advance_entries,
          advance_entries / static_cast<double>(reached ? reached : 1),
          static_cast<unsigned long long>(reached));
    }
    {
      sim::Device dev(scaled_mi250x(opt));
      dev.warmup();
      auto dg = graph::DeviceCsr::upload(dev, d.host);
      baseline::SimpleScanBfs bfs(dev, dg);
      dev.profiler().clear();
      const core::BfsResult r = bfs.run(src);
      const double scan_bytes =
          dev.profiler().total_fetch_kb("scanbfs_scan_expand") * 1024.0;
      std::printf(
          "status-scan traffic: %.1f MB over %u levels (>= 4|V| = %.1f MB "
          "per level)\n",
          scan_bytes / 1e6, r.depth, 4.0 * d.host.num_vertices() / 1e6);
    }
  }
  return 0;
}
