// Reproduces Fig. 5: the per-kernel runtime breakdown of XBFS in three
// configurations on the Rmat25 stand-in:
//   (a) the original CUDA design on the P6000 profile — three degree-binned
//       streams, warp(32)-centric balancing everywhere;
//   (b) the naive hipify port on the MI250X profile — same design, plus the
//       modelled hipcc register pressure on the bottom-up kernel;
//   (c) the optimized AMD version — one stream, thread-centric bottom-up,
//       clang register budget.
// Expected shape: (b) is slower than (a) at the kernel-orchestration level
// (sync-heavy three-stream design on a sync-expensive device, 64-wide waves
// idling in bottom-up); (c) recovers and beats both end-to-end.
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_common.h"

using namespace xbfs;
using namespace xbfs::bench;

namespace {

struct ConfigRun {
  std::string label;
  double total_ms = 0;
  std::map<std::string, double> kernel_ms;  ///< summed over levels
};

ConfigRun run_config(const std::string& label,
                     const sim::DeviceProfile& profile,
                     const core::XbfsConfig& cfg, const graph::Csr& g,
                     graph::vid_t src) {
  sim::SimOptions so;
  so.num_workers = 1;
  sim::Device dev(profile, so);
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg, cfg);
  dev.profiler().clear();
  const core::BfsResult r = bfs.run(src);

  ConfigRun out;
  out.label = label;
  out.total_ms = r.total_ms;
  for (const sim::LaunchRecord& rec : dev.profiler().records()) {
    out.kernel_ms[rec.kernel] += rec.runtime_ms();
  }
  return out;
}

void print_config(const ConfigRun& c) {
  print_header(c.label.c_str());
  for (const auto& [kernel, ms] : c.kernel_ms) {
    std::printf("  %-34s %10.3f ms  (%5.1f%%)\n", kernel.c_str(), ms,
                100.0 * ms / c.total_ms);
  }
  std::printf("  %-34s %10.3f ms\n", "END-TO-END (kernels+syncs+copies)",
              c.total_ms);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf("Fig. 5 reproduction: Rmat25 stand-in, scale divisor %u\n",
              opt.scale_divisor);

  LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
  const graph::vid_t src = pick_sources(d, 1, opt.seed)[0];

  // (a) CUDA XBFS on the P6000: three streams, warp-centric everywhere.
  core::XbfsConfig cuda_cfg;
  cuda_cfg.stream_mode = core::StreamMode::TripleBinned;
  cuda_cfg.bottomup_warp_centric = true;  // fine on 32-wide warps
  const ConfigRun a = run_config("(a) original XBFS, CUDA / Quadro P6000",
                                 scaled_p6000(opt), cuda_cfg, d.host, src);

  // (b) naive hipify: same structure on the MI250X, hipcc register budget.
  core::XbfsConfig naive_cfg = cuda_cfg;
  naive_cfg.bottomup_spill_factor = 1.20;  // hipcc's extra registers (~17%)
  const ConfigRun b = run_config("(b) naive hipify port, MI250X GCD",
                                 scaled_mi250x(opt), naive_cfg, d.host, src);

  // (c) AMD-optimized: single stream, thread-centric bottom-up, clang.
  const ConfigRun c = run_config("(c) optimized port, MI250X GCD",
                                 scaled_mi250x(opt), core::XbfsConfig{},
                                 d.host, src);

  print_config(a);
  print_config(b);
  print_config(c);

  print_header("summary");
  std::printf("naive port vs optimized on MI250X: %.2fx end-to-end\n",
              b.total_ms / c.total_ms);
  return 0;
}
