// Reproduces Tables III, IV and V: rocprofiler-style per-kernel counters
// (Runtime, L2CacheHit, MemUnitBusy, FetchSize) for the scan-free,
// single-scan and bottom-up strategies forced at every level on the Rmat25
// stand-in.  Expected shapes (paper Sec. V-E):
//   * scan-free: one kernel per level, FetchSize ~ O(|F|) — tiny at the
//     shallow/deep levels, huge at the peak-ratio levels;
//   * single-scan: two kernels, the generation scan pinned at ~4|V| bytes;
//   * bottom-up: five kernels, k1/k4 pinned at ~4|V| bytes, k5 falling from
//     O(|E|) at level 0 to almost nothing once most vertices are visited;
//   * every strategy's level-0 kernel absorbs the ~20 ms HIP warm-up.
#include <cstdio>

#include "bench/strategy_runs.h"

using namespace xbfs;
using namespace xbfs::bench;

namespace {

void print_strategy_table(const char* title, const StrategyRun& run) {
  print_header(title);
  std::printf("%-10s %-7s %-13s %-9s %-10s %-16s\n", "Ratio", "Level",
              "Runtime(ms)", "L2(%)", "MBusy(%)", "FS(KB)");
  for (const StrategyLevelRow& row : run.rows) {
    for (const sim::LaunchRecord& k : row.kernels) {
      std::printf("%-10.2e %-7d %-13.3f %-9.3f %-10.3f %-16.3f  %s\n",
                  row.ratio, row.level, k.runtime_ms(), k.l2_pct(),
                  k.mbusy_pct(), k.fetch_kb(), k.kernel.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf("Tables III-V reproduction: Rmat25 stand-in, scale divisor %u\n",
              opt.scale_divisor);

  LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
  std::printf("|V| = %u, |E| = %llu (directed entries)\n",
              d.host.num_vertices(),
              static_cast<unsigned long long>(d.host.num_edges()));
  const graph::vid_t src = pick_sources(d, 1, opt.seed)[0];

  const StrategyRun sf =
      run_forced_strategy(d.host, src, core::Strategy::ScanFree, scaled_mi250x(opt));
  print_strategy_table("Table III: scan-free strategy (rocprofiler view)",
                       sf);

  const StrategyRun ss =
      run_forced_strategy(d.host, src, core::Strategy::SingleScan, scaled_mi250x(opt));
  print_strategy_table("Table IV: single-scan strategy (rocprofiler view)",
                       ss);

  const StrategyRun bu =
      run_forced_strategy(d.host, src, core::Strategy::BottomUp, scaled_mi250x(opt));
  print_strategy_table("Table V: bottom-up strategy (rocprofiler view)", bu);

  return 0;
}
