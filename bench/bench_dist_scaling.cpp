// Multi-GCD scaling study: the system the paper motivates ("establish the
// basis for distributed BFS on AMD GPUs") quantified on the simulator.
//
// Runs the distributed direction-optimizing BFS on the Rmat25 stand-in
// across 1..8 simulated GCDs (one Frontier node) and reports aggregate
// GTEPS, parallel efficiency and the communication share — then puts the
// per-GCD number next to the paper's Graph500 comparison (CPU-based
// Frontier submission: 0.4 GTEPS/GCD; XBFS on one GCD: 43 GTEPS).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "dist/dist_bfs.h"
#include "graph/rmat.h"

using namespace xbfs;
using namespace xbfs::bench;

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  std::printf(
      "Distributed BFS scaling on the Rmat25 stand-in, divisor %u, "
      "%u sources\n",
      opt.scale_divisor, opt.sources);

  LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
  const auto sources = pick_sources(d, opt.sources, opt.seed);
  std::printf("|V| = %u, |E| = %llu directed entries\n",
              d.host.num_vertices(),
              static_cast<unsigned long long>(d.host.num_edges()));

  print_header("aggregate throughput vs GCD count (one Frontier node)");
  std::printf("%-6s %-12s %-12s %-12s %-12s %-8s\n", "GCDs", "GTEPS",
              "GTEPS/GCD", "efficiency", "comm share", "depth");
  double gteps_1 = 0;
  for (unsigned g : {1u, 2u, 4u, 8u}) {
    dist::DistConfig cfg;
    cfg.gcds = g;
    dist::DistBfs bfs(d.host, cfg);
    double gteps_sum = 0, comm_share = 0;
    std::uint32_t depth = 0;
    for (graph::vid_t src : sources) {
      const dist::DistBfsResult r = bfs.run(src);
      gteps_sum += r.gteps;
      comm_share += r.comm_ms / r.total_ms;
      depth = std::max(depth, r.depth);
    }
    const double gteps = gteps_sum / sources.size();
    if (g == 1) gteps_1 = gteps;
    std::printf("%-6u %-12.3f %-12.3f %-11.1f%% %-11.1f%% %-8u\n", g, gteps,
                gteps / g, 100.0 * gteps / (gteps_1 * g),
                100.0 * comm_share / sources.size(), depth);
  }

  // Weak scaling: fixed per-GCD share (the Graph500 regime) — the problem
  // grows with the machine, so efficiency reflects pure communication cost.
  print_header("weak scaling (per-GCD share fixed; 16 GCDs = two nodes)");
  std::printf("%-6s %-10s %-12s %-12s %-12s %-8s\n", "GCDs", "scale",
              "GTEPS", "GTEPS/GCD", "comm share", "depth");
  for (unsigned g : {1u, 2u, 4u, 8u, 16u}) {
    // Keep |V|/GCD constant by growing the RMAT scale with log2(g).
    graph::RmatParams rp;
    rp.scale = 17 + static_cast<unsigned>(std::log2(g));
    rp.edge_factor = 16;
    rp.seed = opt.seed;
    const graph::Csr wg = graph::rmat_csr(rp);
    const auto wgiant = graph::largest_component_vertices(wg);
    dist::DistConfig cfg;
    cfg.gcds = g;
    dist::DistBfs bfs(wg, cfg);
    double gteps_sum = 0, comm_share = 0;
    std::uint32_t depth = 0;
    const unsigned runs = std::max(1u, opt.sources / 2);
    for (unsigned i = 0; i < runs; ++i) {
      const dist::DistBfsResult r =
          bfs.run(wgiant[i * wgiant.size() / runs]);
      gteps_sum += r.gteps;
      comm_share += r.comm_ms / r.total_ms;
      depth = std::max(depth, r.depth);
    }
    const double gteps = gteps_sum / runs;
    std::printf("%-6u %-10u %-12.3f %-12.3f %-11.1f%% %-8u\n", g, rp.scale,
                gteps, gteps / g, 100.0 * comm_share / runs, depth);
  }

  print_header("Graph500 framing (paper Sec. I)");
  std::printf(
      "Frontier June-2024 Graph500 submission (CPU BFS): 0.4 GTEPS per GCD\n"
      "paper's XBFS on one MI250X GCD:                   43 GTEPS\n"
      "this simulation's distributed BFS keeps per-GCD throughput within the\n"
      "efficiency column above, supporting the paper's claim of headroom for\n"
      "a GPU-based Graph500 submission.\n");
  return 0;
}
