// Multi-GCD scaling study: the system the paper motivates ("establish the
// basis for distributed BFS on AMD GPUs") quantified on the simulator.
//
// Runs the distributed direction-optimizing BFS on the Rmat25 stand-in
// across 1..8 simulated GCDs (one Frontier node) and reports aggregate
// GTEPS, parallel efficiency and the communication share — then puts the
// per-GCD number next to the paper's Graph500 comparison (CPU-based
// Frontier submission: 0.4 GTEPS/GCD; XBFS on one GCD: 43 GTEPS).
//
// --serve switches to the sharded-serving study (docs/sharding.md): a graph
// deliberately too large for one budget-capped GCD is partitioned across a
// shard fleet and served through shard::ShardRouter, sweeping the shard
// count to show the modelled p99 staying sublinear in shard count.
// --chaos adds a resilience sub-phase (killed replica + fault injection:
// queries reroute, validate Graph500-clean, and none fail), and under
// XBFS_SANITIZE the serving run doubles as a SimSan gate for the shard
// kernels.  Extra flags: --serve-scale=N --queries=N --check-p99=RATIO.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench/bench_common.h"
#include "dist/dist_bfs.h"
#include "graph/g500_validate.h"
#include "graph/rmat.h"
#include "hipsim/fault.h"
#include "hipsim/sanitizer.h"
#include "shard/router.h"
#include "shard/sharded_store.h"

using namespace xbfs;
using namespace xbfs::bench;

namespace {

struct ServeOptions {
  bool serve = false;
  bool chaos = false;
  unsigned scale = 14;        ///< RMAT scale of the served graph
  unsigned edge_factor = 16;
  std::size_t queries = 32;   ///< distinct sources per shard count
  double check_p99 = 0.0;     ///< max p99(8 shards)/p99(4 shards); 0 = report
};

ServeOptions parse_serve(int argc, char** argv) {
  ServeOptions o;
  for (int i = 1; i < argc; ++i) {
    auto num = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      return nullptr;
    };
    const char* v;
    if (std::strcmp(argv[i], "--serve") == 0) o.serve = true;
    else if (std::strcmp(argv[i], "--chaos") == 0) o.chaos = true;
    else if ((v = num("--serve-scale"))) o.scale = std::atoi(v);
    else if ((v = num("--edge-factor"))) o.edge_factor = std::atoi(v);
    else if ((v = num("--queries"))) o.queries = std::atoll(v);
    else if ((v = num("--check-p99"))) o.check_p99 = std::atof(v);
  }
  return o;
}

/// Run `queries` distinct-source queries through a router over `store` and
/// return the stats after drain (the router keeps running for callers that
/// want to submit more before shutdown).
shard::RouterStats drive_queries(shard::ShardRouter& router,
                                 const std::vector<graph::vid_t>& giant,
                                 std::size_t queries) {
  for (std::size_t i = 0; i < queries; ++i) {
    const graph::vid_t src = giant[(i * giant.size()) / queries];
    serve::Admission a = router.submit(src);
    if (!a.accepted) {
      std::fprintf(stderr, "submit rejected: %s\n", a.status.to_string().c_str());
      std::exit(1);
    }
  }
  router.drain();
  return router.stats();
}

int run_serving_study(const ServeOptions& opt, std::uint64_t seed) {
  sim::FaultInjector::global().disable();  // the clean sweep must stay clean

  graph::RmatParams rp;
  rp.scale = opt.scale;
  rp.edge_factor = opt.edge_factor;
  rp.seed = seed;
  const graph::Csr g = graph::rmat_csr(rp);
  const auto giant = graph::largest_component_vertices(g);
  std::printf("sharded serving study: RMAT scale=%u ef=%u  n=%u  m=%llu\n",
              opt.scale, opt.edge_factor, g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // Budget a GCD at 1.25x the 4-way shard slice: the whole graph then
  // oversubscribes one device >= 2x, so serving it *requires* the fleet.
  const std::uint64_t budget =
      shard::ShardedStore::estimate_replica_bytes(g, 4) * 5 / 4;

  obs::ReportSession& report = obs::ReportSession::global();
  char fbuf[32];
  auto f = [&](double v) {
    std::snprintf(fbuf, sizeof(fbuf), "%.6g", v);
    return std::string(fbuf);
  };

  print_header("modelled p99 vs shard count (budget-capped GCDs)");
  std::printf("%-7s %-10s %-12s %-12s %-12s %-12s %-10s\n", "shards",
              "oversub", "p50 ms", "p99 ms", "comp ratio", "2phase lvls",
              "rerouted");
  double p99_4 = 0.0, p99_8 = 0.0, oversub = 0.0;
  std::uint64_t wire_4 = 0, raw_4 = 0;
  for (unsigned shards : {4u, 8u}) {
    shard::ShardStoreConfig scfg;
    scfg.shards = shards;
    scfg.device_budget_bytes = budget;
    shard::ShardedStore store(g, scfg);
    const shard::ShardMemoryReport mem = store.memory_report();
    if (shards == 4) oversub = mem.oversubscription;

    shard::RouterConfig rcfg;
    rcfg.workers = 2;
    shard::ShardRouter router(store, rcfg);
    const shard::RouterStats st = drive_queries(router, giant, opt.queries);
    router.shutdown();
    if (st.failed != 0 || st.completed != opt.queries) {
      std::fprintf(stderr, "serving sweep lost queries (%llu/%zu, %llu failed)\n",
                   static_cast<unsigned long long>(st.completed), opt.queries,
                   static_cast<unsigned long long>(st.failed));
      return 1;
    }
    if (shards == 4) { p99_4 = st.modelled_p99_ms; wire_4 = st.exchange_wire_bytes; raw_4 = st.exchange_raw_bytes; }
    if (shards == 8) p99_8 = st.modelled_p99_ms;
    char ob[16];
    std::snprintf(ob, sizeof(ob), "%.2fx", mem.oversubscription);
    std::printf("%-7u %-10s %-12.3f %-12.3f %-12.2f %-12llu %-10llu\n",
                shards, ob, st.modelled_p50_ms,
                st.modelled_p99_ms, st.compression_ratio,
                static_cast<unsigned long long>(st.two_phase_levels),
                static_cast<unsigned long long>(st.rerouted));
  }
  const double p99_ratio = p99_4 > 0.0 ? p99_8 / p99_4 : 0.0;
  std::printf("doubling the fleet 4 -> 8 shards scales p99 by %.2fx "
              "(sublinear < 2.00x)\n", p99_ratio);

  // --- chaos sub-phase: kill a replica, inject faults, keep serving --------
  shard::RouterStats cst;
  bool chaos_valid = false;
  if (opt.chaos) {
    print_header("chaos: killed replica + fault injection (4 shards x 2)");
    sim::FaultConfig fc;
    fc.kernel_fault_rate = 0.002;
    fc.memcpy_corruption_rate = 0.002;
    fc.seed = seed * 31 + 7;
    sim::FaultInjector::global().configure(fc);

    shard::ShardStoreConfig scfg;
    scfg.shards = 4;
    scfg.replicas = 2;
    scfg.device_budget_bytes = budget;
    shard::ShardedStore store(g, scfg);
    store.kill_replica(1, 0);  // a dead primary: its queries must reroute

    shard::RouterConfig rcfg;
    rcfg.workers = 2;
    rcfg.max_attempts = 6;
    rcfg.slo_scope = "shard-chaos";
    shard::ShardRouter router(store, rcfg);
    cst = drive_queries(router, giant, opt.queries);

    // Served-correctness probe under injection: Graph500-clean levels.
    serve::Admission probe = router.submit(giant.front());
    if (probe.accepted) {
      const serve::QueryResult r = probe.result.get();
      chaos_valid = r.status == serve::QueryStatus::Completed && !r.partial &&
                    graph::validate_levels_graph500(g, r.source, *r.levels)
                        .empty();
    }
    router.shutdown();
    cst = router.stats();
    sim::FaultInjector::global().disable();

    std::printf("completed %llu  failed %llu  rerouted %llu  retries %llu  "
                "faults seen %llu  partial %llu\n",
                static_cast<unsigned long long>(cst.completed),
                static_cast<unsigned long long>(cst.failed),
                static_cast<unsigned long long>(cst.rerouted),
                static_cast<unsigned long long>(cst.retries),
                static_cast<unsigned long long>(cst.faults_seen),
                static_cast<unsigned long long>(cst.partial_queries));
    std::printf("probe under injection: %s\n",
                chaos_valid ? "Graph500-clean" : "INVALID");
  }

  if (report.enabled()) {
    obs::RunRecord rec;
    rec.tool = "bench_shard_serving";
    rec.algorithm = "sharded-bfs-serving";
    rec.n = g.num_vertices();
    rec.m = g.num_edges();
    rec.total_ms = p99_4 + p99_8;
    rec.config = {
        {"queries", std::to_string(opt.queries)},
        {"budget_bytes", std::to_string(budget)},
        {"oversubscription", f(oversub)},
        {"p99_4_shards_ms", f(p99_4)},
        {"p99_8_shards_ms", f(p99_8)},
        {"p99_ratio", f(p99_ratio)},
        {"exchange_raw_bytes", std::to_string(raw_4)},
        {"exchange_wire_bytes", std::to_string(wire_4)},
        {"chaos", opt.chaos ? "1" : "0"},
        {"chaos_completed", std::to_string(cst.completed)},
        {"chaos_failed", std::to_string(cst.failed)},
        {"chaos_rerouted", std::to_string(cst.rerouted)},
        {"chaos_faults_seen", std::to_string(cst.faults_seen)},
        {"chaos_partial", std::to_string(cst.partial_queries)},
        {"chaos_probe_valid", chaos_valid ? "1" : "0"},
    };
    report.add(std::move(rec));
  }

  int rc = 0;
  if (oversub < 2.0) {
    std::fprintf(stderr, "oversubscription %.2fx below the 2x bar\n", oversub);
    rc = 1;
  }
  if (opt.check_p99 > 0.0 && p99_ratio >= opt.check_p99) {
    std::fprintf(stderr, "p99 ratio %.2fx not below required %.2fx\n",
                 p99_ratio, opt.check_p99);
    rc = 1;
  }
  if (opt.chaos) {
    if (cst.failed != 0) {
      std::fprintf(stderr, "chaos: %llu queries resolved Failed\n",
                   static_cast<unsigned long long>(cst.failed));
      rc = 1;
    }
    if (cst.rerouted == 0) {
      std::fprintf(stderr, "chaos: killed replica never forced a reroute\n");
      rc = 1;
    }
    if (!chaos_valid) {
      std::fprintf(stderr, "chaos: probe result failed Graph500 validation\n");
      rc = 1;
    }
  }

  // Under XBFS_SANITIZE the serving run doubles as a SimSan gate for the
  // shard kernels: every sweep above went through checked accessors.
  auto& san = sim::Sanitizer::global();
  if (san.enabled()) {
    san.summary(std::cout);
    if (san.unannotated_count() > 0) {
      std::printf("bench_dist_scaling: FAIL — %llu unannotated sanitizer "
                  "finding(s)\n",
                  static_cast<unsigned long long>(san.unannotated_count()));
      rc = 1;
    } else {
      std::printf("bench_dist_scaling: sanitizer clean (%llu allowlisted)\n",
                  static_cast<unsigned long long>(san.allowlisted_count()));
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  const ServeOptions sopt = parse_serve(argc, argv);
  if (sopt.serve) return run_serving_study(sopt, opt.seed);
  std::printf(
      "Distributed BFS scaling on the Rmat25 stand-in, divisor %u, "
      "%u sources\n",
      opt.scale_divisor, opt.sources);

  LoadedDataset d = load_dataset(graph::DatasetId::R25, opt);
  const auto sources = pick_sources(d, opt.sources, opt.seed);
  std::printf("|V| = %u, |E| = %llu directed entries\n",
              d.host.num_vertices(),
              static_cast<unsigned long long>(d.host.num_edges()));

  print_header("aggregate throughput vs GCD count (one Frontier node)");
  std::printf("%-6s %-12s %-12s %-12s %-12s %-8s\n", "GCDs", "GTEPS",
              "GTEPS/GCD", "efficiency", "comm share", "depth");
  double gteps_1 = 0;
  for (unsigned g : {1u, 2u, 4u, 8u}) {
    dist::DistConfig cfg;
    cfg.gcds = g;
    dist::DistBfs bfs(d.host, cfg);
    double gteps_sum = 0, comm_share = 0;
    std::uint32_t depth = 0;
    for (graph::vid_t src : sources) {
      const dist::DistBfsResult r = bfs.run(src);
      gteps_sum += r.gteps;
      comm_share += r.comm_ms / r.total_ms;
      depth = std::max(depth, r.depth);
    }
    const double gteps = gteps_sum / sources.size();
    if (g == 1) gteps_1 = gteps;
    std::printf("%-6u %-12.3f %-12.3f %-11.1f%% %-11.1f%% %-8u\n", g, gteps,
                gteps / g, 100.0 * gteps / (gteps_1 * g),
                100.0 * comm_share / sources.size(), depth);
  }

  // Weak scaling: fixed per-GCD share (the Graph500 regime) — the problem
  // grows with the machine, so efficiency reflects pure communication cost.
  print_header("weak scaling (per-GCD share fixed; 16 GCDs = two nodes)");
  std::printf("%-6s %-10s %-12s %-12s %-12s %-8s\n", "GCDs", "scale",
              "GTEPS", "GTEPS/GCD", "comm share", "depth");
  for (unsigned g : {1u, 2u, 4u, 8u, 16u}) {
    // Keep |V|/GCD constant by growing the RMAT scale with log2(g).
    graph::RmatParams rp;
    rp.scale = 17 + static_cast<unsigned>(std::log2(g));
    rp.edge_factor = 16;
    rp.seed = opt.seed;
    const graph::Csr wg = graph::rmat_csr(rp);
    const auto wgiant = graph::largest_component_vertices(wg);
    dist::DistConfig cfg;
    cfg.gcds = g;
    dist::DistBfs bfs(wg, cfg);
    double gteps_sum = 0, comm_share = 0;
    std::uint32_t depth = 0;
    const unsigned runs = std::max(1u, opt.sources / 2);
    for (unsigned i = 0; i < runs; ++i) {
      const dist::DistBfsResult r =
          bfs.run(wgiant[i * wgiant.size() / runs]);
      gteps_sum += r.gteps;
      comm_share += r.comm_ms / r.total_ms;
      depth = std::max(depth, r.depth);
    }
    const double gteps = gteps_sum / runs;
    std::printf("%-6u %-10u %-12.3f %-12.3f %-11.1f%% %-8u\n", g, rp.scale,
                gteps, gteps / g, 100.0 * comm_share / runs, depth);
  }

  print_header("Graph500 framing (paper Sec. I)");
  std::printf(
      "Frontier June-2024 Graph500 submission (CPU BFS): 0.4 GTEPS per GCD\n"
      "paper's XBFS on one MI250X GCD:                   43 GTEPS\n"
      "this simulation's distributed BFS keeps per-GCD throughput within the\n"
      "efficiency column above, supporting the paper's claim of headroom for\n"
      "a GPU-based Graph500 submission.\n");
  return 0;
}
