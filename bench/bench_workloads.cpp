// Mixed-workload serving harness: one Server admitting the whole algorithm
// family concurrently — Zipf-skewed BFS traffic interleaved with SSSP,
// connected-components, and k-core queries, each in its own QoS class.
//
// The family-serving claim quantified here: the generalized engine keeps
// BFS's batched/cached throughput while serving the other kinds behind the
// same admission queue, with (algo, params)-salted cache keys (two SSSP
// weight seeds must never collide) and weighted round-robin drain across
// classes.  The server's summary record plus this bench's per-class
// p99/QPS comparison record land in XBFS_RUN_REPORT.
//
//   bench_workloads [--scale=12] [--edge-factor=8] [--queries=256]
//                   [--zipf=1.0] [--candidates=32] [--clients=8]
//                   [--gcds=1] [--timeout-ms=T] [--seed=1]
//
// Exits non-zero when query accounting doesn't balance, any query resolves
// Failed, a served class completes nothing, or a spot-checked payload
// diverges from its host oracle.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithm_engine.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/sanitizer.h"
#include "obs/run_report.h"
#include "obs/slo.h"
#include "serve/server.h"
#include "serve/workload.h"

namespace {

struct Options {
  unsigned scale = 12;
  unsigned edge_factor = 8;
  std::size_t queries = 256;
  double zipf = 1.0;
  std::size_t candidates = 32;
  unsigned clients = 8;
  unsigned gcds = 1;
  double timeout_ms = 0.0;
  std::uint64_t seed = 1;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto num = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      return nullptr;
    };
    const char* v;
    if ((v = num("--scale"))) o.scale = std::atoi(v);
    else if ((v = num("--edge-factor"))) o.edge_factor = std::atoi(v);
    else if ((v = num("--queries"))) o.queries = std::atoll(v);
    else if ((v = num("--zipf"))) o.zipf = std::atof(v);
    else if ((v = num("--candidates"))) o.candidates = std::atoll(v);
    else if ((v = num("--clients"))) o.clients = std::atoi(v);
    else if ((v = num("--gcds"))) o.gcds = std::atoi(v);
    else if ((v = num("--timeout-ms"))) o.timeout_ms = std::atof(v);
    else if ((v = num("--seed"))) o.seed = std::atoll(v);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return o;
}

/// splitmix64 — deterministic kind/param mixing independent of the Zipf
/// source stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xbfs;
  const Options opt = parse(argc, argv);

  if (!obs::SloEngine::global().enabled()) {
    obs::SloEngine::global().configure("availability=0.99");
  }

  std::printf("bench_workloads: RMAT scale=%u ef=%u, %zu mixed queries, "
              "Zipf(%.2f) over %zu sources, %u clients, %u GCD(s)\n",
              opt.scale, opt.edge_factor, opt.queries, opt.zipf,
              opt.candidates, opt.clients, opt.gcds);

  graph::RmatParams rp;
  rp.scale = opt.scale;
  rp.edge_factor = opt.edge_factor;
  rp.seed = opt.seed;
  const graph::Csr g = graph::rmat_csr(rp);
  const auto giant = graph::largest_component_vertices(g);
  std::printf("graph: n=%llu m=%llu giant=%zu\n",
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()), giant.size());

  std::vector<graph::vid_t> candidates;
  const std::size_t ncand = std::min(opt.candidates, giant.size());
  for (std::size_t i = 0; i < ncand; ++i) {
    candidates.push_back(giant[(i * giant.size()) / ncand]);
  }
  const auto sources =
      serve::zipf_sources(candidates, opt.queries, opt.zipf, opt.seed);

  // The mixed query stream: ~1/2 BFS, ~1/4 SSSP (two weight seeds, so the
  // params-salted cache keys are actually exercised), ~1/8 CC, ~1/8 k-core
  // (decomposition and k=2 membership).  Deterministic in --seed.
  std::vector<core::AlgoQuery> stream(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    core::AlgoQuery& q = stream[i];
    q.source = sources[i];
    const std::uint64_t r = mix64(opt.seed * 0x51ull + i);
    switch (r % 8) {
      case 0: case 1: case 2: case 3:
        q.algo = core::AlgoKind::Bfs;
        break;
      case 4: case 5:
        q.algo = core::AlgoKind::Sssp;
        q.params.weight_seed = 1 + (r >> 8) % 2;
        break;
      case 6:
        q.algo = core::AlgoKind::Cc;
        break;
      default:
        q.algo = core::AlgoKind::KCore;
        q.params.k = (r >> 8) % 2 == 0 ? 0 : 2;
        break;
    }
  }

  obs::ReportSession& report = obs::ReportSession::global();
  if (report.enabled()) {
    report.set_context("bench", "workloads");
    report.set_context("scale", std::to_string(opt.scale));
    report.set_context("zipf", std::to_string(opt.zipf));
  }

  serve::ServeConfig scfg;
  scfg.num_gcds = opt.gcds;
  scfg.batch_window_ms = 0.5;
  scfg.slo_scope = "serve-mixed";
  scfg.algos = {core::AlgoKind::Bfs, core::AlgoKind::Sssp,
                core::AlgoKind::Cc, core::AlgoKind::KCore};
  // Interactive BFS gets the lion's share of each drain turn; the heavier
  // analytics classes trail at lower weight.
  scfg.qos_weights[static_cast<std::size_t>(core::AlgoKind::Bfs)] = 4;
  scfg.qos_weights[static_cast<std::size_t>(core::AlgoKind::Sssp)] = 2;
  scfg.qos_weights[static_cast<std::size_t>(core::AlgoKind::Cc)] = 1;
  scfg.qos_weights[static_cast<std::size_t>(core::AlgoKind::KCore)] = 1;
  if (opt.timeout_ms > 0.0) scfg.default_timeout_ms = opt.timeout_ms;
  serve::Server server(g, scfg);

  // Closed-loop mixed load: each client strides the stream, submit ->
  // wait -> repeat (serve::run_closed_loop is BFS-shaped, so the typed
  // stream drives its own clients here).
  std::atomic<std::uint64_t> completed{0}, expired{0}, rejected{0},
      failed{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    const unsigned nclients = std::max<unsigned>(
        1, static_cast<unsigned>(
               std::min<std::size_t>(opt.clients, stream.size())));
    for (unsigned c = 0; c < nclients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = c; i < stream.size(); i += nclients) {
          serve::Admission a = server.submit(stream[i]);
          if (!a.accepted) {
            rejected.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const serve::QueryResult r = a.result.get();
          switch (r.status) {
            case serve::QueryStatus::Completed:
              completed.fetch_add(1, std::memory_order_relaxed);
              break;
            case serve::QueryStatus::Expired:
              expired.fetch_add(1, std::memory_order_relaxed);
              break;
            case serve::QueryStatus::Failed:
              failed.fetch_add(1, std::memory_order_relaxed);
              break;
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  const double qps =
      wall_ms > 0.0 ? completed.load() / (wall_ms / 1000.0) : 0.0;

  // Spot-check one served payload per kind against its host oracle.
  {
    const graph::vid_t probe = sources[0];
    auto get = [&](core::AlgoQuery q) {
      serve::Admission a = server.submit(q);
      if (!a.accepted) {
        std::fprintf(stderr, "probe rejected: %s\n",
                     a.status.to_string().c_str());
        std::exit(1);
      }
      return a.result.get();
    };
    const serve::QueryResult rb =
        get({core::AlgoKind::Bfs, probe, {}});
    if (rb.status != serve::QueryStatus::Completed ||
        *rb.payload.levels != graph::reference_bfs(g, probe)) {
      std::fprintf(stderr, "served BFS diverges from reference\n");
      return 1;
    }
    core::AlgoQuery sq{core::AlgoKind::Sssp, probe, {}};
    const serve::QueryResult rs = get(sq);
    if (rs.status != serve::QueryStatus::Completed ||
        *rs.payload.distances !=
            graph::reference_sssp(g, probe, sq.params.weight_seed,
                                  sq.params.max_weight)) {
      std::fprintf(stderr, "served SSSP diverges from reference\n");
      return 1;
    }
    const serve::QueryResult rc = get({core::AlgoKind::Cc, 0, {}});
    if (rc.status != serve::QueryStatus::Completed ||
        *rc.payload.components != graph::canonical_components(g)) {
      std::fprintf(stderr, "served CC diverges from reference\n");
      return 1;
    }
    const serve::QueryResult rk = get({core::AlgoKind::KCore, 0, {}});
    if (rk.status != serve::QueryStatus::Completed ||
        *rk.payload.cores != graph::reference_kcore(g, 0)) {
      std::fprintf(stderr, "served k-core diverges from reference\n");
      return 1;
    }
  }

  server.shutdown();  // emits the family-serving summary record
  const serve::ServerStats st = server.stats();

  std::printf("mixed:  %llu completed (%llu expired, %llu rejected, %llu "
              "failed) in %.1f ms -> %.1f QPS\n",
              static_cast<unsigned long long>(completed.load()),
              static_cast<unsigned long long>(expired.load()),
              static_cast<unsigned long long>(rejected.load()),
              static_cast<unsigned long long>(failed.load()), wall_ms, qps);
  std::printf("        cache hit rate %.1f%%  sweeps %llu  algo dispatches "
              "%llu  computed %llu\n",
              st.cache_hit_rate * 100.0,
              static_cast<unsigned long long>(st.sweeps),
              static_cast<unsigned long long>(st.algo_dispatches),
              static_cast<unsigned long long>(st.computed_sources));
  std::printf("        class     submitted completed cache_hits   p50_ms   "
              "p99_ms      qps\n");
  for (const core::AlgoKind k : scfg.algos) {
    const serve::AlgoClassStats& a = st.per_algo[static_cast<std::size_t>(k)];
    std::printf("        %-8s %10llu %9llu %10llu %8.3f %8.3f %8.1f\n",
                core::algo_kind_name(k),
                static_cast<unsigned long long>(a.submitted),
                static_cast<unsigned long long>(a.completed),
                static_cast<unsigned long long>(a.cache_hits),
                a.latency_p50_ms, a.latency_p99_ms, a.qps);
  }

  if (report.enabled()) {
    obs::RunRecord rec;
    rec.tool = "bench_workloads";
    rec.algorithm = "family-serving-mix";
    rec.n = g.num_vertices();
    rec.m = g.num_edges();
    rec.total_ms = wall_ms;
    char buf[32];
    auto f = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      return std::string(buf);
    };
    rec.config = {
        {"queries", std::to_string(opt.queries)},
        {"clients", std::to_string(opt.clients)},
        {"gcds", std::to_string(opt.gcds)},
        {"zipf", f(opt.zipf)},
        {"completed", std::to_string(completed.load())},
        {"expired", std::to_string(expired.load())},
        {"rejected", std::to_string(rejected.load())},
        {"failed", std::to_string(failed.load())},
        {"mixed_qps", f(qps)},
        {"cache_hit_rate", f(st.cache_hit_rate)},
        {"algo_dispatches", std::to_string(st.algo_dispatches)},
    };
    for (const core::AlgoKind k : scfg.algos) {
      const serve::AlgoClassStats& a =
          st.per_algo[static_cast<std::size_t>(k)];
      const std::string p = core::algo_kind_name(k);
      rec.config.emplace_back(p + "_submitted",
                              std::to_string(a.submitted));
      rec.config.emplace_back(p + "_completed",
                              std::to_string(a.completed));
      rec.config.emplace_back(p + "_p99_ms", f(a.latency_p99_ms));
      rec.config.emplace_back(p + "_qps", f(a.qps));
      rec.config.emplace_back(
          p + "_weight",
          std::to_string(scfg.qos_weights[static_cast<std::size_t>(k)]));
    }
    report.add(std::move(rec));
  }

  // --- gates ----------------------------------------------------------------
  if (completed.load() + expired.load() + rejected.load() + failed.load() !=
      opt.queries) {
    std::fprintf(stderr, "lost queries: %llu+%llu+%llu+%llu != %zu\n",
                 static_cast<unsigned long long>(completed.load()),
                 static_cast<unsigned long long>(expired.load()),
                 static_cast<unsigned long long>(rejected.load()),
                 static_cast<unsigned long long>(failed.load()), opt.queries);
    return 1;
  }
  if (failed.load() != 0 || st.failed != 0) {
    std::fprintf(stderr, "%llu queries resolved Failed\n",
                 static_cast<unsigned long long>(st.failed));
    return 1;
  }
  for (const core::AlgoKind k : scfg.algos) {
    const serve::AlgoClassStats& a = st.per_algo[static_cast<std::size_t>(k)];
    if (a.completed == 0) {
      std::fprintf(stderr, "class %s completed no queries\n",
                   core::algo_kind_name(k));
      return 1;
    }
  }

  // Under XBFS_SANITIZE the bench doubles as a SimSan gate for the whole
  // engine family: BFS sweeps, delta-SSSP, LP-CC, and k-core kernels all
  // ran above through checked accessors.
  auto& san = sim::Sanitizer::global();
  if (san.enabled()) {
    san.summary(std::cout);
    if (san.unannotated_count() > 0) {
      std::printf("bench_workloads: FAIL — %llu unannotated sanitizer "
                  "finding(s)\n",
                  static_cast<unsigned long long>(san.unannotated_count()));
      return 1;
    }
    std::printf("bench_workloads: sanitizer clean (%llu allowlisted)\n",
                static_cast<unsigned long long>(san.allowlisted_count()));
  }
  return 0;
}
