// google-benchmark microbenches over the substrate primitives: cache model,
// thread pool, wavefront collectives, enqueue schemes, generators and the
// bottom-up prefix-sum pipeline.  These measure *wall time of the simulator
// itself* (host perf), complementing the modelled-time reproduction benches.
#include <benchmark/benchmark.h>

#include <random>

#include "core/kernels_bottomup.h"
#include "core/status.h"
#include "core/xbfs.h"
#include "graph/builder.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/reorder.h"
#include "graph/rmat.h"
#include "hipsim/hipsim.h"

using namespace xbfs;

namespace {

void BM_CacheShardAccess(benchmark::State& state) {
  sim::CacheShard shard(64 * 1024, 128, 16);
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::uint64_t> pick(0, 1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard.access(pick(rng), false));
  }
}
BENCHMARK(BM_CacheShardAccess);

void BM_L2ModelStream(benchmark::State& state) {
  sim::L2Model l2(sim::DeviceProfile::mi250x_gcd(), 64);
  sim::KernelCounters c;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    l2.access(addr, 4, false, c);
    addr += 4;
  }
  benchmark::DoNotOptimize(c.l2_hits);
}
BENCHMARK(BM_L2ModelStream);

void BM_L2ModelRandom(benchmark::State& state) {
  sim::L2Model l2(sim::DeviceProfile::mi250x_gcd(), 64);
  sim::KernelCounters c;
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::uint64_t> pick(0, 256ull << 20);
  for (auto _ : state) {
    l2.access(pick(rng), 4, false, c);
  }
  benchmark::DoNotOptimize(c.l2_misses);
}
BENCHMARK(BM_L2ModelRandom);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  sim::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  const std::function<void(unsigned, std::uint64_t)> fn =
      [&](unsigned, std::uint64_t i) {
        sink.fetch_add(i, std::memory_order_relaxed);
      };
  for (auto _ : state) {
    pool.parallel_for(4096, fn);
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(4);

void BM_WavefrontBallot(benchmark::State& state) {
  sim::Device dev(sim::DeviceProfile::test_profile(),
                  sim::SimOptions{.num_workers = 1});
  auto buf = dev.alloc<std::uint32_t>(64);
  auto span = buf.span();
  for (auto _ : state) {
    dev.launch("ballot", sim::LaunchConfig{.grid_blocks = 1, .block_threads = 64},
               [=](sim::BlockCtx& blk) {
                 blk.wavefronts([&](sim::WavefrontCtx& wf, unsigned) {
                   benchmark::DoNotOptimize(
                       wf.ballot([&](unsigned l) { return (l & 1) == 0; }));
                 });
               });
    (void)span;
  }
}
BENCHMARK(BM_WavefrontBallot);

void BM_AggregatedEnqueue(benchmark::State& state) {
  // One atomic per wavefront (ballot-rank aggregation) vs one per lane.
  const bool aggregated = state.range(0) == 1;
  sim::Device dev(sim::DeviceProfile::test_profile(),
                  sim::SimOptions{.num_workers = 1});
  auto queue = dev.alloc<std::uint32_t>(1 << 16);
  auto tail = dev.alloc<std::uint32_t>(1);
  auto qs = queue.span();
  auto ts = tail.span();
  for (auto _ : state) {
    tail.host_data()[0] = 0;
    dev.launch("enqueue",
               sim::LaunchConfig{.grid_blocks = 8, .block_threads = 256},
               [=](sim::BlockCtx& blk) {
                 auto& ctx = blk.ctx();
                 blk.wavefronts([&](sim::WavefrontCtx& wf, unsigned) {
                   if (aggregated) {
                     const std::uint32_t base = ctx.atomic_add(
                         ts, 0, std::uint32_t{64});
                     wf.lanes([&](unsigned l) {
                       ctx.store(qs, base + l, wf.id() * 64u + l);
                     });
                   } else {
                     wf.lanes([&](unsigned l) {
                       const std::uint32_t slot =
                           ctx.atomic_add(ts, 0, std::uint32_t{1});
                       ctx.store(qs, slot, wf.id() * 64u + l);
                     });
                   }
                 });
               });
  }
}
BENCHMARK(BM_AggregatedEnqueue)->Arg(0)->Arg(1);

graph::Csr bench_graph() {
  graph::RmatParams p;
  p.scale = 14;
  p.edge_factor = 8;
  p.seed = 1;
  return graph::rmat_csr(p);
}

void BM_RmatGenerate(benchmark::State& state) {
  graph::RmatParams p;
  p.scale = static_cast<unsigned>(state.range(0));
  p.edge_factor = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::rmat_edges(p));
  }
}
BENCHMARK(BM_RmatGenerate)->Arg(12)->Arg(14);

void BM_CsrBuild(benchmark::State& state) {
  graph::RmatParams p;
  p.scale = 14;
  p.edge_factor = 8;
  auto edges = graph::rmat_edges(p);
  for (auto _ : state) {
    auto copy = edges;
    benchmark::DoNotOptimize(
        graph::build_csr(graph::vid_t{1} << p.scale, std::move(copy)));
  }
}
BENCHMARK(BM_CsrBuild);

void BM_ReferenceBfs(benchmark::State& state) {
  const graph::Csr g = bench_graph();
  const auto giant = graph::largest_component_vertices(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::reference_bfs(g, giant[0]));
  }
}
BENCHMARK(BM_ReferenceBfs);

void BM_RearrangeNeighbors(benchmark::State& state) {
  const graph::Csr g = bench_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::rearrange_neighbors(g, graph::NeighborOrder::ByDegreeDesc));
  }
}
BENCHMARK(BM_RearrangeNeighbors);

void BM_BottomUpPrefixPipeline(benchmark::State& state) {
  // k1-k4 of the double-scan over a half-visited status array.
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 1});
  const graph::Csr g = bench_graph();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::XbfsConfig cfg;
  core::BfsBuffers b = core::BfsBuffers::allocate(
      dev, dg.n, 512,
      core::bu_scan_blocks(dev.profile(), (dg.n + 511) / 512,
                           cfg.block_threads),
      false, false);
  std::mt19937_64 rng(7);
  for (std::uint32_t v = 0; v < dg.n; ++v) {
    b.status.host_data()[v] = (rng() & 1) ? core::kUnvisited : 1u;
  }
  core::BottomUpArgs a;
  a.offsets = dg.offsets_span();
  a.cols = dg.cols_span();
  a.status = b.status.span();
  a.bu_queue = b.bu_queue.span();
  a.next_queue = b.queue_a.span();
  a.pending_queue = b.pending_a.span();
  a.seg_counts = b.seg_counts.span();
  a.seg_offsets = b.seg_offsets.span();
  a.block_sums = b.block_sums.span();
  a.counters = b.counters.span();
  a.edge_counters = b.edge_counters.span();
  a.n = dg.n;
  a.num_segments = b.num_segments;
  a.segment_size = b.segment_size;
  a.cur_level = 1;
  for (auto _ : state) {
    core::launch_bu_count(dev, dev.stream(0), a, cfg);
    core::launch_bu_scan_block(dev, dev.stream(0), a, cfg);
    core::launch_bu_scan_final(dev, dev.stream(0), a, cfg);
    core::launch_bu_queue_gen(dev, dev.stream(0), a, cfg);
    benchmark::DoNotOptimize(b.counters.host_data()[core::kCurTail]);
  }
}
BENCHMARK(BM_BottomUpPrefixPipeline);

}  // namespace

BENCHMARK_MAIN();
